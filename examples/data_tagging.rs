//! Auto-Tag (§2.3's dual problem, shipped in Azure Purview): instead of the
//! *safest* pattern for validation, find the *most restrictive* pattern
//! that still describes a column's domain, and use it to tag related
//! columns of the same type across the lake — data-governance discovery.
//!
//! ```sh
//! cargo run --release --example data_tagging
//! ```

use auto_validate::prelude::*;
use av_core::TagRule;

fn main() {
    println!("setting up corpus and index…");
    let corpus = generate_lake(&LakeProfile::tiny().scaled(2000), 23);
    let columns: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&columns, &IndexConfig::default());
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));

    // A steward labels ONE column as "GUID" and asks the system to find the
    // rest of them in the lake.
    let seed_column = corpus
        .columns()
        .find(|c| c.meta.domain.as_deref() == Some("guid") && c.len() >= 30)
        .expect("a guid column in the lake");
    println!(
        "\nsteward-labeled column: {} ({} values, e.g. {:?})",
        seed_column.name,
        seed_column.len(),
        seed_column.values.first().expect("non-empty")
    );
    let tag: TagRule = engine
        .infer_tag(&seed_column.values, 0.01)
        .expect("tag pattern");
    println!(
        "inferred tag pattern: {}  (reaches {} corpus columns)",
        tag.pattern(),
        tag.coverage
    );

    // Sweep the lake.
    let mut tagged = 0usize;
    let mut true_guid = 0usize;
    let mut missed_guid = 0usize;
    let mut wrong = Vec::new();
    for col in corpus.columns() {
        let is_guid = col.meta.domain.as_deref() == Some("guid");
        let hit = tag.tags(&col.values);
        if hit {
            tagged += 1;
            if is_guid {
                true_guid += 1;
            } else {
                wrong.push((col.name.clone(), col.meta.domain.clone()));
            }
        } else if is_guid {
            missed_guid += 1;
        }
    }
    println!("\nsweep over {} columns:", corpus.num_columns());
    println!("  tagged {tagged} columns; {true_guid} are genuine guid columns");
    println!("  missed {missed_guid} guid columns");
    for (name, domain) in wrong.iter().take(5) {
        println!("  (also tagged {name} from domain {domain:?})");
    }
    assert!(true_guid > 0, "the tag must find other guid columns");
    assert!(
        true_guid * 10 >= tagged * 9 || wrong.iter().all(|(_, d)| d.as_deref() != Some("boolean")),
        "tagging should be precise"
    );
    println!("\nok: one labeled column was enough to tag the lake's GUID columns.");
}
