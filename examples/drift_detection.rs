//! Side-by-side comparison on the paper's §1 motivating example: why
//! dictionary-based validation (TFDV/Deequ style) false-alarms on
//! machine-generated data while profiling patterns (Potter's Wheel style)
//! overfit — and how the corpus-driven pattern avoids both failure modes.
//!
//! ```sh
//! cargo run --release --example drift_detection
//! ```

use auto_validate::prelude::*;
use av_baselines::{ColumnValidator, PottersWheel, Tfdv};

fn check(name: &str, passes: bool, should_pass: bool) {
    let verdict = if passes { "pass " } else { "ALARM" };
    let ok = if passes == should_pass {
        "✓"
    } else {
        "✗ (wrong!)"
    };
    println!("    {name:<28} {verdict}  {ok}");
}

/// Print *why* the first offending value failed the rule: the failing byte
/// span and what the pattern expected there (the `explain` cold path).
fn explain_failure(rule: &dyn Validator, values: &[String]) {
    let bad = values
        .iter()
        .find(|v| !rule.check(v).is_conform())
        .expect("an alarming column has a nonconforming value");
    let e = rule
        .explain(bad)
        .expect("nonconforming values always explain");
    print!("    why: {bad:?} — {}", e.reason);
    if let Some((s, end)) = e.span {
        if s < end {
            print!(" (offending bytes {s}..{end}: {:?})", &bad[s..end]);
        }
    }
    println!();
}

fn main() {
    println!("setting up corpus and index…");
    let corpus = generate_lake(&LakeProfile::tiny().scaled(2000), 5);
    let columns: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&columns, &IndexConfig::default());
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));

    // C1 (Fig. 2a): date strings observed during March 2019.
    let march: Vec<String> = (1..=28).map(|d| format!("Mar {d:02} 2019")).collect();
    println!("\ntraining data (C1): {:?} … {:?}", march[0], march[27]);

    let march_refs: Vec<&str> = march.iter().map(String::as_str).collect();
    let tfdv = Tfdv.infer(&march_refs).expect("tfdv rule");
    let pwheel = PottersWheel.infer(&march_refs).expect("pwheel rule");
    let fmdv = engine.infer_default(&march).expect("fmdv rule");
    println!("\ninferred rules:");
    println!("  TFDV   : {}", tfdv.description);
    println!("  PWheel : {}", pwheel.description);
    println!("  FMDV-VH: {}", fmdv.pattern());

    // Scenario 1: the feed refreshes in April — same domain, new values.
    let april: Vec<String> = (1..=30).map(|d| format!("Apr {d:02} 2019")).collect();
    println!("\nscenario 1: April refresh (same domain — should PASS)");
    check("TFDV (dictionary)", tfdv.passes(&april), true);
    check("PWheel (profiling pattern)", pwheel.passes(&april), true);
    check(
        "FMDV-VH (domain pattern)",
        !fmdv.validate(&april).flagged,
        true,
    );

    // Scenario 2: genuine drift — the upstream column moved.
    let drifted: Vec<String> = (0..30).map(|i| format!("session-{i:04}")).collect();
    println!("\nscenario 2: schema drift (different domain — should ALARM)");
    check("TFDV (dictionary)", tfdv.passes(&drifted), false);
    check("PWheel (profiling pattern)", pwheel.passes(&drifted), false);
    check(
        "FMDV-VH (domain pattern)",
        !fmdv.validate(&drifted).flagged,
        false,
    );
    explain_failure(&fmdv, &drifted);

    // Scenario 3: subtle format change ("Mar 01 2019" → "March 01 2019").
    let reformatted: Vec<String> = (1..=28).map(|d| format!("March {d:02} 2019")).collect();
    println!("\nscenario 3: format change, fixed-width month → full name (should ALARM)");
    check(
        "FMDV-VH (domain pattern)",
        !fmdv.validate(&reformatted).flagged,
        false,
    );
    explain_failure(&fmdv, &reformatted);

    assert!(
        !fmdv.validate(&april).flagged,
        "FMDV must not false-alarm on April"
    );
    assert!(fmdv.validate(&drifted).flagged, "FMDV must catch drift");
    assert!(
        !tfdv.passes(&april),
        "the dictionary false-alarm is the paper's point"
    );
    println!(
        "\nsummary: the dictionary false-alarms on the April refresh; the corpus-driven \
         pattern passes it and still catches both real incidents."
    );
}
