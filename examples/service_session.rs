//! A full `av-service` session, end to end: ingest a corpus, infer and
//! persist a named rule, "restart" the service, reload the catalog from
//! disk, and validate a healthy and a drifted feed — plus a demonstration
//! that incremental delta-merge equals a from-scratch rebuild exactly.
//!
//! Run with: `cargo run --example service_session`

use auto_validate::prelude::*;
use av_service::{BatchItem, ServiceConfig, ValidationService};

fn main() {
    let data_dir = std::env::temp_dir().join(format!("av_service_session_{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();

    // ── Day 0: bring up a fresh service and ingest the initial corpus. ──
    let corpus = generate_lake(&LakeProfile::tiny(), 42);
    let day0: Vec<Column> = corpus.columns().cloned().collect();
    let service = ValidationService::new(ServiceConfig::with_data_dir(&data_dir));
    let report = service.ingest(&day0).unwrap();
    println!(
        "ingested {} columns -> {} distinct patterns",
        report.total_columns, report.total_patterns
    );

    // ── Infer a named rule for a recurring feed and persist everything. ──
    let march: Vec<String> = (1..=31).map(|d| format!("2019-03-{d:02}")).collect();
    let entry = service
        .infer_rule("feeds/sales.date", &march, None)
        .unwrap();
    println!("cataloged rule {:?}: {}", entry.name, entry.rule.describe());
    service.persist().unwrap();
    drop(service); // simulate a restart

    // ── Restart: rules and index come back from disk, nothing re-runs. ──
    let service = ValidationService::open(ServiceConfig::with_data_dir(&data_dir)).unwrap();
    println!(
        "reloaded: {} corpus columns, {} cataloged rules",
        service.snapshot().num_columns,
        service.catalog_entries().len()
    );

    // ── Recurring validation: next month passes, a drifted feed flags. ──
    let april: Vec<String> = (1..=30).map(|d| format!("2019-04-{d:02}")).collect();
    let drifted: Vec<String> = (0..30).map(|i| format!("user-{i}")).collect();
    let results = service.validate_batch(&[
        BatchItem {
            rule: "feeds/sales.date",
            values: april.iter().map(String::as_str).collect(),
        },
        BatchItem {
            rule: "feeds/sales.date",
            values: drifted.iter().map(String::as_str).collect(),
        },
    ]);
    let ok = results[0].as_ref().unwrap();
    let bad = results[1].as_ref().unwrap();
    println!(
        "april: flagged={} (p={:.3});  drifted: flagged={} ({}/{} nonconforming)",
        ok.flagged, ok.p_value, bad.flagged, bad.nonconforming, bad.checked
    );
    assert!(!ok.flagged && bad.flagged);

    // ── Incremental maintenance: a new day of corpus columns merges into
    //    the live index with statistics identical to a full rebuild. ──
    let day1: Vec<Column> = generate_lake(&LakeProfile::tiny().scaled(60), 7)
        .columns()
        .cloned()
        .collect();
    service.ingest(&day1).unwrap();

    let union: Vec<&Column> = day0.iter().chain(day1.iter()).collect();
    let rebuilt = PatternIndex::build(&union, &service.config().index);
    let live = service.snapshot();
    assert_eq!(live.num_columns, rebuilt.num_columns);
    assert_eq!(live.len(), rebuilt.len());
    let rebuilt_map: std::collections::HashMap<u64, av_index::PatternStats> =
        rebuilt.entries().collect();
    for (k, s) in live.entries() {
        let r = rebuilt_map[&k];
        assert_eq!(s.fpr.to_bits(), r.fpr.to_bits());
        assert_eq!(s.cov, r.cov);
    }
    println!(
        "incremental merge == full rebuild: {} patterns, bit-for-bit",
        live.len()
    );

    std::fs::remove_dir_all(&data_dir).ok();
}
