//! Quickstart: build an index over a data lake, infer a validation rule for
//! one column, and validate future arrivals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use auto_validate::prelude::*;

fn main() {
    // ── 1. The corpus T ────────────────────────────────────────────────
    // In production this is your data lake; here, a synthetic lake with the
    // same statistical structure (machine-generated domains, NL columns,
    // dirt) stands in.
    println!("generating a synthetic data lake…");
    let corpus = generate_lake(&LakeProfile::tiny().scaled(2000), 7);
    let columns: Vec<&Column> = corpus.columns().collect();
    println!(
        "  {} tables, {} columns",
        corpus.tables.len(),
        columns.len()
    );

    // ── 2. Offline indexing (§2.4) ─────────────────────────────────────
    // One scan of T pre-computes FPR_T(p) and Cov_T(p) for every candidate
    // pattern, so online inference needs no corpus access at all.
    let t0 = std::time::Instant::now();
    let index = PatternIndex::build(&columns, &IndexConfig::default());
    println!(
        "indexed {} patterns in {:.1?} (≈{} bytes serialized)",
        index.len(),
        t0.elapsed(),
        index.to_bytes().len()
    );

    // ── 3. Online rule inference ───────────────────────────────────────
    // The paper's C1 example: a date column observed during March 2019.
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
    let march: Vec<String> = (1..=28).map(|d| format!("Mar {d:02} 2019")).collect();
    let t0 = std::time::Instant::now();
    let rule = engine.infer_default(&march).expect("a validation rule");
    println!("\ntraining column: \"Mar 01 2019\" … \"Mar 28 2019\"");
    println!("inferred rule in {:.1?}:\n  {rule}", t0.elapsed());
    println!("  as regex: /{}/", rule.to_regex());

    // ── 4. Validation ──────────────────────────────────────────────────
    // April data is from the same domain: a dictionary would false-alarm,
    // the domain pattern does not.
    let april: Vec<String> = (1..=30).map(|d| format!("Apr {d:02} 2019")).collect();
    let report = rule.validate(&april);
    println!(
        "\nvalidating April feed: {} values, {} non-conforming → flagged: {}",
        report.checked, report.nonconforming, report.flagged
    );
    assert!(!report.flagged);

    // Schema drift — someone swapped in a locale column.
    let drifted: Vec<String> = ["en-US", "de-DE", "fr-FR", "ja-JP"]
        .iter()
        .cycle()
        .take(30)
        .map(|s| s.to_string())
        .collect();
    let report = rule.validate(&drifted);
    println!(
        "validating drifted feed: {} values, {} non-conforming (p = {:.2e}) → flagged: {}",
        report.checked, report.nonconforming, report.p_value, report.flagged
    );
    assert!(report.flagged);
    println!("\nok: same-domain data passes, drifted data is caught.");
}
