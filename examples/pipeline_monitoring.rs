//! Pipeline monitoring: validate a recurring daily feed over a month of
//! runs, with realistic incidents injected — the production scenario that
//! motivates the paper (§1).
//!
//! The feed has three string columns (an order id, a timestamp, a delivery
//! status). Day 12 silently swaps two columns (schema drift); day 20
//! introduces a formatting change (data drift, "en-us" → "en-US" style);
//! day 26 starts emitting nulls at a high rate. All three should be caught;
//! normal daily variation should not.
//!
//! ```sh
//! cargo run --release --example pipeline_monitoring
//! ```

use auto_validate::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Feed {
    rng: StdRng,
}

impl Feed {
    fn new(seed: u64) -> Feed {
        Feed {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn order_id(&mut self) -> String {
        format!("ORD{:08}", self.rng.random_range(0..100_000_000u64))
    }

    fn timestamp(&mut self, day: u32) -> String {
        format!(
            "2019-03-{:02}T{:02}:{:02}:{:02}Z",
            day.min(28),
            self.rng.random_range(0..24),
            self.rng.random_range(0..60),
            self.rng.random_range(0..60)
        )
    }

    fn status(&mut self) -> String {
        const S: &[&str] = &["Delivered", "Pending", "Throttled", "Rejected"];
        S[self.rng.random_range(0..S.len())].to_string()
    }

    /// One day's batch: (order_ids, timestamps, statuses).
    fn day(&mut self, day: u32, n: usize) -> (Vec<String>, Vec<String>, Vec<String>) {
        let ids = (0..n).map(|_| self.order_id()).collect();
        let ts = (0..n).map(|_| self.timestamp(day)).collect();
        let st = (0..n).map(|_| self.status()).collect();
        (ids, ts, st)
    }
}

fn main() {
    // Corpus + index, as in quickstart.
    println!("setting up corpus and index…");
    let corpus = generate_lake(&LakeProfile::tiny().scaled(2000), 11);
    let columns: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&columns, &IndexConfig::default());
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));

    // Train rules on day 1's batch (the first feed we observe).
    let mut feed = Feed::new(1);
    let (ids, ts, st) = feed.day(1, 400);
    let col_names = ["order_id", "event_time", "status"];
    // `infer_auto` picks the right rule family per column: syntactic
    // patterns for machine-generated ids/timestamps, a vocabulary rule for
    // the fixed status dictionary (§6).
    let rules: Vec<AnyRule> = [&ids, &ts, &st]
        .iter()
        .map(|col| engine.infer_auto(col.iter()).expect("rule"))
        .collect();
    println!("\nrules learned from day 1:");
    for (name, rule) in col_names.iter().zip(&rules) {
        println!("  {name:<11} → {}", rule.describe());
    }

    println!("\nreplaying 30 daily runs:");
    let mut alerts = 0;
    for day in 2..=30u32 {
        let (ids, mut ts, mut st) = feed.day(day, 400);
        let mut incident = "";
        match day {
            12 => {
                std::mem::swap(&mut ts, &mut st); // schema drift
                incident = "  ← injected: column swap";
            }
            20 => {
                // data drift: timestamps lose their trailing Z
                for v in ts.iter_mut() {
                    v.pop();
                }
                incident = "  ← injected: format change";
            }
            26..=27 => {
                for (i, v) in st.iter_mut().enumerate() {
                    if i % 5 == 0 {
                        *v = "NULL".into();
                    }
                }
                incident = "  ← injected: null burst";
            }
            _ => {}
        }
        let reports: Vec<ValidationReport> = rules
            .iter()
            .zip([&ids, &ts, &st])
            .map(|(rule, col)| rule.validate(col))
            .collect();
        let flagged: Vec<&str> = col_names
            .iter()
            .zip(&reports)
            .filter(|(_, r)| r.flagged)
            .map(|(n, _)| *n)
            .collect();
        if flagged.is_empty() {
            println!("  day {day:02}: ok{incident}");
        } else {
            alerts += 1;
            println!("  day {day:02}: ALERT {flagged:?}{incident}");
            // Explain each incident: the failing byte span of the first
            // offending value, plus the nearest cataloged rule the value
            // *does* conform to — which names the swapped column on day 12.
            for (i, report) in reports.iter().enumerate() {
                if !report.flagged {
                    continue;
                }
                let (name, rule) = (col_names[i], &rules[i]);
                let col = [&ids, &ts, &st][i];
                let bad = col
                    .iter()
                    .find(|v| !rule.conforms(v))
                    .expect("a flagged column has a nonconforming value");
                let e = rule
                    .explain(bad)
                    .expect("nonconforming values always explain");
                print!("      {name}: {bad:?} — {}", e.reason);
                if let Some((s, end)) = e.span {
                    if s < end {
                        print!(" (bytes {s}..{end}: {:?})", &bad[s..end]);
                    }
                }
                let candidates = col_names
                    .iter()
                    .zip(&rules)
                    .filter(|(n, _)| **n != name)
                    .map(|(n, r)| (*n, r));
                let suggestion = nearest_conforming_rule(bad, rule, candidates);
                match suggestion {
                    Some((other, d)) => println!("; conforms to rule `{other}` (distance {d})"),
                    None => println!(),
                }
                // The column swap must be diagnosed as exactly that: each
                // swapped feed's values conform to the *other* column's rule.
                if day == 12 {
                    let expect = if name == "event_time" {
                        "status"
                    } else {
                        "event_time"
                    };
                    assert_eq!(
                        suggestion.map(|(n, _)| n),
                        Some(expect),
                        "day 12 swap should suggest the other column"
                    );
                }
            }
        }
        // Only injected incidents may alert.
        let is_incident = matches!(day, 12 | 20 | 26 | 27);
        assert_eq!(
            !flagged.is_empty(),
            is_incident,
            "day {day}: unexpected validation outcome"
        );
    }
    println!("\n{alerts} alerts over 29 runs — all injected incidents, zero false alarms.");
}
