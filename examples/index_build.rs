//! Offline index build determinism check (run by CI).
//!
//! Builds the seeded tiny data lake, constructs the pattern index with the
//! default configuration at several thread counts, and asserts the
//! persisted AVIX image digests match the pinned constant. Everything in
//! the chain is deterministic by design — lake generation is seeded, the
//! fixed-point accumulators make the parallel fold order-independent, and
//! persistence sorts entries by fingerprint — so a mismatch means the
//! on-disk format or the build semantics drifted silently. Bump the AVIX
//! version (and this constant) deliberately instead.
//!
//! ```text
//! cargo run --release --example index_build
//! ```

use av_corpus::{generate_lake, LakeProfile};
use av_index::{IndexConfig, PatternIndex};

/// Digest of `PatternIndex::to_bytes()` for `LakeProfile::tiny()`, seed 42,
/// default `IndexConfig` (AVIX v4, 64 shards). Pinned in `av-index`'s
/// persist tests too.
const EXPECTED_DIGEST: u64 = 0xb3259407d0bafd49;
const EXPECTED_PATTERNS: usize = 45379;

fn main() {
    let corpus = generate_lake(&LakeProfile::tiny(), 42);
    let cols: Vec<_> = corpus.columns().collect();
    for num_threads in [1, 2, 8] {
        let config = IndexConfig {
            num_threads,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let index = PatternIndex::build(&cols, &config);
        let digest = index.content_digest();
        println!(
            "threads={num_threads}: {} columns -> {} patterns in {:.1?}, digest 0x{digest:016x}",
            cols.len(),
            index.len(),
            start.elapsed(),
        );
        assert_eq!(
            index.len(),
            EXPECTED_PATTERNS,
            "pattern count drifted from the pinned build"
        );
        assert_eq!(
            digest, EXPECTED_DIGEST,
            "persisted AVIX bytes drifted from the pinned build \
             (threads={num_threads}); if the format changed on purpose, \
             bump the AVIX version and re-pin"
        );
    }
    println!("ok: persisted index is bit-identical to the pinned digest");
}
