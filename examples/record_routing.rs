//! Record routing by catalog classification (run by CI).
//!
//! The catalog-automaton deployment shape: a stream of raw values arrives
//! without column labels (a tailed log, a schemaless feed), and each
//! record is routed to the catalog rule it conforms to — one `classify`
//! scan per value against the *whole* catalog, instead of trying rules
//! one by one. Everything in the chain is deterministic — the corpus is
//! seeded, inference is exact, and classification ranks matches
//! most-specific-first with name tie-breaks — so the full routing table
//! digests to a pinned constant; a mismatch means classification
//! semantics drifted silently.
//!
//! ```text
//! cargo run --release --example record_routing
//! ```

use av_corpus::{generate_lake, LakeProfile};
use av_service::{ServiceConfig, ValidationService};

/// FNV-1a over every routing decision, in stream order.
const EXPECTED_DIGEST: u64 = 0xb0ce0bfae6ed13f4;
const STREAM_LEN: usize = 400;

fn fnv1a64(digest: u64, bytes: &[u8]) -> u64 {
    let mut d = digest;
    for &b in bytes {
        d ^= b as u64;
        d = d.wrapping_mul(0x100000001b3);
    }
    d
}

/// A deterministic unlabeled record stream: dates, statuses, amounts,
/// and some values no rule claims.
fn record_stream() -> Vec<String> {
    (0..STREAM_LEN)
        .map(|i| match i % 5 {
            0 => format!("2019-{:02}-{:02}", 1 + i % 12, 1 + i % 28),
            1 => ["Delivered", "Pending", "Rejected"][i % 3].to_string(),
            2 => format!("{}.{:02}", 10 + i % 90, i % 100),
            3 => format!("2019-{:02}-{:02}", 1 + (i / 5) % 12, 1 + (i / 3) % 28),
            _ => format!("???-{i}"),
        })
        .collect()
}

fn main() {
    let service = ValidationService::new(ServiceConfig::default());
    let lake = generate_lake(&LakeProfile::tiny(), 42);
    let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
    service.ingest(&columns).unwrap();

    let dates: Vec<String> = (1..=28).map(|d| format!("2019-03-{d:02}")).collect();
    service.infer_rule("feeds/date", &dates, None).unwrap();
    let statuses: Vec<String> = (0..60)
        .map(|i| ["Delivered", "Pending", "Rejected"][i % 3].to_string())
        .collect();
    service.infer_rule("feeds/status", &statuses, None).unwrap();
    let amounts: Vec<String> = (0..60).map(|i| format!("{}.{:02}", 10 + i, i)).collect();
    service.infer_rule("feeds/amount", &amounts, None).unwrap();

    let stream = record_stream();
    let start = std::time::Instant::now();
    let outcomes = service.classify_batch(&stream);
    let elapsed = start.elapsed();

    let mut digest = 0xcbf29ce484222325u64;
    let mut routed: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (value, outcome) in stream.iter().zip(&outcomes) {
        let route = outcome.best.as_deref().unwrap_or("unrouted");
        *routed.entry(route).or_default() += 1;
        digest = fnv1a64(digest, value.as_bytes());
        digest = fnv1a64(digest, b"->");
        digest = fnv1a64(digest, route.as_bytes());
    }
    for (route, count) in &routed {
        println!("{route:>14}: {count} records");
    }
    println!(
        "routed {} records in {elapsed:.1?} ({} catalog rules, generation {}), digest 0x{digest:016x}",
        stream.len(),
        service.catalog_entries().len(),
        service.classifier_generation(),
    );

    assert!(
        routed.contains_key("feeds/date")
            && routed.contains_key("feeds/status")
            && routed.contains_key("unrouted"),
        "stream must exercise hits and misses: {routed:?}"
    );
    assert_eq!(
        digest, EXPECTED_DIGEST,
        "routing decisions drifted from the pinned stream; if classification \
         semantics changed on purpose, re-pin the digest"
    );
    println!("ok: routing table matches the pinned digest");
}
