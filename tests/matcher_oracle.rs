//! Cross-engine oracle: `av_pattern::matches` and the `av-regex` engine
//! must agree on every pattern's exported regex — two independent matching
//! implementations checking each other.

use av_pattern::{matches, patterns_of_value, Pattern, PatternConfig, Token};
use av_regex::Regex;
use proptest::prelude::*;

fn machine_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 :/.,_-]{0,20}").expect("valid regex")
}

fn arbitrary_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        proptest::string::string_regex("[A-Za-z0-9:/. -]{1,4}")
            .expect("valid")
            .prop_map(Token::lit),
        (1u16..4).prop_map(Token::Digit),
        Just(Token::DigitPlus),
        Just(Token::Num),
        (1u16..4).prop_map(Token::Upper),
        Just(Token::UpperPlus),
        (1u16..4).prop_map(Token::Lower),
        Just(Token::LowerPlus),
        (1u16..4).prop_map(Token::Letter),
        Just(Token::LetterPlus),
        (1u16..4).prop_map(Token::Alnum),
        Just(Token::AlnumPlus),
        (1u16..3).prop_map(Token::Sym),
        Just(Token::SymPlus),
        Just(Token::SpacePlus),
        Just(Token::AnyPlus),
    ]
}

proptest! {
    /// For generated patterns of a value, both engines accept the value and
    /// agree on a battery of probe strings.
    #[test]
    fn engines_agree_on_generated_patterns(v in machine_value(), probe in machine_value()) {
        let cfg = PatternConfig { max_patterns: 64, ..Default::default() };
        for p in patterns_of_value(&v, &cfg).into_iter().take(16) {
            let re = Regex::new(&p.to_regex()).expect("exported regex compiles");
            prop_assert!(re.is_full_match(&v), "regex /{}/ rejects source {:?}", p.to_regex(), v);
            prop_assert_eq!(
                matches(&p, &probe),
                re.is_full_match(&probe),
                "{} vs /{}/ disagree on {:?}", p, p.to_regex(), probe
            );
        }
    }

    /// Arbitrary token sequences: the engines agree on arbitrary probes.
    /// (`<num>` is the one construct with non-regular lookahead subtleties,
    /// so this hammers the backtracking paths.)
    #[test]
    fn engines_agree_on_arbitrary_patterns(
        tokens in proptest::collection::vec(arbitrary_token(), 0..6),
        probe in machine_value(),
    ) {
        let p = Pattern::new(tokens);
        let re = Regex::new(&p.to_regex()).expect("exported regex compiles");
        prop_assert_eq!(
            matches(&p, &probe),
            re.is_full_match(&probe),
            "{} vs /{}/ disagree on {:?}", p, p.to_regex(), probe
        );
    }

    /// Display → parse round-trip preserves matching semantics.
    #[test]
    fn parse_roundtrip_preserves_semantics(
        tokens in proptest::collection::vec(arbitrary_token(), 0..5),
        probe in machine_value(),
    ) {
        let p = Pattern::new(tokens);
        let reparsed = av_pattern::parse(&p.to_string()).expect("display form parses");
        prop_assert_eq!(
            matches(&p, &probe),
            matches(&reparsed, &probe),
            "{} vs reparsed {} disagree on {:?}", p, reparsed, probe
        );
    }
}
