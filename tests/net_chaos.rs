//! Socket-fault chaos matrix for the event-driven serve loop.
//!
//! A reference run of a scripted multi-connection workload counts the
//! socket ops it performs ([`NetFaultPlan::none`]); the matrix then
//! replays the same workload with one deterministic fault injected at
//! every op index — short-I/O storms, EAGAIN storms, and hard resets
//! ([`FaultKind`]) — asserting that:
//!
//! * nothing deadlocks (every client completes or fails within its read
//!   timeout, and the server always shuts down);
//! * no response frame is ever torn (every line a client receives parses
//!   as a complete JSON object);
//! * short-I/O and EAGAIN storms are fully absorbed — every client
//!   completes with exactly its expected responses, in order;
//! * a reset kills at most the one connection it hit; every other
//!   connection is served to completion, and a fresh probe connection
//!   still gets a `ping` answered afterwards.
//!
//! Debug runs rotate the fault kind per index; set `AV_CHAOS_FULL=1`
//! (the release CI step) for the full kinds × indexes matrix.

use av_service::{
    response_ok, serve_listener, FaultKind, FaultListener, NetFaultPlan, NetListener,
    ServiceConfig, ValidationService,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 3;
const FRAMES: usize = 6;

/// One scripted client session: a pipelined burst of ping/classify
/// frames, then read every response back. `Ok(())` means the session
/// completed exactly as scripted; `Err` describes how it was cut short.
fn run_client(addr: SocketAddr, client: usize) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut burst = String::new();
    for i in 0..FRAMES {
        if i % 2 == 0 {
            burst.push_str("{\"op\":\"ping\"}\n");
        } else {
            burst.push_str(&format!(
                "{{\"op\":\"classify\",\"value\":\"c{client}-{i}\"}}\n"
            ));
        }
    }
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(burst.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reader = BufReader::new(stream);
    for i in 0..FRAMES {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(format!("eof after {i} responses")),
            Ok(_) => {}
            Err(e) => return Err(format!("read after {i} responses: {e}")),
        }
        // Torn-frame check: whatever else the fault did, a delivered
        // line is one complete JSON object with an `ok` field.
        assert!(line.ends_with('\n'), "client {client}: torn line {line:?}");
        let v = av_service::json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("client {client}: invalid frame {line:?}: {e:?}"));
        assert_eq!(
            v.get("ok").and_then(|j| j.as_bool()),
            Some(true),
            "client {client} frame {i}: {line}"
        );
        if i % 2 == 1 {
            // Responses must arrive in request order: the classify echo
            // carries this frame's marker.
            let value = v.get("results").and_then(|r| r.as_arr()).and_then(|a| {
                a.first()
                    .and_then(|r| r.get("value"))
                    .and_then(|s| s.as_str())
            });
            assert_eq!(
                value,
                Some(format!("c{client}-{i}").as_str()),
                "client {client}: out-of-order response {line}"
            );
        }
    }
    // A clean disconnect follows the final response.
    let mut rest = String::new();
    match reader.read_line(&mut rest) {
        Ok(0) => Ok(()),
        Ok(_) => Err(format!("unexpected extra frame {rest:?}")),
        Err(e) => Err(format!("close: {e}")),
    }
}

/// Run the scripted workload against a serve loop whose transport is
/// gated by `plan`; returns per-client outcomes.
fn run_workload(plan: &NetFaultPlan) -> Vec<Result<(), String>> {
    let service = Arc::new(ValidationService::new(ServiceConfig::default()));
    let listener = FaultListener::bind(("127.0.0.1", 0), plan.clone()).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_listener(service, Box::new(listener)))
    };

    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| scope.spawn(move || run_client(addr, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });

    // Whatever the fault hit, the serve loop must still be serving:
    // a fresh probe connection gets a ping answered. (The first probe
    // may itself absorb a not-yet-fired fault — retry a few times.)
    let mut healthy = false;
    for _ in 0..5 {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            continue;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        if stream.write_all(b"{\"op\":\"ping\"}\n").is_err() {
            continue;
        }
        let mut line = String::new();
        if BufReader::new(stream).read_line(&mut line).is_ok() && response_ok(&line) {
            healthy = true;
            break;
        }
    }
    assert!(healthy, "serve loop stopped answering after the fault");

    service.request_shutdown();
    server
        .join()
        .expect("server panicked")
        .expect("serve loop errored");
    results
}

#[test]
fn every_socket_op_index_survives_an_injected_fault() {
    // Reference run: count the workload's socket ops, fault-free.
    let reference = NetFaultPlan::none();
    for (i, outcome) in run_workload(&reference).into_iter().enumerate() {
        assert_eq!(outcome, Ok(()), "reference client {i}");
    }
    let total_ops = reference.ops_executed();
    assert!(total_ops > 20, "workload too small: {total_ops} socket ops");
    eprintln!("net_chaos: {total_ops} socket ops in the reference workload");

    let kinds = [FaultKind::ShortIo, FaultKind::Eagain, FaultKind::Reset];
    let full = std::env::var("AV_CHAOS_FULL").is_ok_and(|v| v == "1");
    for index in 0..total_ops {
        // Debug rotates kinds across indexes; AV_CHAOS_FULL covers the
        // whole cross product.
        let at_index: &[FaultKind] = if full {
            &kinds
        } else {
            &kinds[(index as usize) % kinds.len()..][..1]
        };
        for &kind in at_index {
            let outcomes = run_workload(&NetFaultPlan::fault_at(index, kind));
            let failed: Vec<(usize, &String)> = outcomes
                .iter()
                .enumerate()
                .filter_map(|(c, r)| r.as_ref().err().map(|e| (c, e)))
                .collect();
            match kind {
                FaultKind::ShortIo | FaultKind::Eagain => {
                    // Retryable faults must be invisible to every client.
                    assert!(
                        failed.is_empty(),
                        "{kind:?}@{index}: clients failed: {failed:?}"
                    );
                }
                FaultKind::Reset => {
                    // At most the one connection the reset hit goes down;
                    // everything else is served to completion.
                    assert!(
                        failed.len() <= 1,
                        "{kind:?}@{index}: more than one client failed: {failed:?}"
                    );
                }
            }
        }
    }
}
