//! C10k-style stress smoke for the event-driven serve loop: N concurrent
//! connections each pipeline a burst of classify frames; every response
//! must come back in request order, and under this nominal load nothing
//! may be shed or rejected.
//!
//! The debug default is a small smoke (64 connections). The release CI
//! step and the PERF.md measurement run the real point with
//! `AV_C10K=5000` — well inside the default `max_connections` admission
//! cap and the file-descriptor budget, far outside what the old
//! thread-per-connection loop could hold.

use av_service::{serve_listener, std_listener, ServiceConfig, ValidationService};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FRAMES_PER_CONN: usize = 16;
const DRIVER_THREADS: usize = 16;

fn stress_connections() -> usize {
    std::env::var("AV_C10K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn connect_with_retry(addr: std::net::SocketAddr) -> TcpStream {
    // Under thousands of concurrent connects the listener backlog can
    // briefly overflow; the kernel makes the client retry — help it.
    let mut last = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("connect failed after retries: {last:?}");
}

#[test]
fn pipelined_connection_storm_completes_without_shedding() {
    let n = stress_connections();
    let service = Arc::new(ValidationService::new(ServiceConfig::default()));
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_listener(service, std_listener(listener).unwrap()))
    };

    let started = Instant::now();
    let per_thread = n.div_ceil(DRIVER_THREADS);
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..DRIVER_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let first = t * per_thread;
                    let last = ((t + 1) * per_thread).min(n);
                    // Open and burst every connection first, so all of
                    // this thread's connections are concurrently live...
                    let mut conns = Vec::new();
                    for c in first..last {
                        let stream = connect_with_retry(addr);
                        stream
                            .set_read_timeout(Some(Duration::from_secs(60)))
                            .unwrap();
                        let mut burst = String::new();
                        for i in 0..FRAMES_PER_CONN {
                            burst.push_str(&format!(
                                "{{\"op\":\"classify\",\"value\":\"c{c}-{i}\"}}\n"
                            ));
                        }
                        let mut writer = stream.try_clone().unwrap();
                        writer.write_all(burst.as_bytes()).unwrap();
                        stream.shutdown(std::net::Shutdown::Write).unwrap();
                        conns.push((c, stream, Instant::now()));
                    }
                    // ...then drain them: every frame answered, in order.
                    let mut latencies = Vec::new();
                    for (c, stream, t0) in conns {
                        let mut reader = BufReader::new(stream);
                        for i in 0..FRAMES_PER_CONN {
                            let mut line = String::new();
                            let bytes = reader.read_line(&mut line).unwrap();
                            assert!(bytes > 0, "conn {c}: eof before frame {i}");
                            let marker = format!("\"value\":\"c{c}-{i}\"");
                            assert!(
                                line.contains("\"ok\":true") && line.contains(&marker),
                                "conn {c} frame {i}: {line}"
                            );
                        }
                        latencies.push(t0.elapsed());
                        let mut rest = String::new();
                        assert_eq!(
                            reader.read_line(&mut rest).unwrap(),
                            0,
                            "conn {c}: extra frame {rest:?}"
                        );
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let wall = started.elapsed();

    latencies.sort();
    let total = n * FRAMES_PER_CONN;
    let p = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    eprintln!(
        "serve_stress: {n} conns x {FRAMES_PER_CONN} frames = {total} requests \
         in {wall:?} ({:.0} req/s); conn completion p50 {:?} p99 {:?} max {:?}",
        total as f64 / wall.as_secs_f64(),
        p(0.50),
        p(0.99),
        latencies[latencies.len() - 1],
    );

    // Nominal load: nothing shed, nothing rejected, nothing errored.
    let stats = service.stats();
    assert_eq!(stats.classifications, total as u64, "lost requests");
    assert_eq!(stats.requests_shed, 0, "shed under nominal load");
    assert_eq!(stats.connections_rejected, 0, "rejected under the cap");
    assert_eq!(stats.stalls_shed, 0, "stall-shed responsive peers");
    assert_eq!(stats.connection_errors, 0, "connection errors");

    service.request_shutdown();
    server
        .join()
        .expect("server panicked")
        .expect("serve loop errored");
}
