//! Fault-injection crash-recovery harness.
//!
//! The durable service's contract: after a crash at **any** storage
//! operation — mid-WAL-append, mid-checkpoint, mid-rename, mid-fsync —
//! reopening the data directory recovers a state that is bit-identical
//! to the state after some *consistent prefix* of the operation history,
//! and that prefix covers every operation the service acknowledged.
//!
//! The harness runs a fixed op script against `MemStorage` once without
//! faults to count the storage operations it performs, then replays the
//! script once per storage op with a crash injected exactly there. Each
//! crashed run is recovered from its durable view (what an fsync-honest
//! disk would hold) and compared byte-for-byte against sequential
//! reference states built by a plain in-memory service.

use av_corpus::{generate_lake, Column, LakeProfile};
use av_durable::{FaultPlan, MemStorage, Storage};
use av_service::{owned_column, RuleCatalog, ServiceConfig, ServiceError, ValidationService};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Pinned rule clock so catalog text is identical across runs.
const CLOCK: u64 = 1_700_000_000;

/// A small synthetic lake slice: enough corpus support for FMDV to find
/// feasible rules, small enough to re-profile dozens of times.
fn lake(seed: u64, scale: usize) -> Vec<Column> {
    generate_lake(&LakeProfile::tiny().scaled(scale), seed)
        .columns()
        .cloned()
        .collect()
}

fn dates(month: u32) -> Vec<String> {
    (1..=28)
        .map(|d| format!("2023-{month:02}-{d:02}"))
        .collect()
}

enum Op {
    Ingest(Vec<Column>),
    Infer(&'static str, Vec<String>),
    Delete(&'static str),
    Persist,
}

/// Deterministic op script: ingests, rule inference, a delete, and
/// explicit checkpoints, sized so auto-checkpoints also fire between the
/// explicit ones.
fn script() -> Vec<Op> {
    vec![
        Op::Ingest(lake(85, 25)),
        Op::Infer("feeds/date", dates(1)),
        Op::Ingest(vec![owned_column(
            "gamma",
            (0..10).map(|i| format!("user_{i}@example.com")).collect(),
        )]),
        Op::Persist,
        Op::Infer("feeds/march", dates(3)),
        Op::Ingest(vec![owned_column(
            "delta",
            (0..10).map(|i| format!("10.0.0.{i}")).collect(),
        )]),
        Op::Delete("feeds/date"),
        Op::Ingest(vec![owned_column(
            "epsilon",
            (0..8).map(|i| format!("case-{i:03}")).collect(),
        )]),
        Op::Persist,
    ]
}

fn apply(service: &ValidationService, op: &Op) -> Result<(), ServiceError> {
    match op {
        Op::Ingest(columns) => service.ingest(columns).map(|_| ()),
        Op::Infer(name, train) => service.infer_rule(name, train, None).map(|_| ()),
        Op::Delete(name) => service.delete_rule(name),
        Op::Persist => service.persist(),
    }
}

/// Durable config over the given in-memory storage: small WAL segments
/// and a low auto-checkpoint threshold so rotation, truncation, and
/// incremental checkpoints all happen inside the short script.
fn durable_config(mem: &MemStorage) -> ServiceConfig {
    let mut config = ServiceConfig::durable(PathBuf::from("/data"));
    config.storage = Arc::new(mem.clone());
    config.rule_clock_unix = Some(CLOCK);
    config.durability.checkpoint_every_records = 3;
    config.durability.wal_segment_bytes = 4096;
    config
}

/// The logical durable state: serialized index bytes + catalog text.
fn state_of(service: &ValidationService) -> (Vec<u8>, String) {
    let index = service.snapshot().to_bytes().to_vec();
    let mut catalog = RuleCatalog::new();
    for entry in service.catalog_entries() {
        catalog.insert(entry);
    }
    (index, catalog.to_text())
}

/// Sequential reference states: `states[k]` is the state after the first
/// `k` script ops, built by a plain in-memory (non-durable) service.
/// `Persist` is a logical no-op, so neighbouring states may be equal.
fn reference_states() -> Vec<(Vec<u8>, String)> {
    let config = ServiceConfig {
        rule_clock_unix: Some(CLOCK),
        ..ServiceConfig::default()
    };
    let service = ValidationService::new(config);
    let mut states = vec![state_of(&service)];
    for op in script() {
        if !matches!(op, Op::Persist) {
            apply(&service, &op).unwrap();
        }
        states.push(state_of(&service));
    }
    states
}

#[test]
fn crash_at_every_storage_op_recovers_an_acknowledged_prefix() {
    let references = reference_states();

    // Fault-free run: counts storage ops and checks durable-mode state
    // matches the non-durable reference exactly.
    let mem = MemStorage::new();
    let service = ValidationService::open(durable_config(&mem)).unwrap();
    for op in script() {
        apply(&service, &op).unwrap();
    }
    assert_eq!(state_of(&service), *references.last().unwrap());
    let snapshot = service.durability().expect("durable mode is on");
    assert!(
        snapshot.checkpoints_completed >= 2,
        "script must exercise checkpoints: {snapshot:?}"
    );
    drop(service);
    let total_ops = mem.ops_executed();
    assert!(
        total_ops > 30,
        "script must exercise many storage ops, got {total_ops}"
    );

    // Clean restart replays to the exact final state.
    let reopened = ValidationService::open(durable_config(&mem)).unwrap();
    assert_eq!(state_of(&reopened), *references.last().unwrap());
    drop(reopened);

    // Crash at EVERY storage op of the fault-free trace (0-indexed).
    for crash_op in 0..total_ops {
        let mem = MemStorage::with_plan(FaultPlan::crash_at(crash_op));
        let mut acked = 0usize;
        if let Ok(service) = ValidationService::open(durable_config(&mem)) {
            for op in script() {
                if apply(&service, &op).is_ok() {
                    acked += 1;
                } else {
                    // Once the storage crashed every further durable op
                    // must refuse: an "acknowledged" op after a failed
                    // one would tear the prefix contract.
                    break;
                }
            }
        }
        assert!(mem.crashed(), "plan at op {crash_op} never fired");

        // Recover from the durable view (what a crash leaves on disk).
        let recovered_service = ValidationService::open(durable_config(&mem.crashed_view()))
            .unwrap_or_else(|e| panic!("crash at op {crash_op}: recovery refused to start: {e}"));
        let recovered = state_of(&recovered_service);
        let best = references.iter().rposition(|s| *s == recovered);
        let best = best.unwrap_or_else(|| {
            panic!("crash at op {crash_op}: recovered state matches no sequential prefix")
        });
        assert!(
            best >= acked,
            "crash at op {crash_op}: {acked} ops acknowledged but recovery holds only {best}"
        );
        let d = recovered_service.durability().expect("durable mode is on");
        assert_eq!(
            d.quarantined_files, 0,
            "crash at op {crash_op}: a pure crash must never corrupt a referenced file"
        );
        assert_eq!(
            d.skipped_records, 0,
            "crash at op {crash_op}: every replayed record must decode"
        );
    }
}

#[test]
fn corrupt_shard_is_quarantined_not_fatal() {
    let mem = MemStorage::new();
    let service = ValidationService::open(durable_config(&mem)).unwrap();
    service.ingest(&lake(85, 25)).unwrap();
    service.infer_rule("q/ids", &dates(2), None).unwrap();
    service.persist().unwrap();
    assert!(service.durability().unwrap().checkpoint_generation >= 1);
    drop(service);

    let files = mem.list(Path::new("/data")).unwrap();
    let shard = files
        .iter()
        .find(|f| f.starts_with("shard-") && f.ends_with(".avsh"))
        .expect("checkpoint must have written shard files")
        .clone();
    mem.corrupt(&Path::new("/data").join(&shard), 12);

    // Recovery starts anyway: the corrupt shard is quarantined (its
    // patterns are lost until re-ingested), everything else survives.
    let reopened = ValidationService::open(durable_config(&mem)).unwrap();
    let d = reopened.durability().unwrap();
    assert!(d.quarantined_files >= 1, "corruption must be quarantined");
    assert!(reopened.rule("q/ids").is_ok(), "catalog must survive");
    let quarantined = mem.list(&Path::new("/data").join("quarantine")).unwrap();
    assert!(
        quarantined.iter().any(|f| f == &shard),
        "corrupt file must be moved to quarantine/, got {quarantined:?}"
    );
}

#[test]
fn legacy_plain_files_upgrade_into_durable_mode() {
    let dir = std::env::temp_dir().join(format!("av_crash_legacy_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A pre-durability service persists plain index.avix + rules.avcat.
    let mut config = ServiceConfig::with_data_dir(&dir);
    config.rule_clock_unix = Some(CLOCK);
    let legacy = ValidationService::new(config);
    legacy.ingest(&lake(85, 25)).unwrap();
    legacy.infer_rule("legacy/date", &dates(6), None).unwrap();
    legacy.persist().unwrap();
    let want = state_of(&legacy);
    drop(legacy);

    // Reopening the same directory in durable mode adopts the legacy
    // files, and the first checkpoint moves it to manifest-based layout.
    let mut config = ServiceConfig::durable(&dir);
    config.rule_clock_unix = Some(CLOCK);
    let durable = ValidationService::open(config).unwrap();
    assert_eq!(state_of(&durable), want);
    durable.persist().unwrap();
    assert!(durable.durability().unwrap().checkpoint_generation >= 1);
    drop(durable);

    // And the durable layout recovers on a plain OS-storage reopen too.
    let mut config = ServiceConfig::durable(&dir);
    config.rule_clock_unix = Some(CLOCK);
    let again = ValidationService::open(config).unwrap();
    assert_eq!(state_of(&again), want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_only_records_since_checkpoint() {
    let mem = MemStorage::new();
    let mut config = durable_config(&mem);
    config.durability.checkpoint_every_records = 4;
    let service = ValidationService::open(config.clone()).unwrap();
    // 10 single-record ops: auto-checkpoints at 4 and 8, leaving 2 in
    // the WAL. Recovery must replay those 2 — not rebuild 10.
    for i in 0..10u32 {
        let values: Vec<String> = (0..6).map(|v| format!("r{i}-{v:03}")).collect();
        service
            .ingest(&[owned_column(&format!("col-{i}"), values)])
            .unwrap();
    }
    let live = service.durability().unwrap();
    assert_eq!(live.checkpoints_completed, 2, "{live:?}");
    assert_eq!(live.records_since_checkpoint, 2, "{live:?}");
    drop(service);

    let reopened = ValidationService::open(config).unwrap();
    let d = reopened.durability().unwrap();
    assert_eq!(
        d.replayed_records, 2,
        "recovery must be O(records since checkpoint): {d:?}"
    );
    assert_eq!(d.checkpoint_generation, 2, "{d:?}");
}
