//! Concurrency acceptance tests: N threads hammering one shared engine
//! must produce exactly the reports a sequential run produces, and
//! validation must keep working (on consistent snapshots) while ingestion
//! swaps the live index underneath it.

use auto_validate::prelude::*;
use av_corpus::generate_lake;
use av_service::{BatchItem, ServiceConfig, ServiceError, ValidationService};
use std::sync::Arc;

fn lake_columns(seed: u64, scale: usize) -> Vec<Column> {
    generate_lake(&LakeProfile::tiny().scaled(scale), seed)
        .columns()
        .cloned()
        .collect()
}

fn service_with_rules() -> ValidationService {
    let service = ValidationService::new(ServiceConfig::default());
    service.ingest(&lake_columns(13, 100)).unwrap();
    let dates: Vec<String> = (1..=28).map(|d| format!("2022-05-{d:02}")).collect();
    service.infer_rule("dates", &dates, None).unwrap();
    let times: Vec<String> = (0..60)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, i, i))
        .collect();
    service.infer_rule("times", &times, None).unwrap();
    let statuses: Vec<String> = (0..90)
        .map(|i| ["OK", "RETRY", "FAIL"][i % 3].to_string())
        .collect();
    service.infer_rule("statuses", &statuses, None).unwrap();
    service
}

/// Deterministic owned workload; borrowed `BatchItem`s are built per use
/// (the service API is zero-copy and only sees `&str`).
fn workload(n: usize) -> Vec<(&'static str, Vec<String>)> {
    (0..n)
        .map(|i| {
            let rule = ["dates", "times", "statuses", "missing"][i % 4];
            let values: Vec<String> = match i % 3 {
                0 => (1..=25).map(|d| format!("2022-06-{d:02}")).collect(),
                1 => (0..25)
                    .map(|j| format!("{:02}:{:02}:{:02}", j % 24, j, j))
                    .collect(),
                _ => (0..25).map(|j| format!("drift-{i}-{j}")).collect(),
            };
            (rule, values)
        })
        .collect()
}

fn borrow<'a>(owned: &'a [(&'static str, Vec<String>)]) -> Vec<BatchItem<'a>> {
    owned
        .iter()
        .map(|(rule, values)| BatchItem {
            rule,
            values: values.iter().map(String::as_str).collect(),
        })
        .collect()
}

fn run_sequential(
    service: &ValidationService,
    items: &[BatchItem<'_>],
) -> Vec<Result<ValidationReport, String>> {
    items
        .iter()
        .map(|it| {
            service
                .validate(it.rule, &it.values)
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// N OS threads each validating their own slice of the workload against
/// one shared service must reproduce the sequential reports exactly.
#[test]
fn threads_sharing_one_engine_match_sequential() {
    let service = Arc::new(service_with_rules());
    let owned = workload(64);
    let items = borrow(&owned);
    let expected = run_sequential(&service, &items);

    for threads in [2usize, 4, 8] {
        let chunk = items.len().div_ceil(threads);
        let results: Vec<Result<ValidationReport, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|slice| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|it| {
                                service
                                    .validate(it.rule, &it.values)
                                    .map_err(|e| e.to_string())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(results.len(), expected.len());
        for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "thread-count {threads}, item {i}");
        }
    }
}

/// The built-in worker-pool batch API is also exactly sequential-equivalent.
#[test]
fn worker_pool_batch_matches_sequential() {
    let service = service_with_rules();
    let owned = workload(48);
    let items = borrow(&owned);
    let expected = run_sequential(&service, &items);
    let batched: Vec<Result<ValidationReport, String>> = service
        .validate_batch(&items)
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect();
    assert_eq!(batched, expected);
}

/// Validators keep producing consistent reports while another thread
/// ingests new corpus batches: rules are immutable catalog entries, so a
/// concurrent index swap never changes a validation outcome.
#[test]
fn validation_is_stable_under_concurrent_ingest() {
    let service = Arc::new(service_with_rules());
    let owned = workload(24);
    let expected = run_sequential(&service, &borrow(&owned));

    let ingester = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            for seed in 0..4 {
                service.ingest(&lake_columns(100 + seed, 40)).unwrap();
            }
        })
    };
    let validators: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            // The workload is deterministic: each thread regenerates and
            // borrows its own copy (items are non-'static by design).
            std::thread::spawn(move || {
                let owned = workload(24);
                run_sequential(&service, &borrow(&owned))
            })
        })
        .collect();
    for v in validators {
        assert_eq!(v.join().expect("validator panicked"), expected);
    }
    ingester.join().expect("ingester panicked");
    assert!(service.snapshot().num_columns > 100);
}

/// Unknown rules error identically from every access path.
#[test]
fn unknown_rule_is_an_error_not_a_panic() {
    let service = service_with_rules();
    assert!(matches!(
        service.validate("missing", &["x"]),
        Err(ServiceError::UnknownRule(_))
    ));
    let batch = service.validate_batch(&[BatchItem {
        rule: "missing",
        values: vec!["x"],
    }]);
    assert!(matches!(&batch[0], Err(ServiceError::UnknownRule(_))));
}
