//! The paper's own worked examples, as executable assertions.

use auto_validate::prelude::*;
use av_pattern::{analyze_column, hypothesis_space, patterns_of_value};
use std::sync::{Arc, OnceLock};

fn shared_index() -> &'static Arc<PatternIndex> {
    static IDX: OnceLock<Arc<PatternIndex>> = OnceLock::new();
    IDX.get_or_init(|| {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(1500), 4242);
        let cols: Vec<&Column> = corpus.columns().collect();
        Arc::new(PatternIndex::build(&cols, &IndexConfig::default()))
    })
}

fn engine() -> AutoValidate<'static> {
    let index = shared_index();
    AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns))
}

/// §1 / Fig. 2(a): the C1 date column. The profiling pattern pins March;
/// the validation pattern generalizes to any month and survives April.
#[test]
fn c1_march_dates_generalize_to_april() {
    let march: Vec<String> = (1..=28).map(|d| format!("Mar {d:02} 2019")).collect();
    let rule = engine().infer_default(&march).expect("rule for C1");
    assert_eq!(
        rule.pattern().to_string(),
        "<letter>{3} <digit>{2} <digit>{4}",
        "the paper's ideal validation pattern for C1"
    );
    let april: Vec<String> = (1..=30).map(|d| format!("Apr {d:02} 2019")).collect();
    assert!(!rule.validate(&april).flagged, "April must not false-alarm");
}

/// §1 / Fig. 2(b): the C2 timestamp column with single- and two-digit
/// hours; the rule must keep `<digit>+` where widths genuinely vary.
#[test]
fn c2_timestamps_keep_variable_width_hours() {
    let c2: Vec<String> = (0..60)
        .map(|i| {
            format!(
                "{}/{:02}/{} {}:{:02}:{:02} {}",
                (i % 12) + 1,
                (i % 28) + 1,
                2019,
                (i % 12) + 1,
                (i * 7) % 60,
                (i * 13) % 60,
                if i % 2 == 0 { "AM" } else { "PM" }
            )
        })
        .collect();
    let rule = engine().infer_default(&c2).expect("rule for C2");
    // Future values with the other hour width must conform.
    assert!(rule.conforms("12/01/2019 11:59:59 PM"));
    assert!(rule.conforms("1/01/2019 1:00:00 AM"));
    // Entirely different domains must not.
    assert!(!rule.conforms("2019-03-01T00:00:00Z"));
}

/// §2.1: `P(v)` for "9:07" contains the generalizations the paper lists.
#[test]
fn pattern_space_of_paper_value() {
    let pv = patterns_of_value("9:07", &PatternConfig::default());
    for want in [
        "<digit>{1}:<digit>{2}",
        "<digit>+:<digit>{2}",
        "<digit>{1}:<digit>+",
        "<num>:<digit>+",
        "9:<digit>{2}",
    ] {
        let p = parse(want).unwrap();
        assert!(pv.contains(&p), "P(\"9:07\") missing {want}");
    }
}

/// §2.2 / Fig. 6: the impure corpus column D gives the narrow hypotheses
/// h1/h2 impurity while the good h5 stays clean.
#[test]
fn fig6_impurity_mechanics() {
    let d: Vec<String> = vec![
        "9/12/2019 12:01:32".into(),
        "9/12/2019 11:11:09".into(),
        "10/02/2019 10:02:20".into(),
        "10/02/2019 00:00:01".into(),
        "9/12/2019 12:01:32 PM".into(),
        "10/02/2019 10:02:20 AM".into(),
    ];
    let analysis = analyze_column(&d, &PatternConfig::default());
    // Two coarse structures: with and without the AM/PM suffix.
    assert_eq!(analysis.groups.len(), 2);
    assert!(!analysis.is_homogeneous());
}

/// §3 / Fig. 8: a composite column too wide for whole-pattern inference is
/// validated via vertical cuts.
#[test]
fn fig8_composite_columns_need_vertical_cuts() {
    let composite: Vec<String> = (0..60)
        .map(|i| {
            format!(
                "{}.{:02}|{}-{:02}-{:02}|{:02}:{:02}:{:02}",
                i % 10,
                (i * 3) % 100,
                2010 + (i % 20),
                (i % 12) + 1,
                (i % 28) + 1,
                i % 24,
                (i * 7) % 60,
                (i * 13) % 60
            )
        })
        .collect();
    let e = engine();
    // Basic FMDV fails (the full pattern is too sparse in any corpus)…
    assert!(e.infer(&composite, Variant::Fmdv).is_err());
    // …but FMDV-V succeeds and validates every value.
    let rule = e.infer(&composite, Variant::FmdvV).expect("vertical rule");
    for v in &composite {
        assert!(rule.conforms(v), "{} !~ {v}", rule.pattern());
    }
}

/// §4 / Fig. 9: ad-hoc specials are cut horizontally and tracked by the
/// distributional test at validation time.
#[test]
fn fig9_adhoc_specials_are_tolerated_then_tracked() {
    let mut train: Vec<String> = (0..99)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect();
    train.push("-".into());
    let e = engine();
    assert!(e.infer(&train, Variant::Fmdv).is_err(), "basic FMDV chokes");
    let rule = e.infer(&train, Variant::FmdvVH).expect("VH tolerates dirt");
    assert!((rule.train_nonconforming - 0.01).abs() < 1e-9);
    // Same dirt rate at test time: fine.
    let mut same: Vec<String> = (0..99)
        .map(|i| format!("{:02}:{:02}:{:02}", (i * 3) % 24, i % 60, (i * 11) % 60))
        .collect();
    same.push("-".into());
    assert!(!rule.validate(&same).flagged);
    // Dirt explosion (the §4 example: 0.1% → 5%+): flagged.
    let mut burst: Vec<String> = (0..60)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, i % 60, i % 60))
        .collect();
    burst.extend((0..40).map(|_| "-".to_string()));
    assert!(rule.validate(&burst).flagged);
}

/// Lemma 1's intuition, empirically: under-generalizing hypotheses are
/// pruned by corpus impurity evidence.
#[test]
fn under_generalization_is_pruned_by_corpus_evidence() {
    // Train during hours 1–9 only: single-digit hours.
    let train: Vec<String> = (0..40)
        .map(|i| format!("{}:{:02}:{:02}", (i % 9) + 1, (i * 7) % 60, (i * 13) % 60))
        .collect();
    // <digit>{1} at the hour is in H(C)…
    let h = hypothesis_space(&train, &PatternConfig::default());
    let narrow = parse("<digit>{1}:<digit>{2}:<digit>{2}").unwrap();
    assert!(h.contains(&narrow));
    // …but the corpus (whose time columns mix 1- and 2-digit hours, via the
    // datetime-us domain) penalizes it, so the chosen rule accepts 2-digit
    // hours too.
    let rule = engine().infer_default(&train).expect("rule");
    assert!(
        rule.conforms("23:59:59"),
        "chosen rule {} must generalize the hour width",
        rule.pattern()
    );
}
