//! Protocol hardening under hostile input: arbitrary lines through the
//! request handler, and arbitrary byte frames through a live event-loop
//! connection. The properties:
//!
//! * the handler never panics and always answers one well-formed JSON
//!   response per request line;
//! * over TCP, every frame gets exactly one response — counting the
//!   event loop's skip-blank, shed, and fatal-error rules — and a
//!   protocol-fatal frame (oversized or non-UTF-8) yields exactly one
//!   error frame followed by a clean disconnect.

use av_service::json::parse;
use av_service::protocol::handle_line_into;
use av_service::{serve_listener, std_listener, ServiceConfig, ValidationService};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Request cap for the live server: small enough that generated frames
/// actually exercise the oversized-line path.
const FUZZ_MAX_REQUEST: usize = 256;

fn fuzz_service() -> &'static ValidationService {
    static SERVICE: OnceLock<ValidationService> = OnceLock::new();
    SERVICE.get_or_init(|| ValidationService::new(ServiceConfig::default()))
}

/// One shared event-loop server for all live-connection cases (leaked at
/// process exit; each case opens its own connection).
fn fuzz_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let config = ServiceConfig {
            max_request_bytes: FUZZ_MAX_REQUEST,
            ..ServiceConfig::default()
        };
        let service = Arc::new(ValidationService::new(config));
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || serve_listener(service, std_listener(listener).unwrap()));
        addr
    })
}

/// A request frame: arbitrary bytes with newlines mapped away, so the
/// driver controls framing exactly.
fn arbitrary_frame() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        any::<u8>().prop_map(|b| if b == b'\n' { b' ' } else { b }),
        0..(FUZZ_MAX_REQUEST * 2),
    )
}

/// What the event loop owes in response to one vetted frame.
enum Owed {
    Nothing,
    Response,
    FatalThenClose,
}

fn owed_for(frame: &[u8]) -> Owed {
    if frame.len() > FUZZ_MAX_REQUEST {
        return Owed::FatalThenClose;
    }
    match std::str::from_utf8(frame) {
        Err(_) => Owed::FatalThenClose,
        Ok(text) if text.trim().is_empty() => Owed::Nothing,
        Ok(_) => Owed::Response,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary request lines (valid UTF-8 reaches the handler; the
    /// transport rejects the rest): no panic, exactly one response, and
    /// the response is a JSON object with a boolean `ok`.
    #[test]
    fn handler_answers_every_line_with_well_formed_json(line in "\\PC{0,300}") {
        let mut out = String::new();
        let _outcome = handle_line_into(fuzz_service(), &line, &mut out);
        prop_assert!(!out.is_empty(), "no response for {line:?}");
        prop_assert!(!out.contains('\n'), "multi-line response for {line:?}");
        let v = parse(&out)
            .map_err(|e| TestCaseError::Fail(format!("unparseable response {out:?}: {e:?}")))?;
        prop_assert!(
            v.get("ok").and_then(|j| j.as_bool()).is_some(),
            "response without boolean ok: {out}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte frames pipelined over a live event-loop connection:
    /// responses arrive one per owed frame, all parse as JSON, and a
    /// fatal frame produces one error then EOF — never a hang, never a
    /// torn frame, never a panic.
    #[test]
    fn live_connection_answers_or_disconnects_cleanly(
        frames in proptest::collection::vec(arbitrary_frame(), 0..20),
    ) {
        let mut expected = 0usize;
        let mut expect_eof_early = false;
        for frame in &frames {
            match owed_for(frame) {
                Owed::Nothing => {}
                Owed::Response => expected += 1,
                Owed::FatalThenClose => {
                    expected += 1;
                    expect_eof_early = true;
                    break;
                }
            }
        }

        let stream = TcpStream::connect(fuzz_server_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).ok();
        let mut payload = Vec::new();
        for frame in &frames {
            payload.extend_from_slice(frame);
            payload.push(b'\n');
        }
        let mut writer = stream.try_clone().unwrap();
        // The server may already have closed on a fatal frame; a write
        // failure past that point is the disconnect, not a bug.
        let write_res = writer.write_all(&payload);
        let _ = stream.shutdown(std::net::Shutdown::Write);

        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    prop_assert!(line.ends_with('\n'), "torn response frame: {line:?}");
                    let v = parse(line.trim_end()).map_err(|e| {
                        TestCaseError::Fail(format!("torn/invalid response {line:?}: {e:?}"))
                    })?;
                    prop_assert!(v.get("ok").is_some(), "response without ok: {line}");
                    responses.push(line);
                }
                Err(e) => return Err(TestCaseError::Fail(format!(
                    "read failed (server hung or died): {e}"
                ))),
            }
        }
        if write_res.is_ok() {
            prop_assert_eq!(
                responses.len(),
                expected,
                "frames {:?} owed {} responses, got {:?}",
                frames.len(),
                expected,
                responses
            );
        } else {
            // The kernel dropped part of the payload on a reset; the
            // server still must have answered only what it vetted.
            prop_assert!(expect_eof_early, "write failed without a fatal frame");
            prop_assert!(responses.len() <= expected);
        }
    }
}
