//! End-to-end integration: lake → offline index → online inference →
//! validation → evaluation, across crate boundaries.

use auto_validate::prelude::*;
use av_eval::{evaluate_method, EvalConfig, FmdvValidator};
use std::sync::{Arc, OnceLock};

fn shared() -> &'static (Corpus, Arc<PatternIndex>) {
    static ENV: OnceLock<(Corpus, Arc<PatternIndex>)> = OnceLock::new();
    ENV.get_or_init(|| {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(1200), 99);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = Arc::new(PatternIndex::build(&cols, &IndexConfig::default()));
        (corpus, index)
    })
}

#[test]
fn full_pipeline_quality_floor() {
    let (corpus, index) = shared();
    let benchmark = Benchmark::sample(corpus, 120, 20, 500, 5);
    let config = FmdvConfig::scaled_for_corpus(index.num_columns);
    let cfg = EvalConfig {
        recall_sample: 30,
        ..Default::default()
    };
    let vh = FmdvValidator::new(index.clone(), config.clone(), Variant::FmdvVH);
    let r_vh = evaluate_method(&vh, &benchmark, &cfg);
    assert!(
        r_vh.precision >= 0.9,
        "FMDV-VH precision {} below floor",
        r_vh.precision
    );
    assert!(
        r_vh.recall >= 0.5,
        "FMDV-VH recall {} below floor",
        r_vh.recall
    );
    // The combined variant must not lose to basic FMDV (the paper's Fig. 10
    // ordering, weak form).
    let basic = FmdvValidator::new(index.clone(), config, Variant::Fmdv);
    let r_basic = evaluate_method(&basic, &benchmark, &cfg);
    assert!(
        r_vh.f1() + 1e-9 >= r_basic.f1(),
        "VH f1 {} < FMDV f1 {}",
        r_vh.f1(),
        r_basic.f1()
    );
}

#[test]
fn rules_are_deterministic() {
    let (_, index) = shared();
    let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
    let train: Vec<String> = (0..50)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect();
    let a = engine.infer_default(&train).expect("rule");
    let b = engine.infer_default(&train).expect("rule");
    assert_eq!(a.pattern(), b.pattern());
    assert_eq!(a.expected_fpr, b.expected_fpr);
}

#[test]
fn index_persistence_preserves_inference() {
    let (_, index) = shared();
    let bytes = index.to_bytes();
    let restored = PatternIndex::from_bytes(&bytes).expect("roundtrip");
    let config = FmdvConfig::scaled_for_corpus(index.num_columns);
    let train: Vec<String> = (1..=40)
        .map(|d| format!("2019-03-{:02}", (d % 28) + 1))
        .collect();
    let engine_a = AutoValidate::new(index, config.clone());
    let engine_b = AutoValidate::new(&restored, config);
    match (
        engine_a.infer_default(&train),
        engine_b.infer_default(&train),
    ) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.pattern(), b.pattern());
            assert_eq!(a.coverage, b.coverage);
        }
        (Err(a), Err(b)) => assert_eq!(a, b),
        (a, b) => panic!("divergence after persistence: {a:?} vs {b:?}"),
    }
}

#[test]
fn exported_regexes_agree_with_pattern_matching() {
    let (corpus, index) = shared();
    let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
    let mut checked = 0;
    for col in corpus.columns().take(300) {
        if col.values.len() < 20 {
            continue;
        }
        let train: Vec<String> = col.values.iter().take(30).cloned().collect();
        let Ok(rule) = engine.infer_default(&train) else {
            continue;
        };
        let re = av_regex::Regex::new(&rule.to_regex()).expect("exported regex compiles");
        for v in col.values.iter().take(50) {
            assert_eq!(
                rule.conforms(v),
                re.is_full_match(v),
                "pattern {} vs regex /{}/ disagree on {v:?}",
                rule.pattern(),
                rule.to_regex()
            );
        }
        checked += 1;
        if checked >= 25 {
            break;
        }
    }
    assert!(checked >= 10, "checked only {checked} rules");
}

#[test]
fn auto_rule_fallback_covers_vocabulary_columns() {
    let (_, index) = shared();
    let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
    // A vocabulary column of mixed-width words: patterns decline, the
    // dictionary fallback takes over.
    let statuses: Vec<String> = (0..200)
        .map(|i| ["Delivered", "Pending", "Throttled", "No"][i % 4].to_string())
        .collect();
    let rule = engine.infer_auto(&statuses).expect("some rule");
    let same: Vec<String> = (0..100)
        .map(|i| ["Pending", "No", "Delivered"][i % 3].to_string())
        .collect();
    assert!(!rule.validate(&same).flagged);
    let swapped: Vec<String> = (0..100).map(|i| format!("10.0.0.{i}")).collect();
    assert!(rule.validate(&swapped).flagged);
}

#[test]
fn tagging_generalizes_across_the_lake() {
    let (corpus, index) = shared();
    let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
    // Find a popular machine domain with several columns and check the tag
    // from one column reaches another.
    use std::collections::HashMap;
    let mut by_domain: HashMap<&str, Vec<&Column>> = HashMap::new();
    for col in corpus.columns() {
        if col.meta.kind == av_corpus::ColumnKind::Machine
            && col.meta.dirty_rate == 0.0
            && col.len() >= 30
        {
            if let Some(d) = col.meta.domain.as_deref() {
                by_domain.entry(d).or_default().push(col);
            }
        }
    }
    let mut tested = 0;
    for (domain, cols) in by_domain {
        if cols.len() < 2 || domain == "boolean" || domain == "country-code" {
            continue;
        }
        if let Ok(tag) = engine.infer_tag(&cols[0].values, 0.02) {
            if tag.tags(&cols[1].values) {
                tested += 1;
            }
        }
        if tested >= 3 {
            break;
        }
    }
    assert!(tested >= 3, "tagging should generalize for popular domains");
}
