//! Streaming ⇔ batch equivalence for the unified `Validator` API.
//!
//! The contract: a [`ValidationSession`] fed values one at a time must
//! `finish()` into a [`Report`] **bit-identical** to `validate_batch` over
//! the same slice — for every FMDV [`Variant`], the auto-fallback rule
//! kinds, and the baseline validators. "Bit-identical" is checked on the
//! raw f64 bits of `p_value`/`nonconforming_frac`, not with an epsilon.

use auto_validate::prelude::*;
use av_baselines::{baseline_by_name, InferredRule};
use av_core::{Report, ValidationSession, Validator};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn shared_index() -> &'static Arc<PatternIndex> {
    static INDEX: OnceLock<Arc<PatternIndex>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(700), 41);
        let cols: Vec<&Column> = corpus.columns().collect();
        Arc::new(PatternIndex::build(&cols, &IndexConfig::default()))
    })
}

/// One rule per FMDV variant, inferred from a clean time-of-day column.
fn fmdv_rules() -> &'static Vec<(Variant, ValidationRule)> {
    static RULES: OnceLock<Vec<(Variant, ValidationRule)>> = OnceLock::new();
    RULES.get_or_init(|| {
        let index = shared_index();
        let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
        let train: Vec<String> = (0..60)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        [
            Variant::Fmdv,
            Variant::FmdvV,
            Variant::FmdvH,
            Variant::FmdvVH,
            Variant::Cmdv,
        ]
        .into_iter()
        .filter_map(|v| engine.infer(&train, v).ok().map(|r| (v, r)))
        .collect()
    })
}

/// Baselines under test (satellite requirement: at least two).
fn baseline_rules() -> &'static Vec<(String, InferredRule)> {
    static RULES: OnceLock<Vec<(String, InferredRule)>> = OnceLock::new();
    RULES.get_or_init(|| {
        let train: Vec<String> = (0..60)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        let refs: Vec<&str> = train.iter().map(String::as_str).collect();
        ["tfdv", "grok", "pwheel", "deequ-fra"]
            .iter()
            .filter_map(|name| {
                baseline_by_name(name)
                    .and_then(|m| m.infer(&refs))
                    .map(|rule| (name.to_string(), rule))
            })
            .collect()
    })
}

/// Drive the validator both ways and require raw-bit equality.
fn assert_stream_equals_batch(validator: &dyn Validator, values: &[String], label: &str) {
    let batch: Report = (&validator).validate_batch(values.iter().map(String::as_str));
    let mut session = ValidationSession::new(validator);
    for v in values {
        session.push(v);
    }
    let streamed = session.finish();
    assert_eq!(streamed.checked, batch.checked, "{label}: checked");
    assert_eq!(
        streamed.nonconforming, batch.nonconforming,
        "{label}: nonconforming"
    );
    assert_eq!(streamed.flagged, batch.flagged, "{label}: flagged");
    assert_eq!(
        streamed.nonconforming_frac.to_bits(),
        batch.nonconforming_frac.to_bits(),
        "{label}: frac bits"
    );
    assert_eq!(
        streamed.p_value.to_bits(),
        batch.p_value.to_bits(),
        "{label}: p-value bits"
    );
}

/// A mixed future column: conforming times, near-misses, and junk.
fn value_strategy() -> impl Strategy<Value = Vec<String>> {
    let one = prop_oneof![
        (0u8..24, 0u8..60, 0u8..60).prop_map(|(h, m, s)| format!("{h:02}:{m:02}:{s:02}")),
        (0u8..24, 0u8..60).prop_map(|(h, m)| format!("{h}:{m:02}")),
        "[a-z]{1,6}-[0-9]{1,4}".prop_map(|s| s),
        Just(String::new()),
        Just("NULL".to_string()),
        Just("09:07:32\r\n".to_string()),
    ];
    proptest::collection::vec(one, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every FMDV variant's rule: streaming == batch, bit for bit.
    #[test]
    fn fmdv_variants_stream_equals_batch(values in value_strategy()) {
        let rules = fmdv_rules();
        prop_assert!(rules.len() >= 4, "expected rules for ≥4 variants");
        for (variant, rule) in rules {
            assert_stream_equals_batch(rule, &values, variant.label());
        }
    }

    /// Baseline validators (≥2 required; we run four): streaming == batch.
    #[test]
    fn baselines_stream_equals_batch(values in value_strategy()) {
        let rules = baseline_rules();
        prop_assert!(rules.len() >= 2, "expected ≥2 baseline rules, got {}", rules.len());
        for (name, rule) in rules {
            assert_stream_equals_batch(rule.validator(), &values, name);
        }
    }

    /// The auto-fallback kinds (numeric + dictionary) obey the same law.
    #[test]
    fn fallback_rule_kinds_stream_equals_batch(values in value_strategy()) {
        let index = shared_index();
        let engine = AutoValidate::new(index, FmdvConfig::scaled_for_corpus(index.num_columns));
        let numbers: Vec<String> = (0..80).map(|i| format!("{}.{:02}", i, i % 100)).collect();
        let statuses: Vec<String> = (0..80).map(|i| ["OK", "RETRY", "FAIL"][i % 3].into()).collect();
        for train in [&numbers, &statuses] {
            let rule = engine.infer_auto(train).expect("fallback rule");
            assert_stream_equals_batch(&rule, &values, &rule.describe());
        }
    }
}

/// Interleaved sessions don't share state: two concurrent sessions over the
/// same rule tally independently.
#[test]
fn sessions_are_independent() {
    let (_, rule) = &fmdv_rules()[0];
    let mut a = rule.session();
    let mut b = rule.session();
    a.push("09:07:32");
    b.push("junk");
    b.push("junk");
    assert_eq!(a.tally().checked, 1);
    assert_eq!(a.tally().nonconforming, 0);
    assert_eq!(b.tally().checked, 2);
    assert_eq!(b.tally().nonconforming, 2);
}
