//! Robustness / failure-injection: adversarial inputs across the public
//! API surface must degrade gracefully — errors, never panics or hangs.

use auto_validate::prelude::*;
use std::sync::{Arc, OnceLock};

fn index() -> &'static Arc<PatternIndex> {
    static IDX: OnceLock<Arc<PatternIndex>> = OnceLock::new();
    IDX.get_or_init(|| {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(500), 1);
        let cols: Vec<&Column> = corpus.columns().collect();
        Arc::new(PatternIndex::build(&cols, &IndexConfig::default()))
    })
}

fn engine() -> AutoValidate<'static> {
    let idx = index();
    AutoValidate::new(idx, FmdvConfig::scaled_for_corpus(idx.num_columns))
}

#[test]
fn adversarial_training_columns_never_panic() {
    let e = engine();
    let adversarial: Vec<Vec<String>> = vec![
        vec![],                                                 // empty column
        vec!["".into()],                                        // single empty string
        vec!["".into(); 50],                                    // all empty
        vec!["a".into()],                                       // single char
        vec!["x".repeat(5000)],                                 // very long value
        vec!["日本語".into(), "中文".into()],                   // non-ASCII
        vec!["\u{0}\u{1}\u{2}".into()],                         // control chars
        (0..100).map(|i| format!("{i}")).collect(),             // plain ints
        vec!["a b c d e f g h i j k l m n o p".into(); 10],     // many tokens
        vec!["-".into(), "?".into(), "".into(), "NULL".into()], // all specials
        (0..50).map(|i| "abc".repeat(i % 20 + 1)).collect(),    // wildly varying widths
    ];
    for (i, train) in adversarial.iter().enumerate() {
        for variant in [
            Variant::Fmdv,
            Variant::FmdvV,
            Variant::FmdvH,
            Variant::FmdvVH,
        ] {
            let _ = e.infer(train, variant); // Ok or Err, never panic
        }
        let _ = e.infer_auto(train);
        let _ = e.infer_tag(train, 0.05);
        let _ = i;
    }
}

#[test]
fn adversarial_validation_inputs_never_panic() {
    let e = engine();
    let train: Vec<String> = (0..40).map(|i| format!("{:04}", i)).collect();
    let Ok(rule) = e.infer_default(&train) else {
        return;
    };
    for test_col in [
        vec![],
        vec!["".to_string()],
        vec!["™∞é".to_string()],
        vec!["9".repeat(10_000)],
        (0..10_000).map(|i| i.to_string()).collect::<Vec<_>>(),
    ] {
        let report = rule.validate(&test_col);
        assert!(report.nonconforming <= report.checked);
        assert!((0.0..=1.0).contains(&report.p_value));
    }
}

#[test]
fn extreme_configs_are_handled() {
    let idx = index();
    let train: Vec<String> = (0..30)
        .map(|i| format!("{:02}:{:02}", i % 24, i % 60))
        .collect();
    // r = 0 (strictest), m = huge (nothing feasible), θ = 1 (everything cut).
    for (r, m, theta) in [
        (0.0, 1, 0.1),
        (0.1, u64::MAX, 0.1),
        (0.1, 1, 1.0),
        (1.0, 0, 0.0),
    ] {
        let mut config = FmdvConfig::scaled_for_corpus(idx.num_columns);
        config.r = r;
        config.m = m;
        config.theta = theta;
        let e = AutoValidate::new(idx, config);
        for variant in [
            Variant::Fmdv,
            Variant::FmdvV,
            Variant::FmdvH,
            Variant::FmdvVH,
        ] {
            let _ = e.infer(&train, variant);
        }
    }
}

#[test]
fn corrupted_index_bytes_are_rejected_not_trusted() {
    let idx = index();
    let bytes = idx.to_bytes();
    // Flip bytes at several offsets; load must either error or produce an
    // index that still answers lookups without panicking.
    for offset in [0usize, 3, 7, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.to_vec();
        corrupted[offset] ^= 0xFF;
        match PatternIndex::from_bytes(&corrupted) {
            Err(_) => {}
            Ok(loaded) => {
                let p = parse("<digit>{4}").unwrap();
                let _ = loaded.lookup(&p);
            }
        }
    }
    // Truncations at every power of two.
    let mut cut = 1usize;
    while cut < bytes.len() {
        let _ = PatternIndex::from_bytes(&bytes[..cut]);
        cut *= 2;
    }
}

#[test]
fn pattern_parser_rejects_garbage_without_panic() {
    for garbage in [
        "<",
        ">",
        "<digit>{",
        "<digit>{999999999999}",
        "<nope>+",
        "\\",
        "<any>{3}",
        "<<>>",
        "<digit>{-1}",
        "a<b>c",
    ] {
        let _ = parse(garbage); // Err is fine; panic is not
    }
}

#[test]
fn unicode_values_roundtrip_through_the_whole_stack() {
    let e = engine();
    // Mixed-script machine-ish column: "ID-<digits>" with a unicode prefix.
    let train: Vec<String> = (0..40).map(|i| format!("№-{i:04}")).collect();
    if let Ok(rule) = e.infer_auto(&train) {
        assert!(rule.conforms("№-9999") || !rule.conforms("№-9999")); // no panic
        let report = rule.validate(&train);
        assert!(
            !report.flagged,
            "training data must conform to its own rule"
        );
    }
}

#[test]
fn empty_and_single_value_columns_are_consistent() {
    use av_pattern::{analyze_column, column_pattern_profile, hypothesis_space, PatternConfig};
    let cfg = PatternConfig::default();
    // Column of empty strings: one empty-pattern group.
    let empties = vec![String::new(); 10];
    let analysis = analyze_column(&empties, &cfg);
    assert_eq!(analysis.groups.len(), 1);
    assert!(analysis.is_homogeneous());
    // Hypothesis space for empty strings: just the empty pattern.
    let h = hypothesis_space(&empties, &cfg);
    assert_eq!(h.len(), 1);
    assert!(h[0].is_empty());
    // Profiles never report matched fractions above 1.
    let profile = column_pattern_profile(&empties, &cfg, 13);
    for (_, f) in profile {
        assert!((0.0..=1.0 + 1e-9).contains(&f));
    }
}
