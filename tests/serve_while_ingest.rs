//! Serve-while-ingest stress: one thread applies a sequence of ingest
//! batches while validators, epoch checkers, and live TCP sessions hammer
//! the same service.
//!
//! The acceptance properties:
//!
//! * **Epoch consistency** — every index snapshot taken mid-storm equals,
//!   byte for byte, one of the sequential prefix states (the index after
//!   0, 1, …, K ingests). A torn epoch — some shards from before an
//!   ingest, some from after — would serialize to bytes matching no
//!   prefix.
//! * **Validation stability** — every validation report produced during
//!   the storm equals the sequential reference (rules are immutable
//!   catalog entries, so the swapping index must never change outcomes).
//! * **Durability** — the bytes persisted after the storm equal a
//!   from-scratch sequential build over all ingested columns.

use auto_validate::prelude::*;
use av_corpus::generate_lake;
use av_durable::{FaultPlan, MemStorage};
use av_index::PatternIndex;
use av_service::{response_ok, serve_tcp, BatchItem, ServiceConfig, ValidationService};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn lake_columns(seed: u64, scale: usize) -> Vec<Column> {
    generate_lake(&LakeProfile::tiny().scaled(scale), seed)
        .columns()
        .cloned()
        .collect()
}

fn dates(month: u32) -> Vec<String> {
    (1..=28)
        .map(|d| format!("2023-{month:02}-{d:02}"))
        .collect()
}

#[test]
fn concurrent_ingest_validate_and_tcp_see_consistent_epochs() {
    let dir = std::env::temp_dir().join(format!("av_serve_while_ingest_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServiceConfig::with_data_dir(&dir);
    let initial = lake_columns(61, 60);
    let batches: Vec<Vec<Column>> = (0..4).map(|i| lake_columns(70 + i, 25)).collect();

    // Sequential prefix images: the only states a snapshot may ever show.
    // Keyed by num_columns (batch sizes make prefixes distinguishable).
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    {
        let mut prefix: Vec<&Column> = initial.iter().collect();
        let first = PatternIndex::build(&prefix, &config.index);
        expected.insert(first.num_columns, first.to_bytes().to_vec());
        for batch in &batches {
            prefix.extend(batch.iter());
            let built = PatternIndex::build(&prefix, &config.index);
            expected.insert(built.num_columns, built.to_bytes().to_vec());
        }
        assert_eq!(
            expected.len(),
            batches.len() + 1,
            "prefixes distinguishable"
        );
    }

    let service = Arc::new(ValidationService::new(config));
    service.ingest(&initial).unwrap();
    service.infer_rule("dates", &dates(1), None).unwrap();
    let reference_ok = service.validate("dates", &dates(2)).unwrap();
    let drifted: Vec<String> = (0..30).map(|i| format!("user-{i}")).collect();
    let reference_bad = service.validate("dates", &drifted).unwrap();

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            serve_tcp(service, ("127.0.0.1", 0), move |a| {
                addr_tx.send(a).unwrap();
            })
        })
    };
    let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let storm_over = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // One ingester applies the batches in order: observable states are
        // exactly the sequential prefixes.
        let ingester = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for batch in &batches {
                    service.ingest(batch).unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };

        // Epoch checkers: every snapshot must be bit-identical to one of
        // the precomputed prefix images — pre- or post-ingest, never torn.
        let checkers: Vec<_> = (0..3)
            .map(|_| {
                let service = Arc::clone(&service);
                let expected = &expected;
                let storm_over = Arc::clone(&storm_over);
                scope.spawn(move || {
                    let mut observed = 0usize;
                    while !storm_over.load(Ordering::Relaxed) {
                        let snap = service.snapshot();
                        let want = expected.get(&snap.num_columns).unwrap_or_else(|| {
                            panic!("unexpected epoch: {} columns", snap.num_columns)
                        });
                        assert_eq!(
                            &snap.to_bytes()[..],
                            &want[..],
                            "snapshot at {} columns is torn",
                            snap.num_columns
                        );
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();

        // Validators: batch reports must match the pre-storm references.
        let validators: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let reference_ok = &reference_ok;
                let reference_bad = &reference_bad;
                let storm_over = Arc::clone(&storm_over);
                scope.spawn(move || {
                    let good = dates(2);
                    let bad: Vec<String> = (0..30).map(|i| format!("user-{i}")).collect();
                    while !storm_over.load(Ordering::Relaxed) {
                        let items: Vec<BatchItem<'_>> = vec![
                            BatchItem {
                                rule: "dates",
                                values: good.iter().map(String::as_str).collect(),
                            },
                            BatchItem {
                                rule: "dates",
                                values: bad.iter().map(String::as_str).collect(),
                            },
                        ];
                        let reports = service.validate_batch(&items);
                        assert_eq!(reports[0].as_ref().unwrap(), reference_ok);
                        assert_eq!(reports[1].as_ref().unwrap(), reference_bad);
                    }
                })
            })
            .collect();

        // TCP sessions keep flowing during the storm.
        let tcp_clients: Vec<_> = (0..2)
            .map(|_| {
                let storm_over = Arc::clone(&storm_over);
                scope.spawn(move || {
                    let mut sessions = 0usize;
                    while !storm_over.load(Ordering::Relaxed) {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        stream
                            .write_all(
                                b"{\"op\":\"validate\",\"rule\":\"dates\",\"values\":[\"2023-02-14\"]}\n",
                            )
                            .unwrap();
                        let mut line = String::new();
                        BufReader::new(stream.try_clone().unwrap())
                            .read_line(&mut line)
                            .unwrap();
                        assert!(response_ok(&line), "{line}");
                        stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
                        let mut line2 = String::new();
                        BufReader::new(stream).read_line(&mut line2).unwrap();
                        assert!(response_ok(&line2), "{line2}");
                        sessions += 1;
                    }
                    sessions
                })
            })
            .collect();

        ingester.join().expect("ingester panicked");
        // Let the readers observe the final epoch for a moment.
        std::thread::sleep(Duration::from_millis(50));
        storm_over.store(true, Ordering::Relaxed);
        let observed: usize = checkers
            .into_iter()
            .map(|c| c.join().expect("epoch checker panicked"))
            .sum();
        assert!(observed > 0, "checkers must have sampled epochs");
        for v in validators {
            v.join().expect("validator panicked");
        }
        let sessions: usize = tcp_clients
            .into_iter()
            .map(|c| c.join().expect("tcp client panicked"))
            .sum();
        assert!(sessions > 0, "tcp clients must have completed sessions");
    });

    // Shut the server down over the wire.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(response_ok(&line));
    server.join().unwrap().unwrap();
    assert_eq!(service.stats().connection_errors, 0);

    // Durability: the bytes persisted after the storm equal a
    // from-scratch sequential build over everything ingested.
    let final_columns = service.snapshot().num_columns;
    let full_bytes = expected
        .get(&final_columns)
        .expect("final state is the full prefix");
    service.persist().unwrap();
    let persisted = std::fs::read(dir.join(av_service::INDEX_FILE)).unwrap();
    assert_eq!(&persisted[..], &full_bytes[..]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable config over fault-injecting in-memory storage: a low
/// checkpoint threshold so the storm spans several checkpoints.
fn durable_config(mem: &MemStorage) -> ServiceConfig {
    let mut config = ServiceConfig::durable(PathBuf::from("/data"));
    config.storage = Arc::new(mem.clone());
    config.durability.checkpoint_every_records = 2;
    config.durability.wal_segment_bytes = 4096;
    config
}

/// Kill-mid-ingest: the durable service is crashed (via fault injection)
/// halfway through its storage-op trace while validators hammer it from
/// other threads. Reopening the durable view must recover an index that
/// byte-equals the sequential build over the acknowledged ingest prefix
/// (the crashing batch may legitimately round up to "durable but
/// unacknowledged"), replaying only the records since the last
/// checkpoint.
#[test]
fn killed_mid_ingest_recovers_acknowledged_prefix() {
    let initial = lake_columns(61, 60);
    let batches: Vec<Vec<Column>> = (0..6).map(|i| lake_columns(70 + i, 8)).collect();

    // Sequential prefix images under the durable config's index settings.
    let config_probe = durable_config(&MemStorage::new());
    let mut prefixes: Vec<Vec<u8>> = Vec::new();
    {
        let mut prefix: Vec<&Column> = initial.iter().collect();
        prefixes.push(
            PatternIndex::build(&prefix, &config_probe.index)
                .to_bytes()
                .to_vec(),
        );
        for batch in &batches {
            prefix.extend(batch.iter());
            prefixes.push(
                PatternIndex::build(&prefix, &config_probe.index)
                    .to_bytes()
                    .to_vec(),
            );
        }
    }

    // Fault-free run measures the storage-op trace length.
    let probe = MemStorage::new();
    {
        let service = ValidationService::open(durable_config(&probe)).unwrap();
        service.ingest(&initial).unwrap();
        for batch in &batches {
            service.ingest(batch).unwrap();
        }
    }
    let total_ops = probe.ops_executed();
    assert!(total_ops > 10, "trace too short: {total_ops}");

    // Crash halfway through the trace — inside the batch sequence.
    let mem = MemStorage::with_plan(FaultPlan::crash_at(total_ops / 2));
    let service = Arc::new(ValidationService::open(durable_config(&mem)).unwrap());
    service.ingest(&initial).unwrap();
    // The validation rule is a session-scoped baseline: baselines are
    // deliberately not write-ahead logged, so validators exercise reads
    // during the crash without perturbing the durable op trace.
    service
        .infer_baseline("storm/dates", "grok", &dates(1))
        .unwrap();
    let reference = service.validate("storm/dates", &dates(2)).unwrap();

    let storm_over = Arc::new(AtomicBool::new(false));
    let acked = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let storm_over = Arc::clone(&storm_over);
                let reference = &reference;
                scope.spawn(move || {
                    while !storm_over.load(Ordering::Relaxed) {
                        // Reads never touch storage: they must keep
                        // succeeding right through the crash.
                        let report = service.validate("storm/dates", &dates(2)).unwrap();
                        assert_eq!(&report, reference);
                    }
                })
            })
            .collect();

        let mut acked = 0usize;
        for batch in &batches {
            match service.ingest(batch) {
                Ok(_) => acked += 1,
                Err(_) => break, // crashed mid-ingest: not acknowledged
            }
        }
        storm_over.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        acked
    });
    assert!(mem.crashed(), "the injected crash must have fired");
    assert!(acked < batches.len(), "crash must interrupt the batch run");

    // Recover from the durable view: the index must byte-equal the
    // sequential build over initial + some prefix covering every
    // acknowledged batch.
    let recovered = ValidationService::open(durable_config(&mem.crashed_view())).unwrap();
    let bytes = recovered.snapshot().to_bytes().to_vec();
    let k = prefixes
        .iter()
        .rposition(|p| *p == bytes)
        .expect("recovered index matches no sequential prefix build");
    assert!(
        k >= acked,
        "{acked} batches acknowledged but recovery holds only {k}"
    );

    // Recovery is O(records since checkpoint): with a threshold of 2,
    // at most 2 committed records wait in the WAL, plus the torn batch
    // that may round up to durable.
    let d = recovered.durability().expect("durable mode is on");
    assert!(
        d.replayed_records <= 3,
        "recovery must replay only the post-checkpoint tail: {d:?}"
    );
    assert_eq!(d.quarantined_files, 0, "{d:?}");
}
