//! End-to-end acceptance tests for the validation service: the persist →
//! restart → reload → validate lifecycle, incremental delta-merge
//! equivalence with full rebuilds, and a complete `av-serve` protocol
//! session driven through the real serve loop.

use auto_validate::prelude::*;
use av_corpus::generate_lake;
use av_service::{serve_lines, ServiceConfig, ValidationService};
use std::collections::HashMap;
use std::io::Cursor;

fn lake_columns(seed: u64, scale: usize) -> Vec<Column> {
    generate_lake(&LakeProfile::tiny().scaled(scale), seed)
        .columns()
        .cloned()
        .collect()
}

fn month(m: u32) -> Vec<String> {
    (1..=28).map(|d| format!("2021-{m:02}-{d:02}")).collect()
}

fn assert_index_bitwise_equal(a: &PatternIndex, b: &PatternIndex) {
    assert_eq!(a.num_columns, b.num_columns);
    assert_eq!(a.tau, b.tau);
    assert_eq!(a.len(), b.len());
    let bm: HashMap<u64, av_index::PatternStats> = b.entries().collect();
    for (k, s) in a.entries() {
        let t = bm.get(&k).expect("pattern present in both indexes");
        assert_eq!(s.fpr.to_bits(), t.fpr.to_bits(), "fpr differs for {k}");
        assert_eq!(s.cov, t.cov, "coverage differs for {k}");
        assert_eq!(s.token_len, t.token_len);
    }
}

/// The headline acceptance path: ingest → infer + persist a named rule →
/// restart → reload catalog → validate a drifted batch and flag it.
#[test]
fn service_lifecycle_survives_restart() {
    let dir = std::env::temp_dir().join(format!("av_lifecycle_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServiceConfig::with_data_dir(&dir);

    {
        let service = ValidationService::new(config.clone());
        service.ingest(&lake_columns(42, 100)).unwrap();
        service.infer_rule("feeds/date", &month(1), None).unwrap();
        service.persist().unwrap();
    } // service drops: restart boundary

    let service = ValidationService::open(config).unwrap();
    assert_eq!(service.catalog_entries().len(), 1, "catalog reloaded");
    assert!(service.snapshot().num_columns > 0, "index reloaded");

    let healthy = service.validate("feeds/date", &month(2)).unwrap();
    assert!(!healthy.flagged, "same-domain feed must pass");
    let drifted: Vec<String> = (0..40).map(|i| format!("uuid-{i}-x")).collect();
    let flagged = service.validate("feeds/date", &drifted).unwrap();
    assert!(flagged.flagged, "drifted feed must be flagged");
    std::fs::remove_dir_all(&dir).ok();
}

/// Persist → reload → merge: a reloaded index keeps merging deltas with
/// statistics bit-for-bit identical to a from-scratch build on the union.
#[test]
fn persist_reload_merge_roundtrip_is_exact() {
    let dir = std::env::temp_dir().join(format!("av_reload_merge_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.avix");

    let day0 = lake_columns(3, 90);
    let day1 = lake_columns(4, 70);
    let refs0: Vec<&Column> = day0.iter().collect();
    let refs1: Vec<&Column> = day1.iter().collect();
    let union: Vec<&Column> = refs0.iter().chain(refs1.iter()).copied().collect();
    let config = IndexConfig::default();

    // Build day0, persist, reload, then merge day1 into the *reloaded* copy.
    let original = PatternIndex::build(&refs0, &config);
    original.save(&path).unwrap();
    let mut reloaded = PatternIndex::load(&path).unwrap();
    assert_index_bitwise_equal(&original, &reloaded);
    reloaded
        .merge_delta(av_index::IndexDelta::profile(&refs1, &config))
        .unwrap();

    let rebuilt = PatternIndex::build(&union, &config);
    assert_index_bitwise_equal(&rebuilt, &reloaded);
    std::fs::remove_file(&path).ok();
}

/// Deltas can arrive in many small batches, in any order, on any thread
/// count — the result never deviates from the bulk build.
#[test]
fn many_small_deltas_equal_one_bulk_build() {
    let all = lake_columns(11, 120);
    let config = IndexConfig::default();
    let refs: Vec<&Column> = all.iter().collect();
    let bulk = PatternIndex::build(&refs, &config);

    let mut incremental = PatternIndex::build(&[], &config);
    for chunk in all.chunks(7) {
        let chunk_refs: Vec<&Column> = chunk.iter().collect();
        incremental
            .merge_delta(av_index::IndexDelta::profile(&chunk_refs, &config))
            .unwrap();
    }
    assert_index_bitwise_equal(&bulk, &incremental);
}

/// Drive the real serve loop through a full JSONL session including a
/// simulated restart, exercising the whole binary code path short of
/// process spawning.
#[test]
fn av_serve_protocol_session_end_to_end() {
    let dir = std::env::temp_dir().join(format!("av_protocol_session_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServiceConfig::with_data_dir(&dir);

    // Quote through the service's own JSON writer — `{:?}` is not JSON
    // (it escapes non-ASCII as `\u{..}`).
    let q = |s: &str| av_service::json::Json::str(s).dump();
    let ingest_cols: Vec<String> = lake_columns(9, 80)
        .iter()
        .map(|c| {
            let values: Vec<String> = c.values.iter().map(|v| q(v)).collect();
            format!(
                r#"{{"name":{},"values":[{}]}}"#,
                q(&c.name),
                values.join(",")
            )
        })
        .collect();
    let train: Vec<String> = month(3).iter().map(|v| q(v)).collect();

    // Session 1: ingest the corpus, infer + persist a named rule.
    let session1 = format!(
        "{}\n{}\n{}\n",
        format_args!(r#"{{"op":"ingest","columns":[{}]}}"#, ingest_cols.join(",")),
        format_args!(
            r#"{{"op":"infer","rule":"feeds/date","values":[{}],"variant":"vh"}}"#,
            train.join(",")
        ),
        r#"{"op":"persist"}"#,
    );
    let service1 = ValidationService::open(config.clone()).unwrap();
    let mut out1 = Vec::new();
    serve_lines(&service1, Cursor::new(session1), &mut out1).unwrap();
    let text1 = String::from_utf8(out1).unwrap();
    for line in text1.lines() {
        assert!(av_service::response_ok(line), "session 1 failed: {line}");
    }
    drop(service1); // restart boundary

    // Session 2: a fresh process reloads state and validates feeds.
    let good: Vec<String> = month(4).iter().map(|v| format!("{v:?}")).collect();
    let bad: Vec<String> = (0..30).map(|i| format!("\"user-{i}\"")).collect();
    let session2 = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        r#"{"op":"catalog"}"#,
        format_args!(
            r#"{{"op":"validate","rule":"feeds/date","values":[{}]}}"#,
            good.join(",")
        ),
        format_args!(
            r#"{{"op":"validate","rule":"feeds/date","values":[{}]}}"#,
            bad.join(",")
        ),
        r#"{"op":"classify","values":["2019-04-07","user-3"]}"#,
        r#"{"op":"shutdown"}"#,
    );
    let service2 = ValidationService::open(config).unwrap();
    let mut out2 = Vec::new();
    serve_lines(&service2, Cursor::new(session2), &mut out2).unwrap();
    let lines: Vec<String> = String::from_utf8(out2)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 5);
    assert!(
        lines.iter().all(|l| av_service::response_ok(l)),
        "{lines:?}"
    );
    assert!(
        lines[0].contains("\"feeds/date\""),
        "catalog must list the reloaded rule: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"flagged\":false"),
        "healthy feed passes: {}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"flagged\":true"),
        "drifted feed is flagged: {}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"best\":\"feeds/date\""),
        "the reloaded catalog classifies a date in one scan: {}",
        lines[3]
    );
    assert!(service2.is_shutdown());
    std::fs::remove_dir_all(&dir).ok();
}
