//! Shutdown latency regressions: `request_shutdown` must *wake* the
//! serve loops (self-pipe into the poller, condvar under the watch
//! pacer), not wait for the next poll tick or sleep slice to expire.

use av_service::{serve_listener, std_listener, ServiceConfig, ValidationService};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The event loop with idle connections attached shuts down in well
/// under 50 ms: nothing is generating events, so the only thing that can
/// end the `poller.wait` promptly is the shutdown waker itself.
#[test]
fn tcp_shutdown_with_idle_connections_is_immediate() {
    let service = Arc::new(ValidationService::new(ServiceConfig::default()));
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_listener(service, std_listener(listener).unwrap()))
    };
    // Idle connections that never send a byte: slow-loris shaped load
    // that produces no readiness events at all.
    let idle: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // Give the reactor a moment to accept them so shutdown really does
    // have live connection state to tear down.
    std::thread::sleep(Duration::from_millis(100));

    let t0 = Instant::now();
    service.request_shutdown();
    server.join().unwrap().unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(50),
        "shutdown with idle connections took {elapsed:?} (want < 50ms)"
    );
    // The idle connections were closed cleanly (EOF), not abandoned.
    for mut s in idle {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "idle connection should see clean EOF");
    }
}

/// `wait_shutdown_timeout` (the watch-frame pacer on the pipe transport)
/// returns as soon as shutdown is requested, not after its full timeout.
#[test]
fn wait_shutdown_timeout_wakes_on_request_not_on_deadline() {
    let service = Arc::new(ValidationService::new(ServiceConfig::default()));
    let waiter = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let shut = service.wait_shutdown_timeout(Duration::from_secs(30));
            (shut, t0.elapsed())
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    service.request_shutdown();
    let (shut, waited) = waiter.join().unwrap();
    assert!(shut, "waiter must observe the shutdown");
    assert!(
        waited < Duration::from_secs(5),
        "waiter slept {waited:?} of a 30s timeout despite shutdown"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "wake took {:?} after request_shutdown",
        t0.elapsed()
    );
    // And with shutdown already requested, the wait is a no-op.
    let t1 = Instant::now();
    assert!(service.wait_shutdown_timeout(Duration::from_secs(30)));
    assert!(t1.elapsed() < Duration::from_secs(5));
}
