//! Vendored, dependency-free subset of the [`rand`](https://docs.rs/rand)
//! 0.9 API: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{random,
//! random_range, random_bool}`, and `seq::SliceRandom::shuffle`. The
//! container build has no registry access; this shim keeps the same call
//! sites so the real crate can be swapped back in later.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — not the same
//! stream as upstream's ChaCha12, but the workspace only relies on
//! determinism-per-seed, never on a specific stream.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution for `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable via [`Rng::random`].
pub trait StandardUniform {
    /// Sample one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (shuffle / choose).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
