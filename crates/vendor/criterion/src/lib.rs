//! Vendored, dependency-free subset of the
//! [`criterion`](https://docs.rs/criterion) benchmarking API. The container
//! build has no registry access, so this shim implements just enough —
//! `Criterion`, `benchmark_group`, `Bencher::iter`, `Throughput`, and the
//! two macros — to compile and run the workspace's benches with simple
//! wall-clock timing (median of samples) instead of criterion's full
//! statistical machinery.
//!
//! Like upstream, `--test` on the bench binary's command line (i.e.
//! `cargo bench -- --test`) runs every benchmark exactly once without
//! timing — the CI smoke mode that keeps benches compiling and running on
//! every PR without paying for calibration and sampling.

use std::time::Instant;

/// Was the binary invoked in `--test` smoke mode?
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Per-sample timing handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f`, running it `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed_ns: 0,
        };
        f(&mut b);
        println!("{label:<40} ok (test mode, 1 iteration)");
        return;
    }
    // Calibrate iteration count so one sample takes ≳1 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 1_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            b.elapsed_ns as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let mut line = format!(
        "{label:<40} [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(tp) = throughput {
        let (n, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if median > 0.0 {
            line.push_str(&format!(
                "  {:.0} {unit}",
                n as f64 / (median / 1_000_000_000.0)
            ));
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Criterion {
        run_samples(&name.to_string(), self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_samples(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
