//! Vendored, dependency-free subset of the [`bytes`](https://docs.rs/bytes)
//! crate: just the pieces this workspace uses (little-endian put/get,
//! `BytesMut` → `Bytes` freeze). The container build has no registry
//! access, so the real crate cannot be fetched; this shim keeps the same
//! API surface so swapping the real crate back in is a one-line change.

use std::ops::Deref;

/// An immutable byte buffer (here: a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer used while encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait: append fixed-width little-endian values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append an `f64` in little-endian order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
}

/// Read-side trait: consume fixed-width little-endian values from the front.
///
/// Reads past the end panic, matching the real crate; callers are expected
/// to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"AVIX");
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(0.25);
        b.put_u8(9);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8 + 1);
        assert_eq!(&r[..4], b"AVIX");
        r.advance(4);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.remaining(), 0);
    }
}
