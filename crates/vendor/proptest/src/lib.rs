//! Vendored, dependency-free subset of the
//! [`proptest`](https://docs.rs/proptest) API. The container build has no
//! registry access, so this shim reimplements the pieces the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`/`boxed`,
//! range / `Just` / union / collection / `string_regex` strategies, the
//! `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!` macros,
//! and [`ProptestConfig`].
//!
//! Differences from upstream, by design: no shrinking (failing inputs are
//! reported verbatim), a fixed deterministic seed per test derived from the
//! test's module path (override case count with `PROPTEST_CASES`), and a
//! default of 64 cases instead of 256 to keep CI latency sane.

pub use rand;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property does not hold for this input.
    Fail(String),
    /// `prop_assume!` rejection — the input is outside the property's
    /// precondition and must not count as a pass or a failure.
    Reject(String),
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a string, used to derive a per-test deterministic seed.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream there is no shrink tree; a strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values passing `f` (bounded retries, then panic).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy so heterogeneous strategies can be unioned.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample_value(&self, rng: &mut StdRng) -> V {
        (**self).sample_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: 1000 rejections in a row", self.whence);
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `options` with equal weight.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut StdRng) -> V {
        self.options
            .choose(rng)
            .expect("non-empty union")
            .sample_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A string literal is shorthand for [`string::string_regex`].
impl Strategy for &'static str {
    type Value = String;
    fn sample_value(&self, rng: &mut StdRng) -> String {
        string::string_regex(self)
            .expect("invalid regex strategy literal")
            .sample_value(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample_value(rng), self.1.sample_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample_value(rng),
            self.1.sample_value(rng),
            self.2.sample_value(rng),
        )
    }
}

/// Types with a canonical "arbitrary" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        // Half printable ASCII (the interesting regime for this codebase),
        // half arbitrary scalar values including astral planes.
        if rng.random_bool(0.5) {
            rng.random_range(0x20u32..0x7F) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.random_range(0u32..0x11_0000)) {
                    return c;
                }
            }
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `A` — `any::<char>()` etc.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn sample_value(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// Size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Hash sets of `size` distinct elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < 100 + 20 * n {
                out.insert(self.element.sample_value(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "hash_set: element strategy too narrow for requested size"
            );
            out
        }
    }
}

/// String strategies.
pub mod string {
    use super::*;

    /// Error from [`string_regex`].
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom: a set of candidate chars plus a repetition range.
    #[derive(Debug, Clone)]
    struct Piece {
        chars: Vec<char>,
        lo: usize,
        hi: usize,
    }

    /// Generates strings matching a restricted regex: literal characters
    /// and `[...]` classes (with ranges), each optionally quantified by
    /// `{n}`, `{m,n}`, `?`, `*`, or `+` (unbounded repeats capped at 8).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn sample_value(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for p in &self.pieces {
                let n = rng.random_range(p.lo..=p.hi);
                for _ in 0..n {
                    out.push(*p.chars.choose(rng).expect("non-empty class"));
                }
            }
            out
        }
    }

    /// Build a generator for `pattern` (restricted syntax; see
    /// [`RegexGeneratorStrategy`]).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let err = |m: &str| Error(format!("{m} in {pattern:?}"));
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let class: Vec<char> = match c {
                '[' => {
                    let mut body = Vec::new();
                    loop {
                        match chars.next() {
                            None => return Err(err("unterminated class")),
                            Some(']') => break,
                            Some(x) => body.push(x),
                        }
                    }
                    let mut set = Vec::new();
                    let mut i = 0;
                    while i < body.len() {
                        if i + 2 < body.len() && body[i + 1] == '-' {
                            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                            if lo > hi {
                                return Err(err("reversed class range"));
                            }
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(body[i]);
                            i += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err(err("empty class"));
                    }
                    set
                }
                '\\' => vec![chars.next().ok_or_else(|| err("dangling escape"))?],
                '.' | '|' | '(' | ')' | '^' | '$' => {
                    return Err(err("unsupported regex construct"))
                }
                other => vec![other],
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    loop {
                        match chars.next() {
                            None => return Err(err("unterminated repetition")),
                            Some('}') => break,
                            Some(x) => spec.push(x),
                        }
                    }
                    let parse = |s: &str| s.trim().parse::<usize>().map_err(|_| err("bad repeat"));
                    match spec.split_once(',') {
                        Some((a, b)) => (parse(a)?, parse(b)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            if lo > hi {
                return Err(err("reversed repetition"));
            }
            pieces.push(Piece {
                chars: class,
                lo,
                hi,
            });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a boolean property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), left_val, right_val
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), left_val, right_val
                    )));
                }
            }
        }
    };
}

/// Assert two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left), stringify!($right), left_val
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)+), left_val
                    )));
                }
            }
        }
    };
}

/// Reject this case (doesn't count as pass or fail) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > 16 * config.cases + 1024 {
                            panic!(
                                "prop_assume rejected too many cases ({rejected}); last: {why}"
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property {} failed after {} passing case(s)\n{}\n  inputs: {}",
                            stringify!($name), passed, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_regex_respects_class_and_bounds() {
        let s = crate::string::string_regex("[A-Za-z0-9 :/._-]{0,24}").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = s.sample_value(&mut rng);
            assert!(v.len() <= 24);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " :/._-".contains(c)));
        }
    }

    #[test]
    fn literal_and_space_range_classes() {
        let s = crate::string::string_regex("ab[ -~]{1,3}c").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            assert!(v.starts_with("ab") && v.ends_with('c'));
            assert!((4..=6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_in_range(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..5).prop_map(|v| v * 10),
            Just(99u32),
        ]) {
            prop_assert!(x == 99 || x % 10 == 0, "x = {x}");
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
