//! Vendored minimal readiness poller, API-compatible with the subset of
//! the `polling` crate the workspace uses (offline build — no external
//! dependencies, raw `extern "C"` bindings to the libc symbols that std
//! already links).
//!
//! A [`Poller`] watches a set of file descriptors for read/write
//! readiness. On Linux it is backed by **epoll** (level-triggered); on
//! other unixes by **poll(2)**. Either way it carries a **self-pipe**
//! waker: [`Poller::notify`] writes one byte to an internal pipe whose
//! read end is part of the watched set, so any thread can interrupt a
//! blocking [`Poller::wait`] immediately — the mechanism the service uses
//! for sub-millisecond shutdown instead of timeout polling.
//!
//! Divergence from the real crate, by design:
//!
//! * interest is **level-triggered**, not oneshot — a registration stays
//!   armed until [`Poller::modify`] or [`Poller::delete`] changes it;
//! * [`Poller::wait`] may return `Ok(0)` spuriously (after a notify, a
//!   signal, or an expired timeout) — callers must re-check their own
//!   state and loop.
//!
//! `wait` is meant to be called from one thread at a time (the reactor);
//! `add`/`modify`/`delete`/`notify` are safe from any thread.

#![forbid(unsafe_op_in_unsafe_fn)]

use std::io;
use std::time::Duration;

/// Readiness interest when registering, and the readiness actually
/// delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back when the fd is ready.
    /// `usize::MAX` is reserved for the poller's internal waker.
    pub key: usize,
    /// Interested in (or ready for) reading. Errors and hangups are
    /// reported as readable so a blocked reader always observes them.
    pub readable: bool,
    /// Interested in (or ready for) writing.
    pub writable: bool,
}

impl Event {
    /// No interest (a placeholder registration kept for its key).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    /// Read interest only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read and write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

/// Key reserved for the internal self-pipe waker.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness poller over raw file descriptors. See the module docs.
pub struct Poller {
    sys: sys::Selector,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

impl Poller {
    /// A new poller with its waker pipe armed.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            sys: sys::Selector::new()?,
        })
    }

    /// Start watching `fd` with the given interest. The fd must stay open
    /// until [`Poller::delete`]; `interest.key` must not be `usize::MAX`.
    pub fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved for the poller",
            ));
        }
        self.sys.add(fd, interest)
    }

    /// Replace the interest of an already-registered fd.
    pub fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved for the poller",
            ));
        }
        self.sys.modify(fd, interest)
    }

    /// Stop watching an fd (call before closing it).
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.sys.delete(fd)
    }

    /// Block until at least one watched fd is ready, the timeout expires,
    /// or [`Poller::notify`] is called. Ready events are appended to
    /// `events` (cleared first); returns how many were delivered. May
    /// return `Ok(0)` spuriously — callers loop.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.sys.wait(events, timeout)?;
        Ok(events.len())
    }

    /// Wake a blocking (or the next) [`Poller::wait`] immediately. Safe
    /// from any thread; coalesces — many notifies may yield one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        self.sys.notify()
    }
}

/// Shared FFI declarations for the pipe-based waker (all unixes).
mod pipe_ffi {
    use std::io;
    use std::os::raw::{c_int, c_void};

    extern "C" {
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// Drain every pending byte from the waker pipe's read end.
    pub(crate) fn drain(fd: c_int) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                // 0 = impossible for an open pipe with a writer; <0 =
                // EAGAIN (drained) or EINTR (retry next wait) — either
                // way the pipe is as empty as this wakeup needs.
                return;
            }
        }
    }

    /// Write one byte to the waker pipe's write end. A full pipe means a
    /// wakeup is already pending, so EAGAIN is success.
    pub(crate) fn ring(fd: c_int) -> io::Result<()> {
        let byte = [1u8];
        let n = unsafe { write(fd, byte.as_ptr().cast::<c_void>(), 1) };
        if n >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        match err.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(()),
            _ => Err(err),
        }
    }

    pub(crate) fn close_fd(fd: c_int) {
        unsafe {
            close(fd);
        }
    }
}

/// Round a timeout up to whole milliseconds for the C APIs (`None` → -1,
/// infinite). Rounding *up* keeps sub-millisecond timeouts from spinning.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend (level-triggered).

    use super::{pipe_ffi, timeout_ms, Event, NOTIFY_KEY};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    // x86_64 declares epoll_event packed; every other Linux ABI uses
    // natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;
    const O_NONBLOCK: c_int = 0x800;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub(super) struct Selector {
        epfd: c_int,
        notify_read: c_int,
        notify_write: c_int,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let mut fds: [c_int; 2] = [0; 2];
            if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), EPOLL_CLOEXEC | O_NONBLOCK) }) {
                pipe_ffi::close_fd(epfd);
                return Err(e);
            }
            let sel = Selector {
                epfd,
                notify_read: fds[0],
                notify_write: fds[1],
            };
            sel.ctl(EPOLL_CTL_ADD, sel.notify_read, EPOLLIN, NOTIFY_KEY as u64)?;
            Ok(sel)
        }

        fn ctl(&self, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                interest_bits(interest),
                interest.key as u64,
            )
        }

        pub(super) fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                interest_bits(interest),
                interest.key as u64,
            )
        }

        pub(super) fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    raw.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                return match err.kind() {
                    // A signal is a spurious wakeup, not a failure.
                    io::ErrorKind::Interrupted => Ok(()),
                    _ => Err(err),
                };
            }
            for ev in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let key = ev.data as usize;
                if key == NOTIFY_KEY {
                    pipe_ffi::drain(self.notify_read);
                    continue;
                }
                out.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            pipe_ffi::ring(self.notify_write)
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            pipe_ffi::close_fd(self.notify_read);
            pipe_ffi::close_fd(self.notify_write);
            pipe_ffi::close_fd(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable poll(2) backend for non-Linux unixes. Registrations live
    //! in a mutex-guarded map; every `wait` rebuilds the pollfd array —
    //! O(watched fds) per wait, fine for the fd counts this fallback
    //! serves (Linux gets epoll).

    use super::{pipe_ffi, timeout_ms, Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0x4;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub(super) struct Selector {
        registry: Mutex<HashMap<i32, Event>>,
        notify_read: c_int,
        notify_write: c_int,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let e = io::Error::last_os_error();
                    pipe_ffi::close_fd(fds[0]);
                    pipe_ffi::close_fd(fds[1]);
                    return Err(e);
                }
            }
            Ok(Selector {
                registry: Mutex::new(HashMap::new()),
                notify_read: fds[0],
                notify_write: fds[1],
            })
        }

        pub(super) fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            if reg.insert(fd, interest).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub(super) fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            match reg.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn delete(&self, fd: i32) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            match reg.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let (mut fds, keys) = {
                let reg = self.registry.lock().unwrap();
                let mut fds = Vec::with_capacity(reg.len() + 1);
                let mut keys = Vec::with_capacity(reg.len() + 1);
                fds.push(PollFd {
                    fd: self.notify_read,
                    events: POLLIN,
                    revents: 0,
                });
                keys.push(NOTIFY_KEY);
                for (&fd, interest) in reg.iter() {
                    let mut events: c_short = 0;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    keys.push(interest.key);
                }
                (fds, keys)
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                return match err.kind() {
                    io::ErrorKind::Interrupted => Ok(()),
                    _ => Err(err),
                };
            }
            for (slot, &key) in fds.iter().zip(&keys) {
                if slot.revents == 0 {
                    continue;
                }
                if key == NOTIFY_KEY {
                    pipe_ffi::drain(self.notify_read);
                    continue;
                }
                out.push(Event {
                    key,
                    readable: slot.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: slot.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            pipe_ffi::ring(self.notify_write)
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            pipe_ffi::close_fd(self.notify_read);
            pipe_ffi::close_fd(self.notify_write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn read_readiness_fires_only_when_data_arrives() {
        let (client, mut server) = socket_pair();
        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), Event::readable(7)).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        server.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps the fd ready.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 1);

        poller.delete(client.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "deleted fd must not report");
    }

    #[test]
    fn write_readiness_and_modify() {
        let (client, _server) = socket_pair();
        let poller = Poller::new().unwrap();
        // Registered with no interest: silent even though writable.
        poller.add(client.as_raw_fd(), Event::none(3)).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        poller
            .modify(client.as_raw_fd(), Event::writable(3))
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable && !events[0].readable);
    }

    #[test]
    fn notify_wakes_a_blocking_wait_immediately() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        // Without the notify this would block five seconds.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "notify took {:?}",
            start.elapsed()
        );
        assert!(events.is_empty(), "the waker never surfaces as an event");
        handle.join().unwrap();

        // Coalesced notifies from before a wait wake it exactly once,
        // then the next wait blocks again.
        poller.notify().unwrap();
        poller.notify().unwrap();
        let start = Instant::now();
        poller.wait(&mut events, None).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let (client, server) = socket_pair();
        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), Event::readable(1)).unwrap();
        drop(server);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "EOF must surface as readable");
        // And the read then observes the close.
        let mut buf = [0u8; 8];
        let mut client = client;
        assert_eq!(client.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn reserved_key_is_rejected() {
        let (client, _server) = socket_pair();
        let poller = Poller::new().unwrap();
        assert!(poller
            .add(client.as_raw_fd(), Event::readable(usize::MAX))
            .is_err());
    }
}
