//! Property-based tests for the regex engine.

use av_regex::Regex;
use proptest::prelude::*;

/// Literal-only inputs: escape and verify exact matching.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| {
            if "\\^$.|?*+()[]{}".contains(c) {
                vec!['\\', c]
            } else {
                vec![c]
            }
        })
        .collect()
}

proptest! {
    /// An escaped literal matches exactly itself.
    #[test]
    fn escaped_literal_matches_itself(s in "[ -~]{0,12}") {
        let re = Regex::new(&escape(&s)).expect("escaped literal compiles");
        prop_assert!(re.is_full_match(&s));
        // And not itself plus a suffix.
        let longer = format!("{s}x");
        prop_assert!(!re.is_full_match(&longer));
    }

    /// Substring search accepts exactly the strings that contain a match.
    #[test]
    fn search_vs_containment(needle in "[a-z]{1,4}", hay in "[a-z]{0,12}") {
        let re = Regex::new(&escape(&needle)).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    /// Bounded repeats accept exactly the in-range counts.
    #[test]
    fn bounded_repeat_counts(m in 0u32..4, extra in 0u32..4, n in 0usize..10) {
        let lo = m;
        let hi = m + extra;
        let re = Regex::new(&format!("a{{{lo},{hi}}}")).unwrap();
        let s = "a".repeat(n);
        prop_assert_eq!(
            re.is_full_match(&s),
            (n as u32) >= lo && (n as u32) <= hi,
            "a{{{},{}}} vs {} a's", lo, hi, n
        );
    }

    /// Alternation = union of branches.
    #[test]
    fn alternation_is_union(a in "[a-z]{1,3}", b in "[a-z]{1,3}", probe in "[a-z]{0,4}") {
        let re = Regex::new(&format!("({}|{})", escape(&a), escape(&b))).unwrap();
        prop_assert_eq!(re.is_full_match(&probe), probe == a || probe == b);
    }

    /// The classic ReDoS pattern family runs in linear time (smoke: just
    /// finishes fast for sizable inputs and gives the right answer).
    #[test]
    fn no_catastrophic_backtracking(n in 1usize..200) {
        let re = Regex::new("(a|aa)+b").unwrap();
        let bad = "a".repeat(n); // no trailing b
        prop_assert!(!re.is_full_match(&bad));
        let good = format!("{}b", "a".repeat(n));
        prop_assert!(re.is_full_match(&good));
    }

    /// Perl classes partition: every char is \d or \D, \w or \W, \s or \S.
    #[test]
    fn perl_class_complements(c in any::<char>()) {
        let s = c.to_string();
        let d = Regex::new(r"\d").unwrap().is_full_match(&s);
        let nd = Regex::new(r"\D").unwrap().is_full_match(&s);
        prop_assert!(d ^ nd, "char {c:?}");
        let w = Regex::new(r"\w").unwrap().is_full_match(&s);
        let nw = Regex::new(r"\W").unwrap().is_full_match(&s);
        prop_assert!(w ^ nw, "char {c:?}");
    }
}
