//! Thompson NFA construction and Pike-VM execution.
//!
//! Matching is linear in `|input| × |states|` with no backtracking, so even
//! adversarial patterns from the Grok library cannot blow up.

use crate::ast::{Ast, CharSet};
use crate::thread_set::ThreadSet;

/// NFA instruction.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Consume one char in the set, go to next instruction.
    Char(CharSet),
    /// Jump to either target (epsilon split).
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Accept.
    Match,
}

/// Compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
}

/// Reusable Pike-VM working memory: two [`ThreadSet`]s (thread list +
/// membership bitmap each). One scratch serves any number of programs and
/// inputs (sets re-dimension to the program's instruction count), so
/// steady-state matching — e.g. the grok baseline probing a value against
/// its whole pattern library — allocates nothing per call.
#[derive(Debug, Default)]
pub struct NfaScratch {
    current: ThreadSet,
    next: ThreadSet,
}

impl NfaScratch {
    /// Fresh, empty scratch.
    pub fn new() -> NfaScratch {
        NfaScratch::default()
    }

    /// Clear and re-dimension for a program with `n` instructions.
    fn prepare(&mut self, n: usize) {
        self.current.clear_resize(n);
        self.next.clear_resize(n);
    }
}

thread_local! {
    static NFA_SCRATCH: std::cell::RefCell<NfaScratch> =
        std::cell::RefCell::new(NfaScratch::new());
}

impl Program {
    /// Compile an AST into an NFA program ending in `Match`.
    pub(crate) fn compile(ast: &Ast) -> Program {
        let mut insts = Vec::new();
        compile_node(ast, &mut insts);
        insts.push(Inst::Match);
        Program { insts }
    }

    /// Number of instructions (used to bound repeat expansion in tests).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program is just `Match`.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.insts.len() <= 1
    }

    /// Run the Pike VM; returns true when the whole input is accepted.
    /// Falls back to a thread-local [`NfaScratch`].
    pub fn is_full_match(&self, input: &str) -> bool {
        NFA_SCRATCH.with(|s| self.is_full_match_with(input, &mut s.borrow_mut()))
    }

    /// [`Program::is_full_match`] with caller-provided working memory.
    pub fn is_full_match_with(&self, input: &str, scratch: &mut NfaScratch) -> bool {
        scratch.prepare(self.insts.len());
        add_thread(&self.insts, 0, &mut scratch.current);
        for c in input.chars() {
            if scratch.current.is_empty() {
                return false;
            }
            self.step(c, scratch);
        }
        scratch
            .current
            .as_slice()
            .iter()
            .any(|&pc| matches!(self.insts[pc as usize], Inst::Match))
    }

    /// Does the pattern match anywhere inside the input (substring search)?
    /// Falls back to a thread-local [`NfaScratch`].
    pub fn is_match(&self, input: &str) -> bool {
        NFA_SCRATCH.with(|s| self.is_match_with(input, &mut s.borrow_mut()))
    }

    /// [`Program::is_match`] with caller-provided working memory.
    pub fn is_match_with(&self, input: &str, scratch: &mut NfaScratch) -> bool {
        // Unanchored search: start a fresh thread set at every char
        // boundary (including end-of-input for nullable patterns). The
        // input is walked by `char_indices` — never collected.
        for (start, _) in input.char_indices().chain([(input.len(), '\0')]) {
            scratch.prepare(self.insts.len());
            add_thread(&self.insts, 0, &mut scratch.current);
            if scratch
                .current
                .as_slice()
                .iter()
                .any(|&pc| matches!(self.insts[pc as usize], Inst::Match))
            {
                return true;
            }
            for c in input[start..].chars() {
                self.step(c, scratch);
                if scratch
                    .current
                    .as_slice()
                    .iter()
                    .any(|&pc| matches!(self.insts[pc as usize], Inst::Match))
                {
                    return true;
                }
                if scratch.current.is_empty() {
                    break;
                }
            }
        }
        false
    }

    /// Advance every live thread over `c` (one Pike-VM step).
    #[inline]
    fn step(&self, c: char, scratch: &mut NfaScratch) {
        scratch.next.reset();
        let NfaScratch { current, next } = scratch;
        for &pc in current.as_slice() {
            if let Inst::Char(set) = &self.insts[pc as usize] {
                if set.contains(c) {
                    add_thread(&self.insts, pc as usize + 1, next);
                }
            }
        }
        std::mem::swap(current, next);
    }
}

/// Epsilon-closure insertion of a thread: every visited pc is marked (the
/// termination guarantee), only consuming/accepting pcs are listed.
fn add_thread(insts: &[Inst], pc: usize, set: &mut ThreadSet) {
    if !set.mark(pc as u32) {
        return;
    }
    match &insts[pc] {
        Inst::Jump(t) => add_thread(insts, *t, set),
        Inst::Split(a, b) => {
            add_thread(insts, *a, set);
            add_thread(insts, *b, set);
        }
        Inst::Char(_) | Inst::Match => set.push(pc as u32),
    }
}

/// Cap on expanded repeat counts; `a{1000}` compiles but larger bounds are
/// clamped to keep programs small (Grok uses tiny bounds only).
const MAX_REPEAT: u32 = 1000;

fn compile_node(ast: &Ast, insts: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(set) => insts.push(Inst::Char(set.clone())),
        Ast::Concat(items) => {
            for item in items {
                compile_node(item, insts);
            }
        }
        Ast::Alt(branches) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jump_slots: Vec<usize> = Vec::new();
            let last = branches.len() - 1;
            for (i, branch) in branches.iter().enumerate() {
                if i < last {
                    let split_at = insts.len();
                    insts.push(Inst::Split(0, 0)); // patched below
                    compile_node(branch, insts);
                    jump_slots.push(insts.len());
                    insts.push(Inst::Jump(0)); // patched below
                    let after = insts.len();
                    insts[split_at] = Inst::Split(split_at + 1, after);
                } else {
                    compile_node(branch, insts);
                }
            }
            let end = insts.len();
            for slot in jump_slots {
                insts[slot] = Inst::Jump(end);
            }
        }
        Ast::Repeat { node, min, max } => {
            let min = (*min).min(MAX_REPEAT);
            match max {
                Some(maxv) => {
                    let maxv = (*maxv).min(MAX_REPEAT).max(min);
                    // min mandatory copies…
                    for _ in 0..min {
                        compile_node(node, insts);
                    }
                    // …then (max-min) optional copies, each with an exit split.
                    let mut split_slots: Vec<usize> = Vec::new();
                    for _ in min..maxv {
                        let split_at = insts.len();
                        insts.push(Inst::Split(0, 0));
                        split_slots.push(split_at);
                        compile_node(node, insts);
                    }
                    let end = insts.len();
                    for slot in split_slots {
                        insts[slot] = Inst::Split(slot + 1, end);
                    }
                }
                None => {
                    if min == 0 {
                        // star: split over (body, out); body jumps back.
                        let split_at = insts.len();
                        insts.push(Inst::Split(0, 0));
                        compile_node(node, insts);
                        insts.push(Inst::Jump(split_at));
                        let end = insts.len();
                        insts[split_at] = Inst::Split(split_at + 1, end);
                    } else {
                        // plus family: min-1 copies then one trailing loop.
                        for _ in 0..min - 1 {
                            compile_node(node, insts);
                        }
                        let body_start = insts.len();
                        compile_node(node, insts);
                        let split_at = insts.len();
                        insts.push(Inst::Split(body_start, split_at + 1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(pattern: &str) -> Program {
        Program::compile(&parse(pattern).unwrap())
    }

    #[test]
    fn full_match_basics() {
        let p = prog("ab+c?");
        assert!(p.is_full_match("ab"));
        assert!(p.is_full_match("abbbc"));
        assert!(!p.is_full_match("ac"));
        assert!(!p.is_full_match("abcx"));
    }

    #[test]
    fn alternation_and_groups() {
        let p = prog("(cat|dog)s?");
        for ok in ["cat", "dogs", "cats"] {
            assert!(p.is_full_match(ok), "{ok}");
        }
        assert!(!p.is_full_match("cow"));
    }

    #[test]
    fn bounded_repeats() {
        let p = prog(r"\d{2,4}");
        assert!(!p.is_full_match("1"));
        assert!(p.is_full_match("12"));
        assert!(p.is_full_match("1234"));
        assert!(!p.is_full_match("12345"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let p = prog("");
        assert!(p.is_full_match(""));
        assert!(!p.is_full_match("a"));
    }

    #[test]
    fn substring_search() {
        let p = prog(r"\d+\.\d+\.\d+\.\d+");
        assert!(p.is_match("server at 10.0.0.1 responded"));
        assert!(!p.is_match("server at ten dot zero"));
        assert!(p.is_match("10.0.0.1"));
    }

    #[test]
    fn star_with_empty_body_terminates() {
        let p = prog("(a?)*b");
        assert!(p.is_full_match("b"));
        assert!(p.is_full_match("aab"));
        assert!(!p.is_full_match("c"));
    }

    #[test]
    fn linear_time_on_adversarial_pattern() {
        // (a+)+$ style patterns kill backtracking engines; the Pike VM is fine.
        let p = prog("(a+)+");
        let input = "a".repeat(64) + "!";
        assert!(!p.is_full_match(&input));
        assert!(p.is_full_match(&"a".repeat(64)));
    }

    #[test]
    fn huge_bounded_repeat_is_clamped_not_oom() {
        let p = prog("a{100000}");
        assert!(p.len() < 5000);
    }
}
