//! Sparse thread lists for automaton simulation.
//!
//! A [`ThreadSet`] is the Pike VM's working set: an insertion-ordered list
//! of live state ids plus a membership bitmap, both reused across steps so
//! steady-state simulation allocates nothing. It is exported because the
//! same structure drives every thread-list automaton in the workspace —
//! this crate's NFA executor and the catalog-wide matcher in `av-match`
//! (whose ε-closures *mark* every visited state but *list* only the
//! consuming ones, hence the split [`ThreadSet::mark`]/[`ThreadSet::push`]
//! API rather than a single insert).

/// An insertion-ordered set of automaton state ids with O(1) membership.
///
/// The bitmap covers a fixed universe `0..n` established by
/// [`ThreadSet::clear_resize`]; ids are `u32` so a list of a million live
/// states stays compact. Marking and listing are deliberately separate
/// operations: an ε-closure marks every state it visits (to terminate) but
/// pushes only the states that consume input or accept.
#[derive(Debug, Default, Clone)]
pub struct ThreadSet {
    list: Vec<u32>,
    on: Vec<bool>,
}

impl ThreadSet {
    /// Fresh, empty set (does not allocate).
    pub fn new() -> ThreadSet {
        ThreadSet::default()
    }

    /// Empty the set and re-dimension the membership bitmap for state ids
    /// in `0..n`. Retains capacity, so reuse across inputs is
    /// allocation-free once the universe size stabilizes.
    pub fn clear_resize(&mut self, n: usize) {
        self.list.clear();
        self.on.clear();
        self.on.resize(n, false);
    }

    /// Empty the set, keeping the current universe size.
    pub fn reset(&mut self) {
        self.list.clear();
        self.on.iter_mut().for_each(|b| *b = false);
    }

    /// Mark `id` as visited; returns `true` when it was not yet marked.
    /// Marking does not add the id to the list — pair with
    /// [`ThreadSet::push`] for states that should appear there.
    #[inline]
    pub fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.on[id as usize];
        let fresh = !*slot;
        *slot = true;
        fresh
    }

    /// Append `id` to the list. The caller has already claimed it via
    /// [`ThreadSet::mark`]; pushing an unmarked or repeated id produces a
    /// duplicate entry.
    #[inline]
    pub fn push(&mut self, id: u32) {
        self.list.push(id);
    }

    /// Mark and list `id` in one step; returns `true` when newly inserted.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        if self.mark(id) {
            self.list.push(id);
            true
        } else {
            false
        }
    }

    /// Has `id` been marked since the last clear?
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.on[id as usize]
    }

    /// The listed ids, in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.list
    }

    /// Number of listed ids.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_push_are_separate() {
        let mut set = ThreadSet::new();
        set.clear_resize(8);
        assert!(set.mark(3));
        assert!(!set.mark(3), "second mark reports already-visited");
        assert!(set.contains(3));
        assert!(set.as_slice().is_empty(), "marking alone does not list");
        set.push(3);
        assert_eq!(set.as_slice(), &[3]);
    }

    #[test]
    fn insert_dedupes_and_preserves_order() {
        let mut set = ThreadSet::new();
        set.clear_resize(10);
        assert!(set.insert(7));
        assert!(set.insert(2));
        assert!(!set.insert(7));
        assert_eq!(set.as_slice(), &[7, 2]);
        assert_eq!(set.len(), 2);
        set.reset();
        assert!(set.is_empty());
        assert!(!set.contains(7));
        assert!(set.insert(7), "reset forgets marks");
    }

    #[test]
    fn clear_resize_grows_and_shrinks_the_universe() {
        let mut set = ThreadSet::new();
        set.clear_resize(2);
        set.insert(1);
        set.clear_resize(100);
        assert!(!set.contains(1));
        set.insert(99);
        assert_eq!(set.as_slice(), &[99]);
    }
}
