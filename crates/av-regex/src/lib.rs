//! # av-regex — a small, safe regular-expression engine
//!
//! A from-scratch regex engine used as a substrate by Auto-Validate's
//! baselines: the Grok pattern library (§5.2), the SSIS-style profiler, the
//! simulated programmers of the user study (Table 3), and for exporting
//! inferred `av-pattern` rules as standard regexes.
//!
//! Matching compiles to a Thompson NFA executed by a Pike VM, so it runs in
//! `O(|input| × |pattern|)` with **no backtracking blow-up** — important
//! because baselines run over millions of machine-generated values.
//!
//! ```
//! use av_regex::Regex;
//! let re = Regex::new(r"\d{4}-\d{2}-\d{2}").unwrap();
//! assert!(re.is_full_match("2019-03-01"));
//! assert!(!re.is_full_match("2019-3-1"));
//! assert!(re.is_match("shipped on 2019-03-01 ok"));
//! ```

mod ast;
mod nfa;
mod thread_set;

pub use ast::RegexError;
pub use nfa::NfaScratch;
pub use thread_set::ThreadSet;

use ast::parse;
use nfa::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Compile a pattern. See the crate docs for the supported dialect.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            pattern: pattern.to_string(),
            program: Program::compile(&ast),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the regex match the *entire* input?
    ///
    /// Uses a thread-local [`NfaScratch`], so repeated calls allocate
    /// nothing; hot loops that want explicit control can pass their own
    /// via [`Regex::is_full_match_with`].
    pub fn is_full_match(&self, input: &str) -> bool {
        self.program.is_full_match(input)
    }

    /// [`Regex::is_full_match`] with caller-provided working memory.
    pub fn is_full_match_with(&self, input: &str, scratch: &mut NfaScratch) -> bool {
        self.program.is_full_match_with(input, scratch)
    }

    /// Does the regex match anywhere in the input?
    pub fn is_match(&self, input: &str) -> bool {
        self.program.is_match(input)
    }

    /// [`Regex::is_match`] with caller-provided working memory.
    pub fn is_match_with(&self, input: &str, scratch: &mut NfaScratch) -> bool {
        self.program.is_match_with(input, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grok_style_patterns() {
        let cases = [
            (
                r"(25[0-5]|2[0-4]\d|[01]?\d?\d)(\.(25[0-5]|2[0-4]\d|[01]?\d?\d)){3}",
                "192.168.0.1",
                true,
            ),
            (
                r"(25[0-5]|2[0-4]\d|[01]?\d?\d)(\.(25[0-5]|2[0-4]\d|[01]?\d?\d)){3}",
                "999.1.1.1",
                false,
            ),
            (
                r"[0-9A-Fa-f]{8}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{12}",
                "550e8400-e29b-41d4-a716-446655440000",
                true,
            ),
            (
                r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}",
                "2021-04-13T09:00:00",
                true,
            ),
        ];
        for (pat, input, want) in cases {
            let re = Regex::new(pat).unwrap();
            assert_eq!(re.is_full_match(input), want, "{pat} vs {input}");
        }
    }

    #[test]
    fn unicode_input_is_handled() {
        let re = Regex::new(r".+").unwrap();
        assert!(re.is_full_match("héllo"));
        let re2 = Regex::new(r"\w+").unwrap();
        assert!(!re2.is_full_match("héllo")); // é is not an ASCII word char
    }

    #[test]
    fn pattern_accessor() {
        let re = Regex::new("abc").unwrap();
        assert_eq!(re.pattern(), "abc");
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new("a{2,1}").is_err());
    }
}
