//! Regex abstract syntax tree and parser.
//!
//! The supported dialect covers what the Grok pattern library, the SSIS-style
//! profiler and exported Auto-Validate rules need: literals, `.`; escapes
//! `\d \D \w \W \s \S` and escaped metacharacters; character classes with
//! ranges and negation; grouping `()`; alternation `|`; and the quantifiers
//! `* + ? {m} {m,} {m,n}` (greedy only — matching is NFA-based, so greediness
//! does not affect acceptance).

use std::fmt;

/// A set of characters, either listed/ranged or one of the perl classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharSet {
    /// Inclusive character ranges (singletons are `(c, c)`).
    pub ranges: Vec<(char, char)>,
    /// When true the set is complemented.
    pub negated: bool,
}

impl CharSet {
    /// Set containing a single char.
    pub fn single(c: char) -> CharSet {
        CharSet {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    /// Perl-style `\d`.
    pub fn digit() -> CharSet {
        CharSet {
            ranges: vec![('0', '9')],
            negated: false,
        }
    }

    /// Perl-style `\w` (ASCII word chars).
    pub fn word() -> CharSet {
        CharSet {
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            negated: false,
        }
    }

    /// Perl-style `\s` (ASCII whitespace).
    pub fn space() -> CharSet {
        CharSet {
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
            negated: false,
        }
    }

    /// The `.` wildcard (anything except newline).
    pub fn dot() -> CharSet {
        CharSet {
            ranges: vec![('\n', '\n')],
            negated: true,
        }
    }

    /// Negate the set.
    pub fn negate(mut self) -> CharSet {
        self.negated = !self.negated;
        self
    }

    /// Membership test.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Regex AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Empty expression (matches the empty string).
    Empty,
    /// One character from a set.
    Class(CharSet),
    /// Concatenation, in order.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Repetition `min..=max` (`max == None` means unbounded).
    Repeat {
        /// Repeated sub-expression.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
    },
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexError {}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    input: &'a str,
}

/// Parse a regex pattern into an AST.
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        input: pattern,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> RegexError {
        // Convert char position to a byte offset for the message.
        let offset = self
            .input
            .char_indices()
            .nth(self.pos)
            .map(|(i, _)| i)
            .unwrap_or(self.input.len());
        RegexError {
            offset,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.number()?;
                let max = if self.eat(',') {
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.number()?)
                    }
                } else {
                    Some(min)
                };
                if !self.eat('}') {
                    return Err(self.err("expected '}'"));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(self.err("max repeat below min"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        // Reject double quantifiers like `a**`.
        if matches!(self.peek(), Some('*' | '+' | '?')) {
            return Err(self.err("nested quantifier"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|_| self.err("repeat count too large"))
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                // Non-capturing group marker is accepted and ignored.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.bump();
                    if self.eat(':') {
                        // fine
                    } else {
                        self.pos = save;
                        return Err(self.err("unsupported group flag"));
                    }
                }
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.char_class()
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Class(CharSet::dot()))
            }
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Ast::Class(escape_set(c).ok_or_else(|| {
                    self.err(format!("unsupported escape \\{c}"))
                })?))
            }
            Some('^') | Some('$') => {
                // Full-match semantics make anchors redundant; accept and
                // treat as empty so Grok-style patterns parse.
                self.bump();
                Ok(Ast::Empty)
            }
            Some(c) if c == '*' || c == '+' || c == '?' || c == '{' => {
                Err(self.err(format!("dangling quantifier {c:?}")))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Class(CharSet::single(c)))
            }
            None => Ok(Ast::Empty),
        }
    }

    fn char_class(&mut self) -> Result<Ast, RegexError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(c) => c,
            };
            first = false;
            self.bump();
            let lo = if c == '\\' {
                let e = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                if let Some(set) = perl_class(e) {
                    ranges.extend(set.ranges);
                    continue;
                }
                escape_char(e)
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi_raw = self.bump().ok_or_else(|| self.err("unterminated range"))?;
                let hi = if hi_raw == '\\' {
                    let e = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                    escape_char(e)
                } else {
                    hi_raw
                };
                if hi < lo {
                    return Err(self.err("invalid range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class(CharSet { ranges, negated }))
    }
}

/// Character denoted by an escape inside or outside classes.
fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Perl class sets usable inside `[...]`.
fn perl_class(c: char) -> Option<CharSet> {
    match c {
        'd' => Some(CharSet::digit()),
        'w' => Some(CharSet::word()),
        's' => Some(CharSet::space()),
        _ => None,
    }
}

/// Set denoted by `\c` outside classes.
fn escape_set(c: char) -> Option<CharSet> {
    match c {
        'd' => Some(CharSet::digit()),
        'D' => Some(CharSet::digit().negate()),
        'w' => Some(CharSet::word()),
        'W' => Some(CharSet::word().negate()),
        's' => Some(CharSet::space()),
        'S' => Some(CharSet::space().negate()),
        'n' | 't' | 'r' | '0' => Some(CharSet::single(escape_char(c))),
        // Escaped metacharacters and any other punctuation.
        c if !c.is_ascii_alphanumeric() => Some(CharSet::single(c)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_literal_concat() {
        let ast = parse("ab").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Class(CharSet::single('a')),
                Ast::Class(CharSet::single('b')),
            ])
        );
    }

    #[test]
    fn parse_alternation_and_groups() {
        let ast = parse("a|(bc)").unwrap();
        match ast {
            Ast::Alt(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parse_quantifiers() {
        for (pat, min, max) in [
            ("a*", 0, None),
            ("a+", 1, None),
            ("a?", 0, Some(1)),
            ("a{3}", 3, Some(3)),
            ("a{2,}", 2, None),
            ("a{2,5}", 2, Some(5)),
        ] {
            match parse(pat).unwrap() {
                Ast::Repeat { min: m, max: x, .. } => {
                    assert_eq!((m, x), (min, max), "{pat}");
                }
                other => panic!("{pat}: expected Repeat, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_classes() {
        let ast = parse("[a-z0-9_]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains('m'));
                assert!(set.contains('5'));
                assert!(set.contains('_'));
                assert!(!set.contains('A'));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn parse_negated_class_with_perl_inside() {
        let ast = parse(r"[^\d]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(!set.contains('3'));
                assert!(set.contains('x'));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn class_first_bracket_is_literal() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("a{5,2}").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a**").is_err());
        assert!(parse("\\").is_err());
    }

    #[test]
    fn anchors_are_tolerated() {
        assert!(parse("^abc$").is_ok());
    }
}
