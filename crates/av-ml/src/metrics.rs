//! Quality metrics for the case study: R² for regression tasks and average
//! precision for classification tasks (the metrics Fig. 15 reports).

/// Coefficient of determination R².
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Average precision (area under the precision-recall curve, step-wise),
/// for binary labels scored by descending `pred`.
pub fn average_precision(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let positives = truth.iter().filter(|&&t| t > 0.5).count();
    if positives == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..truth.len()).collect();
    order.sort_by(|&a, &b| pred[b].partial_cmp(&pred[a]).expect("finite scores"));
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        if truth[i] > 0.5 {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    ap / positives as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_perfect_and_mean_predictors() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert!((r2_score(&truth, &truth) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2_score(&truth, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn r2_worse_than_mean_is_negative() {
        let truth = [1.0, 2.0, 3.0];
        let bad = [3.0, 1.0, 10.0];
        assert!(r2_score(&truth, &bad) < 0.0);
    }

    #[test]
    fn ap_perfect_ranking() {
        let truth = [1.0, 1.0, 0.0, 0.0];
        let pred = [0.9, 0.8, 0.2, 0.1];
        assert!((average_precision(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_random_is_positive_rate() {
        // With all scores equal? Ties keep input order; use a known case:
        // worst ranking puts positives last.
        let truth = [0.0, 0.0, 1.0];
        let pred = [0.9, 0.8, 0.1];
        // single positive at rank 3 → AP = 1/3.
        assert!((average_precision(&truth, &pred) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_without_positives_is_zero() {
        assert_eq!(average_precision(&[0.0, 0.0], &[0.5, 0.6]), 0.0);
    }
}
