//! Regression trees: the weak learners inside the gradient booster.

/// One node of a binary regression tree (flattened into a vec).
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Internal split: `feature`, `threshold`, children indices.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf prediction.
    Leaf(f64),
}

/// A depth-limited regression tree fit to residuals with exact greedy
/// variance-reduction splits.
#[derive(Debug, Clone)]
pub struct Tree {
    pub(crate) nodes: Vec<Node>,
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TreeParams {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
}

impl Tree {
    /// Fit a tree to `targets` over column-major `features` restricted to
    /// `rows`.
    pub(crate) fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        rows: &[usize],
        params: TreeParams,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        let mut rows = rows.to_vec();
        tree.grow(features, targets, &mut rows, params, 0);
        tree
    }

    fn grow(
        &mut self,
        features: &[Vec<f64>],
        targets: &[f64],
        rows: &mut [usize],
        params: TreeParams,
        depth: usize,
    ) -> usize {
        let mean = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|&r| targets[r]).sum::<f64>() / rows.len() as f64
        };
        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf(mean));
            return id;
        }
        match best_split(features, targets, rows, params.min_samples_leaf) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf(mean));
                id
            }
            Some((feature, threshold)) => {
                // Partition rows in place.
                let mut mid = 0usize;
                for i in 0..rows.len() {
                    if features[feature][rows[i]] <= threshold {
                        rows.swap(i, mid);
                        mid += 1;
                    }
                }
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf(mean)); // placeholder, patched below
                let (left_rows, right_rows) = rows.split_at_mut(mid);
                let left = self.grow(features, targets, left_rows, params, depth + 1);
                let right = self.grow(features, targets, right_rows, params, depth + 1);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    /// Predict one row (features given column-major, indexed by `row`).
    pub(crate) fn predict_indexed(&self, features: &[Vec<f64>], row: usize) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if features[*feature][row] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a single dense row vector.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Exact greedy best split by variance reduction; `None` when no split
/// improves on the parent or satisfies the leaf-size floor.
fn best_split(
    features: &[Vec<f64>],
    targets: &[f64],
    rows: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = rows.len() as f64;
    let total_sum: f64 = rows.iter().map(|&r| targets[r]).sum();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    for (f, col) in features.iter().enumerate() {
        // Sort row ids by feature value.
        let mut order: Vec<usize> = rows.to_vec();
        order.sort_by(|&a, &b| col[a].partial_cmp(&col[b]).expect("finite features"));
        let mut left_sum = 0.0;
        for i in 0..order.len().saturating_sub(1) {
            left_sum += targets[order[i]];
            let nl = (i + 1) as f64;
            let nr = n - nl;
            if (i + 1) < min_leaf || (order.len() - i - 1) < min_leaf {
                continue;
            }
            let v_here = col[order[i]];
            let v_next = col[order[i + 1]];
            if v_here == v_next {
                continue; // cannot split between equal values
            }
            let right_sum = total_sum - left_sum;
            // Variance reduction ∝ n_l·mean_l² + n_r·mean_r².
            let score = left_sum * left_sum / nl + right_sum * right_sum / nr;
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((f, (v_here + v_next) / 2.0, score));
            }
        }
    }
    // Only split if it actually reduces variance.
    let parent_score = total_sum * total_sum / n;
    best.filter(|(_, _, s)| *s > parent_score + 1e-12)
        .map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separable_step_function() {
        let features = vec![vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]];
        let targets = vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0];
        let rows: Vec<usize> = (0..6).collect();
        let tree = Tree::fit(
            &features,
            &targets,
            &rows,
            TreeParams {
                max_depth: 2,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(tree.predict_row(&[2.0]), 0.0);
        assert_eq!(tree.predict_row(&[11.0]), 5.0);
    }

    #[test]
    fn constant_targets_make_a_leaf() {
        let features = vec![vec![1.0, 2.0, 3.0]];
        let targets = vec![7.0, 7.0, 7.0];
        let rows: Vec<usize> = (0..3).collect();
        let tree = Tree::fit(
            &features,
            &targets,
            &rows,
            TreeParams {
                max_depth: 3,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.predict_row(&[99.0]), 7.0);
    }

    #[test]
    fn min_leaf_size_is_respected() {
        let features = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let targets = vec![0.0, 0.0, 1.0, 1.0];
        let rows: Vec<usize> = (0..4).collect();
        let tree = Tree::fit(
            &features,
            &targets,
            &rows,
            TreeParams {
                max_depth: 5,
                min_samples_leaf: 2,
            },
        );
        // Only the 2/2 split is legal.
        match &tree.nodes[0] {
            Node::Split { threshold, .. } => assert!((*threshold - 2.5).abs() < 1e-9),
            Node::Leaf(_) => panic!("expected a split"),
        }
    }

    #[test]
    fn two_feature_interaction() {
        // y = 1 iff x0 > 0.5 (x1 is noise); the tree must pick feature 0.
        let features = vec![
            vec![0.1, 0.2, 0.9, 0.8, 0.15, 0.95],
            vec![5.0, 1.0, 2.0, 6.0, 3.0, 4.0],
        ];
        let targets = vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0];
        let rows: Vec<usize> = (0..6).collect();
        let tree = Tree::fit(
            &features,
            &targets,
            &rows,
            TreeParams {
                max_depth: 1,
                min_samples_leaf: 1,
            },
        );
        match &tree.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            Node::Leaf(_) => panic!("expected a split"),
        }
    }
}
