//! # av-ml — gradient-boosted trees for the schema-drift case study
//!
//! The paper's Fig. 15 trains XGBoost on eleven Kaggle tasks and shows that
//! silently swapping two categorical attributes in the test data degrades
//! quality by up to 78% — a failure Auto-Validate catches before scoring.
//! This crate provides the ML substrate for that experiment, written from
//! scratch: depth-limited regression trees boosted with squared-error or
//! logistic gradients ([`Gbdt`]), per-column categorical encoding
//! ([`CategoryEncoder`]) whose positional nature is what drift breaks, and
//! the reported metrics ([`r2_score`], [`average_precision`]).

mod encode;
mod gbdt;
mod metrics;
mod tree;

pub use encode::CategoryEncoder;
pub use gbdt::{Gbdt, GbdtConfig, Objective};
pub use metrics::{average_precision, r2_score};
pub use tree::Tree;
