//! Categorical encoding for string features, as an ML pipeline would set it
//! up per column position — which is exactly what schema-drift silently
//! breaks (Fig. 15): after a positional swap, values arrive at an encoder
//! built from a different column's vocabulary and map to "unseen".

use std::collections::HashMap;

/// A per-column categorical encoder: category → index by descending
/// training frequency; unseen values map to -1.0.
#[derive(Debug, Clone)]
pub struct CategoryEncoder {
    mapping: HashMap<String, f64>,
}

impl CategoryEncoder {
    /// Fit on training values.
    pub fn fit(values: &[String]) -> CategoryEncoder {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(&str, usize)> = counts.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mapping = by_freq
            .into_iter()
            .enumerate()
            .map(|(i, (v, _))| (v.to_string(), i as f64))
            .collect();
        CategoryEncoder { mapping }
    }

    /// Encode one value (-1.0 when unseen at fit time).
    pub fn encode(&self, value: &str) -> f64 {
        self.mapping.get(value).copied().unwrap_or(-1.0)
    }

    /// Encode a whole column.
    pub fn encode_column(&self, values: &[String]) -> Vec<f64> {
        values.iter().map(|v| self.encode(v)).collect()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.mapping.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Vec<String> {
        vals.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn frequency_rank_encoding() {
        let train = col(&["b", "a", "b", "b", "a", "c"]);
        let enc = CategoryEncoder::fit(&train);
        assert_eq!(enc.encode("b"), 0.0); // most frequent
        assert_eq!(enc.encode("a"), 1.0);
        assert_eq!(enc.encode("c"), 2.0);
        assert_eq!(enc.vocab_size(), 3);
    }

    #[test]
    fn unseen_maps_to_minus_one() {
        let enc = CategoryEncoder::fit(&col(&["x", "y"]));
        assert_eq!(enc.encode("z"), -1.0);
        assert_eq!(enc.encode_column(&col(&["x", "z"])), vec![0.0, -1.0]);
    }

    #[test]
    fn swapped_columns_become_all_unseen() {
        // The schema-drift mechanism: an encoder fit on country codes sees
        // status words after the swap — everything unseen.
        let countries = CategoryEncoder::fit(&col(&["US", "UK", "DE"]));
        let statuses = col(&["Delivered", "Pending"]);
        let encoded = countries.encode_column(&statuses);
        assert!(encoded.iter().all(|&x| x == -1.0));
    }
}
