//! Gradient-boosted decision trees (the stand-in for XGBoost in the
//! Fig. 15 case study) with squared-error and logistic objectives.

use crate::tree::{Tree, TreeParams};

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Squared error; predictions are raw values.
    Regression,
    /// Binary logistic; predictions are probabilities in (0, 1).
    BinaryLogistic,
}

/// Booster hyper-parameters (defaults mirror "XGBoost with default
/// parameters" at small-data scale).
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Minimum rows per leaf.
    pub min_samples_leaf: usize,
    /// Objective.
    pub objective: Objective,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 60,
            max_depth: 4,
            learning_rate: 0.2,
            min_samples_leaf: 4,
            objective: Objective::Regression,
        }
    }
}

impl GbdtConfig {
    /// Default classification config.
    pub fn classification() -> GbdtConfig {
        GbdtConfig {
            objective: Objective::BinaryLogistic,
            ..Default::default()
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A trained booster.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<Tree>,
    base_score: f64,
    config: GbdtConfig,
}

impl Gbdt {
    /// Train on column-major `features` (`features[f][row]`) and `labels`.
    ///
    /// # Panics
    /// Panics when feature columns and labels disagree in length or when
    /// there are no rows.
    pub fn train(features: &[Vec<f64>], labels: &[f64], config: GbdtConfig) -> Gbdt {
        let n = labels.len();
        assert!(n > 0, "no training rows");
        for col in features {
            assert_eq!(col.len(), n, "feature column length mismatch");
        }
        let base_score = match config.objective {
            Objective::Regression => labels.iter().sum::<f64>() / n as f64,
            Objective::BinaryLogistic => {
                // Log-odds of the positive rate, clamped away from ±∞.
                let pos = labels.iter().filter(|&&y| y > 0.5).count() as f64;
                let p = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
        };
        let rows: Vec<usize> = (0..n).collect();
        let params = TreeParams {
            max_depth: config.max_depth,
            min_samples_leaf: config.min_samples_leaf,
        };
        let mut raw: Vec<f64> = vec![base_score; n];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut gradients = vec![0.0f64; n];
        for _ in 0..config.n_trees {
            for (g, (&l, &r)) in gradients.iter_mut().zip(labels.iter().zip(raw.iter())) {
                *g = match config.objective {
                    Objective::Regression => l - r,
                    Objective::BinaryLogistic => l - sigmoid(r),
                };
            }
            let tree = Tree::fit(features, &gradients, &rows, params);
            for (i, r) in raw.iter_mut().enumerate() {
                *r += config.learning_rate * tree.predict_indexed(features, i);
            }
            trees.push(tree);
        }
        Gbdt {
            trees,
            base_score,
            config,
        }
    }

    /// Predict one dense row (probability for logistic, value otherwise).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let raw = self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict_row(row))
                .sum::<f64>();
        match self.config.objective {
            Objective::Regression => raw,
            Objective::BinaryLogistic => sigmoid(raw),
        }
    }

    /// Predict every row of a column-major feature block.
    pub fn predict(&self, features: &[Vec<f64>]) -> Vec<f64> {
        let n = features.first().map(|c| c.len()).unwrap_or(0);
        (0..n)
            .map(|i| {
                let row: Vec<f64> = features.iter().map(|c| c[i]).collect();
                self.predict_row(&row)
            })
            .collect()
    }

    /// Number of boosted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fits_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400;
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let model = Gbdt::train(std::slice::from_ref(&x), &y, GbdtConfig::default());
        let preds = model.predict(&[x]);
        let mse: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / n as f64;
        assert!(mse < 0.05, "mse = {mse}");
    }

    #[test]
    fn classifies_a_threshold_rule() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 500;
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let y: Vec<f64> = x.iter().map(|&v| if v > 0.5 { 1.0 } else { 0.0 }).collect();
        let model = Gbdt::train(&[x.clone(), noise], &y, GbdtConfig::classification());
        let p_hi = model.predict_row(&[0.9, 0.5]);
        let p_lo = model.predict_row(&[0.1, 0.5]);
        assert!(p_hi > 0.9, "p_hi = {p_hi}");
        assert!(p_lo < 0.1, "p_lo = {p_lo}");
    }

    #[test]
    fn logistic_outputs_are_probabilities() {
        let x = vec![vec![0.0, 1.0, 0.0, 1.0, 0.5, 0.2]];
        let y = vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let model = Gbdt::train(&x, &y, GbdtConfig::classification());
        for p in model.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "no training rows")]
    fn empty_training_panics() {
        let _ = Gbdt::train(&[vec![]], &[], GbdtConfig::default());
    }

    #[test]
    fn num_trees_matches_config() {
        let x = vec![vec![0.0, 1.0, 2.0, 3.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let cfg = GbdtConfig {
            n_trees: 7,
            ..Default::default()
        };
        assert_eq!(Gbdt::train(&x, &y, cfg).num_trees(), 7);
    }
}
