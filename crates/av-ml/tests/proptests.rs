//! Property-based tests for the ML substrate.

use av_ml::{average_precision, r2_score, CategoryEncoder, Gbdt, GbdtConfig};
use proptest::prelude::*;

proptest! {
    /// R² of the truth against itself is 1; shifting predictions can only
    /// lower it.
    #[test]
    fn r2_self_is_one(ys in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        prop_assume!(ys.iter().any(|y| (y - ys[0]).abs() > 1e-9));
        prop_assert!((r2_score(&ys, &ys) - 1.0).abs() < 1e-9);
        let shifted: Vec<f64> = ys.iter().map(|y| y + 5.0).collect();
        prop_assert!(r2_score(&ys, &shifted) < 1.0);
    }

    /// Average precision is within [0,1] and equals 1 for perfect rankings.
    #[test]
    fn ap_bounds(labels in proptest::collection::vec(0u8..2, 2..40)) {
        let truth: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        prop_assume!(truth.iter().any(|&t| t > 0.5));
        // Perfect ranking: score = label.
        prop_assert!((average_precision(&truth, &truth) - 1.0).abs() < 1e-9);
        // Arbitrary constant scores stay within bounds.
        let flat = vec![0.5; truth.len()];
        let ap = average_precision(&truth, &flat);
        prop_assert!((0.0..=1.0).contains(&ap));
    }

    /// The encoder is a bijection on its training vocabulary and -1 outside.
    #[test]
    fn encoder_bijection(vocab in proptest::collection::hash_set("[a-z]{1,6}", 1..20)) {
        let values: Vec<String> = vocab.iter().cloned().collect();
        let enc = CategoryEncoder::fit(&values);
        prop_assert_eq!(enc.vocab_size(), values.len());
        let mut seen = std::collections::HashSet::new();
        for v in &values {
            let code = enc.encode(v);
            prop_assert!(code >= 0.0);
            prop_assert!(seen.insert(code.to_bits()), "codes must be distinct");
        }
        prop_assert_eq!(enc.encode("THIS-IS-NOT-IN-VOCAB"), -1.0);
    }

    /// Training loss decreases with more trees on a learnable function.
    #[test]
    fn boosting_reduces_training_error(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 120;
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let y: Vec<f64> = x.iter().map(|v| if *v > 0.2 { 2.0 } else { -1.0 }).collect();
        let mse = |k: usize| {
            let cfg = GbdtConfig { n_trees: k, ..Default::default() };
            let m = Gbdt::train(std::slice::from_ref(&x), &y, cfg);
            let p = m.predict(std::slice::from_ref(&x));
            p.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / n as f64
        };
        prop_assert!(mse(30) <= mse(1) + 1e-9);
    }
}
