//! # av-bench — experiment harness shared by every table/figure binary
//!
//! Each `exp_*` binary regenerates one artifact of the paper's §5 (see
//! DESIGN.md's experiment index). This library holds the shared setup:
//! scale presets, corpus/index construction, the standard method roster,
//! and output-directory plumbing. Results are printed as aligned tables and
//! written as CSV under `results/`.

use av_baselines::{
    ColumnValidator, DeequCat, DeequFra, FlashProfile, Grok, PottersWheel, SchemaMatchCorpus,
    SmInstance, SmPattern, Ssis, Tfdv, XSystem,
};
use av_core::{FmdvConfig, Variant};
use av_corpus::{generate_lake, Benchmark, Column, Corpus, LakeProfile};
use av_eval::FmdvValidator;
use av_index::{IndexConfig, PatternIndex};
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke runs (CI-friendly).
    Small,
    /// The full simulated reproduction.
    Full,
}

impl Scale {
    /// Corpus size for a base profile.
    pub fn corpus_columns(&self, profile: &LakeProfile) -> usize {
        match self {
            Scale::Small => (profile.num_columns / 5).max(1000),
            Scale::Full => profile.num_columns,
        }
    }

    /// Benchmark cases (the paper samples 1000).
    pub fn benchmark_cases(&self) -> usize {
        match self {
            Scale::Small => 250,
            Scale::Full => 1000,
        }
    }

    /// Recall sample per case (0 = all others, the paper's exact setting).
    pub fn recall_sample(&self) -> usize {
        match self {
            Scale::Small => 50,
            Scale::Full => 100,
        }
    }
}

/// Common command-line arguments for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Scale preset (`--scale small|full`).
    pub scale: Scale,
    /// Base corpus profile (`--profile enterprise|government`).
    pub profile: LakeProfile,
    /// Output directory for CSVs (`--out DIR`, default `results/`).
    pub out_dir: PathBuf,
    /// Master seed (`--seed N`).
    pub seed: u64,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with defaults.
    pub fn parse() -> ExpArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Small;
        let mut profile = LakeProfile::enterprise();
        let mut out_dir = PathBuf::from("results");
        let mut seed = 42u64;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(|s| s.as_str()) {
                        Some("full") => Scale::Full,
                        _ => Scale::Small,
                    };
                }
                "--profile" => {
                    i += 1;
                    profile = match args.get(i).map(|s| s.as_str()) {
                        Some("government") => LakeProfile::government(),
                        _ => LakeProfile::enterprise(),
                    };
                }
                "--out" => {
                    i += 1;
                    out_dir = PathBuf::from(args.get(i).cloned().unwrap_or_default());
                }
                "--seed" => {
                    i += 1;
                    seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
                }
                other => {
                    eprintln!("ignoring unknown argument {other:?}");
                }
            }
            i += 1;
        }
        ExpArgs {
            scale,
            profile,
            out_dir,
            seed,
        }
    }
}

/// A fully prepared experiment environment.
pub struct Env {
    /// The simulated lake.
    pub corpus: Corpus,
    /// Offline index over it.
    pub index: Arc<PatternIndex>,
    /// Benchmark of sampled query columns with 10/90 splits.
    pub benchmark: Benchmark,
    /// FMDV configuration scaled to the corpus.
    pub fmdv: FmdvConfig,
}

/// Generate corpus → build index → sample benchmark.
pub fn prepare(args: &ExpArgs) -> Env {
    prepare_with(args, IndexConfig::default(), None)
}

/// Like [`prepare`] but with a custom index configuration and an optional
/// override of benchmark size.
pub fn prepare_with(args: &ExpArgs, index_config: IndexConfig, cases: Option<usize>) -> Env {
    let profile = args
        .profile
        .scaled(args.scale.corpus_columns(&args.profile));
    eprintln!(
        "[setup] generating {} corpus: {} columns…",
        profile.name, profile.num_columns
    );
    let corpus = generate_lake(&profile, args.seed);
    eprintln!("[setup] indexing (τ = {})…", index_config.tau);
    let t0 = std::time::Instant::now();
    let cols: Vec<&Column> = corpus.columns().collect();
    let index = Arc::new(PatternIndex::build(&cols, &index_config));
    eprintln!(
        "[setup] indexed {} columns → {} patterns in {:.1?}",
        index.num_columns,
        index.len(),
        t0.elapsed()
    );
    let value_cap = if profile.name == "government" {
        100
    } else {
        1000
    };
    let benchmark = Benchmark::sample(
        &corpus,
        cases.unwrap_or(args.scale.benchmark_cases()),
        20,
        value_cap,
        args.seed.wrapping_add(1),
    );
    let mut fmdv = FmdvConfig::scaled_for_corpus(index.num_columns);
    fmdv.max_segment_tokens = index.tau;
    Env {
        corpus,
        index,
        benchmark,
        fmdv,
    }
}

/// The four FMDV variants under the environment's config.
pub fn fmdv_roster(env: &Env) -> Vec<Box<dyn ColumnValidator>> {
    [
        Variant::Fmdv,
        Variant::FmdvV,
        Variant::FmdvH,
        Variant::FmdvVH,
    ]
    .into_iter()
    .map(|v| {
        Box::new(FmdvValidator::new(env.index.clone(), env.fmdv.clone(), v))
            as Box<dyn ColumnValidator>
    })
    .collect()
}

/// The full §5.2 roster: FMDV variants + every baseline.
pub fn full_roster(env: &Env) -> Vec<Box<dyn ColumnValidator>> {
    let mut roster = fmdv_roster(env);
    roster.push(Box::new(PottersWheel));
    roster.push(Box::new(Ssis));
    roster.push(Box::new(XSystem::default()));
    roster.push(Box::new(FlashProfile::default()));
    roster.push(Box::new(Grok::default()));
    roster.push(Box::new(Tfdv));
    roster.push(Box::new(DeequCat::default()));
    roster.push(Box::new(DeequFra::default()));
    let sm = SchemaMatchCorpus::new(&env.corpus);
    roster.push(Box::new(SmInstance::new(sm.clone(), 1)));
    roster.push(Box::new(SmInstance::new(sm.clone(), 10)));
    roster.push(Box::new(SmPattern::majority(sm.clone())));
    roster.push(Box::new(SmPattern::plurality(sm)));
    roster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets() {
        let e = LakeProfile::enterprise();
        assert_eq!(Scale::Full.corpus_columns(&e), 20_000);
        assert_eq!(Scale::Small.corpus_columns(&e), 4_000);
        assert_eq!(Scale::Full.benchmark_cases(), 1000);
    }

    #[test]
    fn roster_contains_all_paper_methods() {
        let args = ExpArgs {
            scale: Scale::Small,
            profile: LakeProfile::tiny(),
            out_dir: PathBuf::from("/tmp/av-bench-test"),
            seed: 3,
        };
        let env = prepare(&args);
        let roster = full_roster(&env);
        let names: Vec<String> = roster.iter().map(|v| v.name().to_string()).collect();
        for want in [
            "FMDV",
            "FMDV-V",
            "FMDV-H",
            "FMDV-VH",
            "PWheel",
            "SSIS",
            "XSystem",
            "FlashProfile",
            "Grok",
            "TFDV",
            "Deequ-Cat",
            "Deequ-Fra",
            "SM-I-1",
            "SM-I-10",
            "SM-P-M",
            "SM-P-P",
        ] {
            assert!(names.iter().any(|n| n == want), "missing {want}");
        }
    }
}
