//! Table 1 — characteristics of the data corpora.
//!
//! Prints, for the enterprise and government lake profiles, the same rows
//! the paper reports: total files, total columns, average (± std) value
//! count and distinct value count per column.

use av_bench::{ExpArgs, Scale};
use av_corpus::{generate_lake, LakeProfile};
use av_eval::write_series_csv;

fn main() {
    let args = ExpArgs::parse();
    println!("Table 1: characteristics of data corpora (simulated)\n");
    println!(
        "{:<14} {:>10} {:>12} {:>22} {:>26}",
        "corpus", "files", "columns", "avg col values (std)", "avg distinct values (std)"
    );
    println!("{}", "-".repeat(88));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for base in [LakeProfile::enterprise(), LakeProfile::government()] {
        let profile = base.scaled(match args.scale {
            Scale::Small => base.num_columns / 5,
            Scale::Full => base.num_columns,
        });
        let corpus = generate_lake(&profile, args.seed);
        let s = corpus.stats();
        println!(
            "{:<14} {:>10} {:>12} {:>14.0} ({:>5.0}) {:>18.0} ({:>5.0})",
            profile.name,
            s.num_files,
            s.num_columns,
            s.avg_value_count,
            s.std_value_count,
            s.avg_distinct_count,
            s.std_distinct_count
        );
        rows.push(vec![
            profile.name.clone(),
            s.num_files.to_string(),
            s.num_columns.to_string(),
            format!("{:.1}", s.avg_value_count),
            format!("{:.1}", s.std_value_count),
            format!("{:.1}", s.avg_distinct_count),
            format!("{:.1}", s.std_distinct_count),
        ]);
    }
    let path = args.out_dir.join("table1_corpora.csv");
    write_series_csv(
        &path,
        "corpus,files,columns,avg_values,std_values,avg_distinct,std_distinct",
        &rows,
    )
    .expect("write csv");
    println!("\nwrote {}", path.display());
    println!(
        "\npaper reference: TE = 507K files / 7.2M cols / 8945 (17778) / 1543 (7219); \
         TG = 29K files / 628K cols / 305 (331) / 46 (119)"
    );
}
