//! Table 3 — the user study: simulated programmers hand-writing validation
//! regexes for 20 sampled columns vs FMDV-VH, scored with the same
//! precision/recall methodology.
//!
//! Authoring wall-clock time cannot be simulated; the paper's measured
//! times (84–145 s per regex vs 0.08 s for the algorithm) are printed as
//! the reference. Our contribution is the *quality* comparison, which is
//! the part the substitution preserves: hand-written regexes overfit the
//! training sample.

use av_baselines::study_panel;
use av_bench::{prepare_with, ExpArgs};
use av_core::Variant;
use av_eval::{evaluate_method, write_series_csv, EvalConfig, FmdvValidator};
use av_index::IndexConfig;

fn main() {
    let args = ExpArgs::parse();
    let env = prepare_with(&args, IndexConfig::default(), Some(20));
    let cfg = EvalConfig {
        recall_sample: 0, // 20 cases — test against all others, like the paper
        ..Default::default()
    };
    println!(
        "Table 3: user study on {} test columns\n",
        env.benchmark.len()
    );
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "participant", "avg-time (s)", "precision", "recall"
    );
    println!("{}", "-".repeat(54));
    let mut rows: Vec<Vec<String>> = Vec::new();
    // Paper-reported authoring times for the three scoring programmers.
    let paper_times = [145.0, 123.0, 84.0];
    for (p, paper_time) in study_panel(args.seed).iter().zip(paper_times) {
        let r = evaluate_method(p, &env.benchmark, &cfg);
        println!(
            "{:<14} {:>14} {:>12.3} {:>10.3}",
            r.method,
            format!("{paper_time} (paper)"),
            r.precision,
            r.recall
        );
        rows.push(vec![
            r.method.clone(),
            paper_time.to_string(),
            format!("{:.4}", r.precision),
            format!("{:.4}", r.recall),
        ]);
    }
    let v = FmdvValidator::new(env.index.clone(), env.fmdv.clone(), Variant::FmdvVH);
    let r = evaluate_method(&v, &env.benchmark, &cfg);
    println!(
        "{:<14} {:>14.2} {:>12.3} {:>10.3}",
        "FMDV-VH",
        r.avg_latency_ms / 1000.0,
        r.precision,
        r.recall
    );
    rows.push(vec![
        "FMDV-VH".into(),
        format!("{:.4}", r.avg_latency_ms / 1000.0),
        format!("{:.4}", r.precision),
        format!("{:.4}", r.recall),
    ]);
    let path = args.out_dir.join("table3_user_study.csv");
    write_series_csv(&path, "participant,avg_time_s,precision,recall", &rows).expect("write csv");
    println!("\nwrote {}", path.display());
    println!(
        "\npaper reference: programmers averaged 117 s per regex at precision 0.3–0.65 \
         (2 of 5 failed outright); FMDV-VH took 0.08 s at precision 1.0 / recall 0.978."
    );
}
