//! Figure 14 — average latency (ms) to process one query column: the four
//! indexed FMDV variants vs pattern profilers vs FMDV without the offline
//! index (which must scan the corpus per query).

use av_baselines::{ColumnValidator, FlashProfile, PottersWheel, XSystem};
use av_bench::{prepare, ExpArgs};
use av_core::Variant;
use av_eval::{latency_table, write_series_csv, FmdvValidator, NoIndexFmdv};
use std::sync::Arc;
use std::time::Instant;

fn measure(validator: &dyn ColumnValidator, trains: &[Vec<String>]) -> f64 {
    // Borrow once outside the timed loop: the measured cost is inference,
    // not slice construction.
    let borrowed: Vec<Vec<&str>> = trains
        .iter()
        .map(|t| t.iter().map(String::as_str).collect())
        .collect();
    let t0 = Instant::now();
    let mut inferred = 0usize;
    for train in &borrowed {
        if validator.infer(train).is_some() {
            inferred += 1;
        }
    }
    let ms = t0.elapsed().as_secs_f64() * 1000.0 / trains.len() as f64;
    eprintln!(
        "[fig14] {:<16} {:>10.3} ms/column ({} rules from {} columns)",
        validator.name(),
        ms,
        inferred,
        trains.len()
    );
    ms
}

fn main() {
    let args = ExpArgs::parse();
    let env = prepare(&args);
    let trains: Vec<Vec<String>> = env
        .benchmark
        .eligible_cases()
        .take(60)
        .map(|c| c.train.clone())
        .collect();
    println!(
        "Figure 14: per-query-column inference latency over {} columns\n",
        trains.len()
    );
    let mut results: Vec<(String, f64)> = Vec::new();
    for variant in [
        Variant::Fmdv,
        Variant::FmdvV,
        Variant::FmdvH,
        Variant::FmdvVH,
    ] {
        let v = FmdvValidator::new(env.index.clone(), env.fmdv.clone(), variant);
        results.push((v.name().to_string(), measure(&v, &trains)));
    }
    for p in [
        Box::new(PottersWheel) as Box<dyn ColumnValidator>,
        Box::new(XSystem::default()),
        Box::new(FlashProfile::default()),
    ] {
        results.push((p.name().to_string(), measure(p.as_ref(), &trains)));
    }
    // No-index FMDV is orders of magnitude slower: measure on fewer columns.
    let columns = Arc::new(env.corpus.columns().cloned().collect::<Vec<_>>());
    let no_index = NoIndexFmdv::new(columns, env.fmdv.clone());
    let slow_sample: Vec<Vec<String>> = trains.iter().take(5).cloned().collect();
    results.push((
        no_index.name().to_string(),
        measure(&no_index, &slow_sample),
    ));

    println!("\n{}", latency_table(&results));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, ms)| vec![n.clone(), format!("{ms:.4}")])
        .collect();
    let path = args.out_dir.join("fig14_latency.csv");
    write_series_csv(&path, "method,latency_ms", &rows).expect("write csv");
    println!("wrote {}", path.display());

    let fmdv_vh = results
        .iter()
        .find(|(n, _)| n == "FMDV-VH")
        .map(|(_, ms)| *ms)
        .unwrap_or(f64::NAN);
    let no_idx = results
        .iter()
        .find(|(n, _)| n.contains("no-index"))
        .map(|(_, ms)| *ms)
        .unwrap_or(f64::NAN);
    println!(
        "\nindexed FMDV-VH is {:.0}× faster than scanning the corpus per query",
        no_idx / fmdv_vh
    );
    println!(
        "paper reference: FMDV variants ≈ 10–82 ms; profilers ≈ 6–7 s; \
         no-index FMDV is many orders of magnitude slower."
    );
}
