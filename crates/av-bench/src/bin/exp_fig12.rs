//! Figure 12 — sensitivity of the four FMDV variants to the FPR target r
//! (a), the coverage target m (b), the token-limit τ (c), and the
//! non-conforming tolerance θ (d), on the enterprise benchmark.

use av_bench::{prepare_with, ExpArgs};
use av_core::{FmdvConfig, Variant};
use av_eval::{evaluate_method, write_series_csv, EvalConfig, FmdvValidator};
use av_index::IndexConfig;

const VARIANTS: [Variant; 4] = [
    Variant::Fmdv,
    Variant::FmdvV,
    Variant::FmdvH,
    Variant::FmdvVH,
];

fn eval_point(
    env: &av_bench::Env,
    config: FmdvConfig,
    variant: Variant,
    cfg: &EvalConfig,
) -> (f64, f64) {
    let v = FmdvValidator::new(env.index.clone(), config, variant);
    let r = evaluate_method(&v, &env.benchmark, cfg);
    (r.precision, r.recall)
}

fn main() {
    let args = ExpArgs::parse();
    let env = prepare_with(&args, IndexConfig::default(), None);
    let cfg = EvalConfig {
        recall_sample: args.scale.recall_sample(),
        ..Default::default()
    };
    let mut rows: Vec<Vec<String>> = Vec::new();

    // (a) FPR threshold r.
    println!("Fig 12(a): sensitivity to FPR threshold r");
    for r_target in [0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.1] {
        for variant in VARIANTS {
            let mut c = env.fmdv.clone();
            c.r = r_target;
            let (p, rec) = eval_point(&env, c, variant, &cfg);
            println!(
                "  r={r_target:<5} {:<8} P={p:.3} R={rec:.3}",
                variant.label()
            );
            rows.push(vec![
                "r".into(),
                format!("{r_target}"),
                variant.label().into(),
                format!("{p:.4}"),
                format!("{rec:.4}"),
            ]);
        }
    }

    // (b) Coverage target m — the paper sweeps 0/10/100 on a 7M-column
    // corpus; scale the fractions to ours.
    println!("Fig 12(b): sensitivity to coverage target m");
    let scale_m = |paper_m: f64| -> u64 {
        ((env.index.num_columns as f64) * (paper_m / 7_000_000.0)).ceil() as u64
    };
    for (paper_m, m) in [
        (0.0, 0u64),
        (10.0, scale_m(10.0).max(1)),
        (100.0, scale_m(100.0).max(3)),
    ] {
        for variant in VARIANTS {
            let mut c = env.fmdv.clone();
            c.m = m;
            let (p, rec) = eval_point(&env, c, variant, &cfg);
            println!(
                "  m={paper_m:<4} (ours {m:<3}) {:<8} P={p:.3} R={rec:.3}",
                variant.label()
            );
            rows.push(vec![
                "m".into(),
                format!("{paper_m}"),
                variant.label().into(),
                format!("{p:.4}"),
                format!("{rec:.4}"),
            ]);
        }
    }

    // (c) Token limit τ — requires re-indexing per τ. The paper pairs τ
    // with a drill-down depth (8-5, 11-7, 13-8); we sweep τ itself.
    println!("Fig 12(c): sensitivity to token limit τ (re-indexing per point)");
    for tau in [8usize, 11, 13] {
        let ic = IndexConfig {
            tau,
            ..Default::default()
        };
        let env_tau = prepare_with(&args, ic, None);
        for variant in VARIANTS {
            let mut c = env_tau.fmdv.clone();
            c.max_segment_tokens = tau;
            let (p, rec) = eval_point(&env_tau, c, variant, &cfg);
            println!("  τ={tau:<3} {:<8} P={p:.3} R={rec:.3}", variant.label());
            rows.push(vec![
                "tau".into(),
                format!("{tau}"),
                variant.label().into(),
                format!("{p:.4}"),
                format!("{rec:.4}"),
            ]);
        }
    }

    // (d) Non-conforming tolerance θ (horizontal variants only react).
    println!("Fig 12(d): sensitivity to tolerance θ");
    for theta in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        for variant in [Variant::FmdvH, Variant::FmdvVH] {
            let mut c = env.fmdv.clone();
            c.theta = theta;
            let (p, rec) = eval_point(&env, c, variant, &cfg);
            println!("  θ={theta:<4} {:<8} P={p:.3} R={rec:.3}", variant.label());
            rows.push(vec![
                "theta".into(),
                format!("{theta}"),
                variant.label().into(),
                format!("{p:.4}"),
                format!("{rec:.4}"),
            ]);
        }
    }

    let path = args.out_dir.join("fig12_sensitivity.csv");
    write_series_csv(&path, "knob,value,variant,precision,recall", &rows).expect("write csv");
    println!("\nwrote {}", path.display());
    println!(
        "\npaper reference: r trades precision for recall and FMDV-VH is stable for r ≥ 0.02; \
         insensitive to m; vertical-cut variants insensitive to τ while FMDV/FMDV-H lose recall \
         at τ = 8; insensitive to θ unless θ is very small."
    );
}
