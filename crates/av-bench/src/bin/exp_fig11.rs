//! Figure 11 — case-by-case F1 on 100 sampled cases, FMDV-VH vs the
//! competitive baselines (PWheel, SSIS, Grok, XSystem), sorted by FMDV-VH's
//! F1 so the dominance profile is visible.

use av_baselines::{ColumnValidator, Grok, PottersWheel, Ssis, XSystem};
use av_bench::{prepare_with, ExpArgs};
use av_core::Variant;
use av_eval::{evaluate_method, write_series_csv, EvalConfig, FmdvValidator};
use av_index::IndexConfig;

fn main() {
    let args = ExpArgs::parse();
    let env = prepare_with(&args, IndexConfig::default(), Some(100));
    let cfg = EvalConfig {
        recall_sample: args.scale.recall_sample(),
        ..Default::default()
    };
    let fmdv_vh = FmdvValidator::new(env.index.clone(), env.fmdv.clone(), Variant::FmdvVH);
    let methods: Vec<&dyn ColumnValidator> = vec![
        &fmdv_vh,
        &PottersWheel,
        &Ssis,
        &Grok {
            min_match_frac: 0.99,
        },
        &XSystem {
            min_branch_frac: 0.05,
        },
    ];
    let mut per_method: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for m in methods {
        eprintln!("[fig11] evaluating {}…", m.name());
        let r = evaluate_method(m, &env.benchmark, &cfg);
        per_method.push((
            r.method.clone(),
            r.cases.iter().map(|c| (c.column.clone(), c.f1())).collect(),
        ));
    }
    // Sort cases by FMDV-VH F1 descending (the paper's presentation).
    let mut order: Vec<usize> = (0..per_method[0].1.len()).collect();
    order.sort_by(|&a, &b| {
        per_method[0].1[b]
            .1
            .partial_cmp(&per_method[0].1[a].1)
            .expect("finite F1")
    });
    println!("Figure 11: case-by-case F1 ({} cases)\n", order.len());
    print!("{:<6}", "case");
    for (name, _) in &per_method {
        print!(" {name:>9}");
    }
    println!();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (rank, &i) in order.iter().enumerate() {
        let mut row = vec![rank.to_string()];
        if rank < 25 || rank % 10 == 0 {
            print!("{rank:<6}");
        }
        for (_, cases) in &per_method {
            let f1 = cases[i].1;
            if rank < 25 || rank % 10 == 0 {
                print!(" {f1:>9.2}");
            }
            row.push(format!("{f1:.4}"));
        }
        if rank < 25 || rank % 10 == 0 {
            println!();
        }
        rows.push(row);
    }
    let header = std::iter::once("case".to_string())
        .chain(per_method.iter().map(|(n, _)| n.clone()))
        .collect::<Vec<_>>()
        .join(",");
    let path = args.out_dir.join("fig11_case_by_case.csv");
    write_series_csv(&path, &header, &rows).expect("write csv");
    // Dominance summary.
    let wins = order
        .iter()
        .filter(|&&i| {
            let best_baseline = per_method[1..]
                .iter()
                .map(|(_, c)| c[i].1)
                .fold(0.0f64, f64::max);
            per_method[0].1[i].1 >= best_baseline
        })
        .count();
    println!(
        "\nFMDV-VH ties-or-beats the best baseline on {wins}/{} cases",
        order.len()
    );
    println!("wrote {}", path.display());
    println!("\npaper reference: FMDV dominates other methods across the 100 sampled cases.");
}
