//! Figure 10 — precision/recall of all methods on the enterprise (a) or
//! government (b) benchmark, plus the FD-UB and AD-UB recall upper bounds.
//!
//! Run with `--profile enterprise` (default) or `--profile government`.

use av_baselines::{ad_recall_upper_bound, common_patterns, fd_recall_upper_bound};
use av_bench::{full_roster, prepare, ExpArgs};
use av_eval::{evaluate_method, precision_recall_table, write_results_csv, EvalConfig};

fn main() {
    let args = ExpArgs::parse();
    let env = prepare(&args);
    let eligible = env.benchmark.eligible_cases().count();
    println!(
        "Figure 10 ({}): {} benchmark cases, {} pattern-eligible\n",
        args.profile.name,
        env.benchmark.len(),
        eligible
    );
    let cfg = EvalConfig {
        recall_sample: args.scale.recall_sample(),
        ..Default::default()
    };
    let mut results = Vec::new();
    for validator in full_roster(&env) {
        eprintln!("[fig10] evaluating {}…", validator.name());
        let r = evaluate_method(validator.as_ref(), &env.benchmark, &cfg);
        println!(
            "  {:<14} precision {:.3}  recall {:.3}  F1 {:.3}",
            r.method,
            r.precision,
            r.recall,
            r.f1()
        );
        results.push(r);
    }
    println!("\n{}", precision_recall_table(&results));

    // Upper bounds (assumed perfect precision, §5.2).
    let case_names: Vec<&str> = env
        .benchmark
        .eligible_cases()
        .map(|c| c.column.name.as_str())
        .collect();
    let fd_ub = fd_recall_upper_bound(&env.corpus, &case_names);
    let common = common_patterns(&env.corpus, env.fmdv.m as usize);
    let queries: Vec<Vec<String>> = env
        .benchmark
        .eligible_cases()
        .map(|c| c.train.clone())
        .collect();
    let ad_ub = ad_recall_upper_bound(&common, &queries);
    println!("FD-UB  (recall upper bound, precision := 1): {fd_ub:.3}");
    println!("AD-UB  (recall upper bound, precision := 1): {ad_ub:.3}");

    let path = args
        .out_dir
        .join(format!("fig10_{}.csv", args.profile.name));
    write_results_csv(&path, &results).expect("write csv");
    println!("\nwrote {}", path.display());
    println!(
        "\npaper reference (enterprise): FMDV-VH ≈ (0.96 precision, 0.88 recall), \
         ordering FMDV-VH > FMDV-H > FMDV-V > FMDV > PWheel/SM-I-1 > others; \
         TFDV/Deequ low precision."
    );
}
