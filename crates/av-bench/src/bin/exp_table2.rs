//! Table 2 — programmatic evaluation vs. (simulated) hand-curated ground
//! truth, for FMDV-VH on the enterprise benchmark.
//!
//! The paper manually labeled 1000 cases to (1) remove test values that do
//! not belong to a column and (2) stop counting same-domain columns as
//! recall losses. Our generator records each column's generating domain and
//! its ideal pattern, which plays the role of those hand labels.

use av_bench::{prepare, ExpArgs};
use av_core::Variant;
use av_eval::{evaluate_method, write_series_csv, EvalConfig, FmdvValidator};

fn main() {
    let args = ExpArgs::parse();
    let env = prepare(&args);
    let cfg = EvalConfig {
        recall_sample: args.scale.recall_sample(),
        ..Default::default()
    };
    let validator = FmdvValidator::new(env.index.clone(), env.fmdv.clone(), Variant::FmdvVH);
    let r = evaluate_method(&validator, &env.benchmark, &cfg);

    println!("Table 2: programmatic vs ground-truth evaluation (FMDV-VH)\n");
    println!(
        "{:<28} {:>10} {:>8}",
        "evaluation method", "precision", "recall"
    );
    println!("{}", "-".repeat(48));
    println!(
        "{:<28} {:>10.3} {:>8.3}",
        "Programmatic evaluation", r.precision, r.recall
    );
    println!(
        "{:<28} {:>10.3} {:>8.3}",
        "Ground-truth labels", r.precision_gt, r.recall_gt
    );
    let path = args.out_dir.join("table2_groundtruth.csv");
    write_series_csv(
        &path,
        "evaluation,precision,recall",
        &[
            vec![
                "programmatic".into(),
                format!("{:.4}", r.precision),
                format!("{:.4}", r.recall),
            ],
            vec![
                "ground-truth".into(),
                format!("{:.4}", r.precision_gt),
                format!("{:.4}", r.recall_gt),
            ],
        ],
    )
    .expect("write csv");
    println!("\nwrote {}", path.display());
    println!(
        "\npaper reference: programmatic (0.961, 0.880) vs hand-curated (0.963, 0.915) — \
         ground-truth adjustment should only improve both numbers."
    );
    assert!(
        r.precision_gt + 1e-9 >= r.precision && r.recall_gt + 1e-9 >= r.recall,
        "ground-truth adjustments must not lower scores"
    );
}
