//! Ablations called out in DESIGN.md (design choices the paper discusses
//! but does not plot):
//!
//! * **CMDV vs FMDV** (§2.3): minimizing coverage instead of FPR — the
//!   paper reports "the conservative FMDV is more effective in practice".
//! * **Optimistic vs pessimistic vertical aggregation** (§3): `max` instead
//!   of `sum` over segment FPRs — "we find this to be less effective".
//! * **Fisher's exact vs χ²-Yates** (§4): "little difference".

use av_baselines::ColumnValidator;
use av_bench::{prepare, ExpArgs};
use av_core::Variant;
use av_eval::{
    evaluate_method, precision_recall_table, write_results_csv, EvalConfig, FmdvValidator,
};
use av_stats::HomogeneityTest;

fn main() {
    let args = ExpArgs::parse();
    let env = prepare(&args);
    let cfg = EvalConfig {
        recall_sample: args.scale.recall_sample(),
        ..Default::default()
    };
    let mut results = Vec::new();

    // 1. Objective: FMDV vs CMDV.
    for (variant, label) in [(Variant::Fmdv, "FMDV"), (Variant::Cmdv, "CMDV")] {
        let v = FmdvValidator::new(env.index.clone(), env.fmdv.clone(), variant)
            .with_label(format!("{label} (objective)"));
        eprintln!("[ablation] {}…", v.name());
        results.push(evaluate_method(&v, &env.benchmark, &cfg));
    }

    // 2. Vertical aggregation: sum (pessimistic) vs max (optimistic).
    for (optimistic, label) in [(false, "VH sum-FPR"), (true, "VH max-FPR")] {
        let mut c = env.fmdv.clone();
        c.optimistic_vertical = optimistic;
        let v =
            FmdvValidator::new(env.index.clone(), c, Variant::FmdvVH).with_label(label.to_string());
        eprintln!("[ablation] {}…", v.name());
        results.push(evaluate_method(&v, &env.benchmark, &cfg));
    }

    // 3. Distributional test: Fisher vs χ² with Yates.
    for (test, label) in [
        (HomogeneityTest::FisherExact, "VH Fisher"),
        (HomogeneityTest::ChiSquaredYates, "VH chi2-Yates"),
    ] {
        let mut c = env.fmdv.clone();
        c.test = test;
        let v =
            FmdvValidator::new(env.index.clone(), c, Variant::FmdvVH).with_label(label.to_string());
        eprintln!("[ablation] {}…", v.name());
        results.push(evaluate_method(&v, &env.benchmark, &cfg));
    }

    println!("Ablation study\n");
    println!("{}", precision_recall_table(&results));
    let path = args.out_dir.join("ablation.csv");
    write_results_csv(&path, &results).expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "\nexpected shapes: FMDV ≥ CMDV on F1; sum-FPR ≥ max-FPR on precision; \
         Fisher ≈ chi2-Yates."
    );
}
