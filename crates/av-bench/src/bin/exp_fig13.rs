//! Figure 13 — distribution of patterns in the offline index: (a) by number
//! of tokens, (b) by how many columns follow each pattern (the power-law
//! "head domains vs junk tail" plot). Also prints the high-coverage/low-FPR
//! head patterns — the Fig. 3-style common domains of the lake.

use av_bench::{prepare_with, ExpArgs};
use av_eval::write_series_csv;
use av_index::IndexConfig;

fn main() {
    let args = ExpArgs::parse();
    let index_config = IndexConfig {
        keep_patterns: true,
        ..Default::default()
    };
    let env = prepare_with(&args, index_config, Some(10));

    // (a) by token count.
    println!("Fig 13(a): pattern distribution by token count");
    let by_len = env.index.token_length_histogram();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cumulative = 0u64;
    for (len, count) in &by_len {
        cumulative += count;
        println!("  {len:>2} tokens: {count:>9} patterns (cumulative {cumulative})");
        rows.push(vec![
            len.to_string(),
            count.to_string(),
            cumulative.to_string(),
        ]);
    }
    write_series_csv(
        args.out_dir.join("fig13a_by_tokens.csv"),
        "tokens,patterns,cumulative",
        &rows,
    )
    .expect("write csv");

    // (b) by coverage.
    println!("\nFig 13(b): pattern distribution by column frequency");
    let by_cov = env.index.coverage_histogram(200);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cumulative = 0u64;
    for (cov, count) in &by_cov {
        cumulative += count;
        rows.push(vec![
            cov.to_string(),
            count.to_string(),
            cumulative.to_string(),
        ]);
    }
    let head: Vec<&(u64, u64)> = by_cov.iter().take(10).collect();
    for (cov, count) in head {
        println!("  followed by {cov:>4} columns: {count:>9} patterns");
    }
    println!("  … ({} coverage buckets total)", by_cov.len());
    write_series_csv(
        args.out_dir.join("fig13b_by_coverage.csv"),
        "coverage,patterns,cumulative",
        &rows,
    )
    .expect("write csv");

    // Power-law check: the tail (cov ≤ 2) should dwarf the head.
    let tail: u64 = by_cov.iter().filter(|(c, _)| *c <= 2).map(|(_, n)| n).sum();
    let total: u64 = by_cov.iter().map(|(_, n)| n).sum();
    println!(
        "\ntail share (patterns followed by ≤2 columns): {:.1}%",
        100.0 * tail as f64 / total as f64
    );

    // Head patterns — the common data domains of the lake (Fig. 3).
    let min_cov = (env.index.num_columns / 100).max(5);
    println!("\nhead domain patterns (coverage ≥ {min_cov}, FPR ≤ 1%):");
    for (pattern, stats) in env.index.head_patterns(min_cov, 0.01).into_iter().take(20) {
        println!(
            "  cov {:>5}  fpr {:>7.4}%  {}",
            stats.cov,
            stats.fpr * 100.0,
            pattern
        );
    }
    println!(
        "\npaper reference: patterns spread over token lengths with 5–7 the most common; \
         coverage distribution is power-law-like — a few head domains, a huge tail."
    );
}
