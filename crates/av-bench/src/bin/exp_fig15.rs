//! Figure 15 — impact of schema-drift on the eleven Kaggle-style tasks,
//! with and without data validation.
//!
//! For each task: train GBDT on the original training data; score (1) the
//! clean test data (normalized to 100%), (2) the test data with two
//! categorical columns silently swapped, and (3) check whether an
//! FMDV-inferred rule per column catches the swap (in which case the
//! pipeline would halt and fix the drift instead of silently degrading).

use av_bench::{prepare_with, ExpArgs};
use av_core::{AutoValidate, Variant};
use av_corpus::kaggle_tasks;
use av_eval::write_series_csv;
use av_index::IndexConfig;
use av_ml::{average_precision, r2_score, CategoryEncoder, Gbdt, GbdtConfig};

/// Train on a task's training split and score a given test split.
fn train_and_score(task: &av_corpus::KaggleTask, test_cats: &[Vec<String>]) -> f64 {
    // Per-position categorical encoders — the pipeline the paper's case
    // study assumes, where a silent positional swap scrambles encodings.
    let encoders: Vec<CategoryEncoder> = task
        .cat_train
        .iter()
        .map(|col| CategoryEncoder::fit(col))
        .collect();
    let mut features: Vec<Vec<f64>> = Vec::new();
    for (enc, col) in encoders.iter().zip(&task.cat_train) {
        features.push(enc.encode_column(col));
    }
    features.extend(task.num_train.iter().cloned());
    let config = if task.is_classification {
        GbdtConfig::classification()
    } else {
        GbdtConfig::default()
    };
    let model = Gbdt::train(&features, &task.y_train, config);
    let mut test_features: Vec<Vec<f64>> = Vec::new();
    for (enc, col) in encoders.iter().zip(test_cats) {
        test_features.push(enc.encode_column(col));
    }
    test_features.extend(task.num_test.iter().cloned());
    let preds = model.predict(&test_features);
    if task.is_classification {
        average_precision(&task.y_test, &preds)
    } else {
        r2_score(&task.y_test, &preds)
    }
}

fn main() {
    let args = ExpArgs::parse();
    // The validation rules come from the enterprise lake's index — the
    // pipeline's corpus — exactly as deployed validation would.
    let env = prepare_with(&args, IndexConfig::default(), Some(10));
    let engine = AutoValidate::new(&env.index, env.fmdv.clone());
    let (n_train, n_test) = (600usize, 300usize);
    let tasks = kaggle_tasks(n_train, n_test, args.seed);

    println!("Figure 15: schema-drift impact on ML quality, with and without validation\n");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>10} {:>12}",
        "task", "kind", "no-drift", "drifted", "rel.", "validation"
    );
    println!("{}", "-".repeat(72));
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut detected_count = 0usize;
    for task in &tasks {
        let clean = train_and_score(task, &task.cat_test);
        let drifted_task = task.with_swapped_test_cats(0, 1);
        let drifted = train_and_score(task, &drifted_task.cat_test);
        let rel = if clean.abs() > 1e-9 {
            drifted / clean
        } else {
            0.0
        };
        // Validation: infer a rule per categorical column from training
        // data; flag if any column's post-drift test data trips its rule.
        let mut detected = false;
        for (i, train_col) in task.cat_train.iter().enumerate() {
            if let Ok(rule) = engine.infer(train_col, Variant::FmdvVH) {
                if rule.validate(&drifted_task.cat_test[i]).flagged {
                    detected = true;
                }
            }
        }
        if detected {
            detected_count += 1;
        }
        println!(
            "{:<14} {:>6} {:>12.3} {:>12.3} {:>9.0}% {:>12}",
            task.name,
            if task.is_classification { "clf" } else { "reg" },
            clean,
            drifted,
            rel * 100.0,
            if detected { "DETECTED" } else { "missed" }
        );
        rows.push(vec![
            task.name.clone(),
            if task.is_classification {
                "classification"
            } else {
                "regression"
            }
            .into(),
            format!("{clean:.4}"),
            format!("{drifted:.4}"),
            format!("{rel:.4}"),
            detected.to_string(),
            task.swap_is_detectable(0, 1).to_string(),
        ]);
    }
    println!(
        "\nvalidation detected schema-drift in {detected_count} / {} tasks",
        tasks.len()
    );
    let path = args.out_dir.join("fig15_kaggle.csv");
    write_series_csv(
        &path,
        "task,kind,score_clean,score_drifted,relative,detected,syntactically_detectable",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "\npaper reference: quality drops up to 78% under drift; FMDV detects 8/11 tasks \
         (all except WestNile, HomeDepot, WalmartTrips — same-format column pairs) with \
         no false positives."
    );
}
