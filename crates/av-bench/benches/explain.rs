//! Observability cost benchmarks: what the non-conformance `explain` cold
//! path costs relative to plain `check()`, and what per-rule telemetry
//! recording adds to the conforming validation hot path.
//!
//! The design contract being verified: `explain` runs only *after* a
//! failed check (so it may allocate), and telemetry on the conforming path
//! is a handful of relaxed atomic increments per **column** validation —
//! well under 5% of a realistic batch. Measured numbers are recorded as
//! Point 5 in `crates/av-bench/PERF.md`.

use av_core::{AutoValidate, FmdvConfig, ValidationRule, Validator, Variant};
use av_corpus::{generate_lake, Column, LakeProfile};
use av_index::{IndexConfig, PatternIndex};
use av_service::{ServiceConfig, ValidationService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn train_column() -> Vec<String> {
    (0..100)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect()
}

/// A fully conforming 1000-value batch — the steady-state feed.
fn conforming_batch() -> Vec<String> {
    (0..1000)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 11) % 60, (i * 3) % 60))
        .collect()
}

/// A 1000-value batch with ~5% drifted values — the incident shape.
fn drifting_batch() -> Vec<String> {
    (0..1000)
        .map(|i| {
            if i % 20 == 19 {
                format!("drift-{i}")
            } else {
                format!("{:02}:{:02}:{:02}", i % 24, (i * 11) % 60, (i * 3) % 60)
            }
        })
        .collect()
}

fn fmdv_rule() -> ValidationRule {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(1200), 7);
    let cols: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&cols, &IndexConfig::default());
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
    engine
        .infer(train_column(), Variant::FmdvVH)
        .expect("FMDV-VH rule for the time column")
}

/// `explain` vs `check` on single values, and a 5%-drift batch scanned
/// check-only vs check + explain-on-failure.
fn bench_explain_cold_path(c: &mut Criterion) {
    let fmdv = fmdv_rule();
    let batch = drifting_batch();
    let mut group = c.benchmark_group("explain");
    group.bench_function("check drifted value", |b| {
        b.iter(|| black_box(fmdv.check(black_box("drift-42"))))
    });
    group.bench_function("explain drifted value", |b| {
        b.iter(|| black_box(fmdv.explain(black_box("drift-42"))))
    });
    group.bench_function("batch 1000 (5% drift), check only", |b| {
        b.iter(|| {
            let mut bad = 0usize;
            for v in &batch {
                if !fmdv.check(black_box(v)).is_conform() {
                    bad += 1;
                }
            }
            black_box(bad)
        })
    });
    group.bench_function("batch 1000 (5% drift), check + explain failures", |b| {
        b.iter(|| {
            let mut bad = 0usize;
            for v in &batch {
                if !fmdv.check(black_box(v)).is_conform() {
                    bad += 1;
                    black_box(fmdv.explain(v));
                }
            }
            black_box(bad)
        })
    });
    group.finish();
}

/// The telemetry tax on the conforming path: the raw per-column `record`
/// cost, and the full service `validate` op (catalog lookup + batch check
/// + telemetry) against the bare validator on the same batch.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let service = ValidationService::new(ServiceConfig::default());
    let lake = generate_lake(&LakeProfile::tiny(), 7);
    let columns: Vec<Column> = lake.columns().cloned().collect();
    service.ingest(&columns).expect("ingest");
    service
        .infer_rule("time", &train_column(), None)
        .expect("catalog rule");
    let fmdv = fmdv_rule();
    let batch = conforming_batch();

    let mut group = c.benchmark_group("telemetry");
    let telemetry = service.telemetry();
    let slot = telemetry.rule("time");
    group.bench_function("record one column validation", |b| {
        b.iter(|| slot.record(black_box(telemetry.epoch()), 1000, 0, false))
    });
    group.bench_function("rule slot lookup + record", |b| {
        b.iter(|| {
            telemetry
                .rule(black_box("time"))
                .record(telemetry.epoch(), 1000, 0, false)
        })
    });
    group.bench_function("validator batch 1000 conforming (no telemetry)", |b| {
        b.iter(|| black_box(fmdv.validate_batch(batch.iter().map(String::as_str))))
    });
    group.bench_function("service validate 1000 conforming (telemetry on)", |b| {
        b.iter(|| black_box(service.validate(black_box("time"), &batch).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_explain_cold_path, bench_telemetry_overhead
}
criterion_main!(benches);
