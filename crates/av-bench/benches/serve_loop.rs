//! Event-loop serving benchmark: concurrent connections × pipelined
//! request throughput over real loopback TCP. Measured numbers are
//! recorded as Point 8 in `crates/av-bench/PERF.md`.
//!
//! One serve loop (the production `serve_listener` reactor + worker
//! pool) is shared across all samples; each iteration opens `conns`
//! connections, pipelines `FRAMES` classify requests down each, drains
//! every response, and closes. Throughput is reported per request, so
//! the per-connection overhead (accept, register, state machine, close)
//! is amortized exactly as it is in production.

use av_service::{serve_listener, std_listener, ServiceConfig, ValidationService};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Pipelined requests per connection per round.
const FRAMES: usize = 8;

fn start_server() -> (Arc<ValidationService>, SocketAddr) {
    let service = Arc::new(ValidationService::new(ServiceConfig::default()));
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_listener(service, std_listener(listener).unwrap()));
    }
    (service, addr)
}

/// One measured round: `conns` live connections, `FRAMES` pipelined
/// frames each, every response drained.
fn round(addr: SocketAddr, conns: usize) {
    let mut open = Vec::with_capacity(conns);
    for c in 0..conns {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut burst = String::new();
        for i in 0..FRAMES {
            burst.push_str(&format!("{{\"op\":\"classify\",\"value\":\"b{c}-{i}\"}}\n"));
        }
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(burst.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        open.push(stream);
    }
    for stream in open {
        let mut reader = BufReader::new(stream);
        let mut answered = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            assert!(line.contains("\"ok\":true"), "{line}");
            answered += 1;
        }
        assert_eq!(answered, FRAMES);
    }
}

fn bench_serve_loop(c: &mut Criterion) {
    let (service, addr) = start_server();
    let mut group = c.benchmark_group("serve_loop");
    group.sample_size(10);
    for conns in [1usize, 16, 64, 128] {
        group.throughput(Throughput::Elements((conns * FRAMES) as u64));
        group.bench_function(format!("{conns} conns x {FRAMES} pipelined"), |b| {
            b.iter(|| round(addr, conns))
        });
    }
    group.finish();
    service.request_shutdown();
}

criterion_group!(benches, bench_serve_loop);
criterion_main!(benches);
