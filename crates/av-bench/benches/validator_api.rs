//! Micro-benchmarks for the unified `Validator` API: single-value `check()`
//! latency and batch `validate_batch` throughput, FMDV-VH vs the grok
//! baseline, both dispatched statically and through `dyn Validator` (the
//! service's dispatch mode).
//!
//! Measured numbers are recorded as the perf trajectory in
//! `crates/av-bench/PERF.md`.

use av_baselines::{baseline_by_name, InferredRule};
use av_core::{AutoValidate, FmdvConfig, ValidationRule, Validator, Variant};
use av_corpus::{generate_lake, Column, LakeProfile};
use av_index::{IndexConfig, PatternIndex};
use av_pattern::{matches, parse, CompiledPattern, MatchScratch};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn train_column() -> Vec<String> {
    (0..100)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect()
}

/// A 1000-value future batch: mostly conforming, ~5% drift.
fn future_batch() -> Vec<String> {
    (0..1000)
        .map(|i| {
            if i % 20 == 19 {
                format!("drift-{i}")
            } else {
                format!("{:02}:{:02}:{:02}", i % 24, (i * 11) % 60, (i * 3) % 60)
            }
        })
        .collect()
}

fn rules() -> (ValidationRule, InferredRule) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(1200), 7);
    let cols: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&cols, &IndexConfig::default());
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
    let train = train_column();
    let fmdv = engine
        .infer(&train, Variant::FmdvVH)
        .expect("FMDV-VH rule for the time column");
    let refs: Vec<&str> = train.iter().map(String::as_str).collect();
    let grok = baseline_by_name("grok")
        .expect("grok baseline")
        .infer(&refs)
        .expect("grok adopts the TIME type");
    (fmdv, grok)
}

fn bench_check_latency(c: &mut Criterion) {
    let (fmdv, grok) = rules();
    let mut group = c.benchmark_group("check");
    group.bench_function("FMDV-VH conforming", |b| {
        b.iter(|| black_box(fmdv.check(black_box("09:07:32"))))
    });
    group.bench_function("FMDV-VH drifted", |b| {
        b.iter(|| black_box(fmdv.check(black_box("drift-42"))))
    });
    group.bench_function("grok conforming", |b| {
        b.iter(|| black_box(grok.check(black_box("09:07:32"))))
    });
    group.bench_function("grok drifted", |b| {
        b.iter(|| black_box(grok.check(black_box("drift-42"))))
    });
    // Dyn dispatch, as the validation service performs it.
    let dyn_fmdv: &dyn Validator = &fmdv;
    group.bench_function("FMDV-VH via dyn Validator", |b| {
        b.iter(|| black_box(dyn_fmdv.check(black_box("09:07:32"))))
    });
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let (fmdv, grok) = rules();
    let batch = future_batch();
    let mut group = c.benchmark_group("validate_batch 1000 values");
    group.bench_function("FMDV-VH", |b| {
        b.iter(|| black_box(fmdv.validate_batch(batch.iter().map(String::as_str))))
    });
    group.bench_function("grok", |b| {
        b.iter(|| black_box(grok.validate_batch(batch.iter().map(String::as_str))))
    });
    let dyn_fmdv: &dyn Validator = &fmdv;
    group.bench_function("FMDV-VH via dyn Validator", |b| {
        b.iter(|| black_box((&dyn_fmdv).validate_batch(batch.iter().map(String::as_str))))
    });
    group.finish();
}

/// Compiled vs interpreted matching on the same patterns: the fixed-width
/// FMDV-VH shape (deterministic program) and a variadic date-time shape
/// (backtracking program), each on a conforming and a drifted value.
fn bench_matcher_compiled_vs_reference(c: &mut Criterion) {
    let fixed = parse("<digit>{2}:<digit>{2}:<digit>{2}").expect("fixed pattern");
    let variadic =
        parse("<digit>+/<digit>{2}/<digit>{4} <digit>+:<digit>{2}:<digit>{2} <letter>{2}")
            .expect("variadic pattern");
    let fixed_c = CompiledPattern::compile(&fixed);
    let variadic_c = CompiledPattern::compile(&variadic);
    let mut group = c.benchmark_group("matcher");
    group.bench_function("reference fixed conforming", |b| {
        b.iter(|| black_box(matches(black_box(&fixed), black_box("09:07:32"))))
    });
    group.bench_function("compiled fixed conforming", |b| {
        b.iter(|| black_box(fixed_c.matches(black_box("09:07:32"))))
    });
    group.bench_function("reference fixed drifted", |b| {
        b.iter(|| black_box(matches(black_box(&fixed), black_box("drift-42"))))
    });
    group.bench_function("compiled fixed drifted", |b| {
        b.iter(|| black_box(fixed_c.matches(black_box("drift-42"))))
    });
    group.bench_function("reference variadic conforming", |b| {
        b.iter(|| {
            black_box(matches(
                black_box(&variadic),
                black_box("9/07/2019 12:01:32 PM"),
            ))
        })
    });
    group.bench_function("compiled variadic conforming", |b| {
        b.iter(|| black_box(variadic_c.matches(black_box("9/07/2019 12:01:32 PM"))))
    });
    let mut scratch = MatchScratch::default();
    group.bench_function("compiled variadic conforming (scratch)", |b| {
        b.iter(|| {
            black_box(variadic_c.matches_with(black_box("9/07/2019 12:01:32 PM"), &mut scratch))
        })
    });
    group.finish();
}

/// One-time compile cost — the price paid at inference/load time to make
/// every later check allocation-free.
fn bench_compile_cost(c: &mut Criterion) {
    let fixed = parse("<digit>{2}:<digit>{2}:<digit>{2}").expect("fixed pattern");
    let variadic =
        parse("<digit>+/<digit>{2}/<digit>{4} <digit>+:<digit>{2}:<digit>{2} <letter>{2}")
            .expect("variadic pattern");
    let mut group = c.benchmark_group("compile");
    group.bench_function("fixed 5-token pattern", |b| {
        b.iter(|| black_box(CompiledPattern::compile(black_box(&fixed))))
    });
    group.bench_function("variadic 13-token pattern", |b| {
        b.iter(|| black_box(CompiledPattern::compile(black_box(&variadic))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_check_latency, bench_batch_throughput,
        bench_matcher_compiled_vs_reference, bench_compile_cost
}
criterion_main!(benches);
