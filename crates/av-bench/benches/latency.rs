//! Criterion micro-benchmarks for online inference latency (Fig. 14's
//! measurement at micro scale): per-variant rule inference on a prebuilt
//! index, plus pattern matching and hypothesis enumeration.

use av_core::{AutoValidate, FmdvConfig, Variant};
use av_corpus::{generate_lake, Column, LakeProfile};
use av_index::{IndexConfig, PatternIndex};
use av_pattern::{hypothesis_space, matches, parse, PatternConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (PatternIndex, Vec<String>, Vec<String>) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(1500), 7);
    let cols: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&cols, &IndexConfig::default());
    let times: Vec<String> = (0..100)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect();
    let composite: Vec<String> = (0..100)
        .map(|i| {
            format!(
                "{}-{:02}-{:02}|{:02}:{:02}:{:02}",
                2010 + (i % 20),
                (i % 12) + 1,
                (i % 28) + 1,
                i % 24,
                (i * 7) % 60,
                (i * 13) % 60
            )
        })
        .collect();
    (index, times, composite)
}

fn bench_inference(c: &mut Criterion) {
    let (index, times, composite) = setup();
    let config = FmdvConfig::scaled_for_corpus(index.num_columns);
    let engine = AutoValidate::new(&index, config);
    let mut group = c.benchmark_group("infer");
    for variant in [Variant::Fmdv, Variant::FmdvH] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| black_box(engine.infer(black_box(&times), variant)))
        });
    }
    for variant in [Variant::FmdvV, Variant::FmdvVH] {
        group.bench_function(format!("{} composite", variant.label()), |b| {
            b.iter(|| black_box(engine.infer(black_box(&composite), variant)))
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let (_, times, composite) = setup();
    let pattern = parse("<digit>{2}:<digit>{2}:<digit>{2}").unwrap();
    c.bench_function("match 100 values", |b| {
        b.iter(|| {
            black_box(
                times
                    .iter()
                    .filter(|v| matches(black_box(&pattern), v))
                    .count(),
            )
        })
    });
    let cfg = PatternConfig::default();
    c.bench_function("hypothesis_space narrow", |b| {
        b.iter(|| black_box(hypothesis_space(black_box(&times), &cfg).len()))
    });
    c.bench_function("hypothesis_space composite", |b| {
        b.iter(|| black_box(hypothesis_space(black_box(&composite), &cfg).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference, bench_primitives
}
criterion_main!(benches);
