//! Criterion benchmarks for the offline stage: corpus indexing throughput
//! (the paper's 7M-column / 3-hour cluster job, at laptop scale) and
//! per-column pattern profiling.

use av_corpus::{generate_lake, Column, LakeProfile};
use av_index::{IndexConfig, PatternIndex};
use av_pattern::{column_pattern_profile, PatternConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(500), 11);
    let cols: Vec<&Column> = corpus.columns().collect();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cols.len() as u64));
    for tau in [8usize, 13] {
        let config = IndexConfig {
            tau,
            ..Default::default()
        };
        group.bench_function(format!("tau{tau}_500cols"), |b| {
            b.iter(|| black_box(PatternIndex::build(black_box(&cols), &config).len()))
        });
    }
    group.finish();
}

fn bench_profile_column(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(300), 13);
    let col = corpus
        .columns()
        .find(|c| c.len() >= 40)
        .expect("a sizable column");
    let cfg = PatternConfig::default();
    c.bench_function("column_pattern_profile", |b| {
        b.iter(|| black_box(column_pattern_profile(black_box(&col.values), &cfg, 13).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_index_build, bench_profile_column
}
criterion_main!(benches);
