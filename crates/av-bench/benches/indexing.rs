//! Criterion benchmarks for per-column pattern profiling: the streaming
//! fingerprint path the indexer runs versus the materializing wrapper.
//! (Corpus-level build throughput lives in the `index_build` bench.)

use av_corpus::{generate_lake, LakeProfile};
use av_pattern::{column_pattern_profile, stream_column_profile, EnumScratch, PatternConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_profile_column(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(300), 13);
    let col = corpus
        .columns()
        .find(|c| c.len() >= 40)
        .expect("a sizable column");
    let cfg = PatternConfig::default();
    c.bench_function("column_pattern_profile", |b| {
        b.iter(|| black_box(column_pattern_profile(black_box(&col.values), &cfg, 13).len()))
    });
    let mut scratch = EnumScratch::default();
    c.bench_function("stream_column_profile", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let mut sum = 0u64;
            stream_column_profile(
                black_box(&col.values),
                &cfg,
                13,
                &mut scratch,
                |sp, frac| {
                    n += 1;
                    sum = sum.wrapping_add(sp.fingerprint ^ frac.to_bits());
                },
            );
            black_box((n, sum))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_profile_column
}
criterion_main!(benches);
