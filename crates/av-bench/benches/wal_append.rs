//! The `wal_append` group: durable-mode write-path overhead.
//!
//! Durable mode adds two costs to every mutating op: encoding the op
//! into a WAL record and appending the CRC-framed record to the active
//! segment (plus an fsync on real disks). The benches isolate both
//! halves and then measure the end-to-end toll on the service's ingest
//! path:
//!
//! * `append_256b` / `append_16k` — raw framed appends on in-memory
//!   storage: framing + CRC + segment accounting, no fsync.
//! * `ingest_plain_*` vs `ingest_durable_*` — the same batch through a
//!   plain service and a durable one on in-memory storage; the gap is
//!   the WAL encode+append toll on ingest (PERF.md Point 7 targets
//!   <10%). The toll is a per-op cost proportional to the delta's size,
//!   so it is benched at two batch sizes: profiling work grows faster
//!   than delta size, shrinking the relative overhead for real batches.
//! * `checkpoint_*` — ingest-plus-incremental-checkpoint for a narrow
//!   batch (touches a few shards) vs a diverse one (touches most), plus
//!   the all-shards-reused floor: checkpoint cost must track touched
//!   shards, not index size.
//! * `append_fsync_os` — a real-disk append including the fsync, the
//!   physical floor for per-op durable latency. Off by default (CI smoke
//!   keeps I/O out); opt in with `AV_WAL_BENCH_FSYNC=1`.

use av_corpus::{generate_lake, Column, ColumnMeta, LakeProfile};
use av_durable::{MemStorage, OsStorage, Storage, Wal, WalConfig};
use av_service::{ServiceConfig, ValidationService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

fn mem_wal(segment_bytes: u64) -> Wal {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    storage.create_dir_all(&PathBuf::from("/wal")).unwrap();
    Wal::create(
        storage,
        PathBuf::from("/wal"),
        WalConfig { segment_bytes },
        1,
    )
    .unwrap()
}

fn batch(scale: usize) -> Vec<Column> {
    generate_lake(&LakeProfile::tiny().scaled(scale), 29)
        .columns()
        .cloned()
        .collect()
}

fn enum_column(name: &str, vocab: &[&str], rows: usize) -> Column {
    Column {
        name: name.to_string(),
        values: (0..rows)
            .map(|i| vocab[i % vocab.len()].to_string())
            .collect(),
        meta: ColumnMeta::machine("wal-bench", None),
    }
}

fn durable_mem_service(checkpoint_every: u64) -> ValidationService {
    let mut config = ServiceConfig::durable(PathBuf::from("/data"));
    config.storage = Arc::new(MemStorage::new());
    config.durability.checkpoint_every_records = checkpoint_every;
    ValidationService::open(config).unwrap()
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);

    for (label, len) in [("append_256b", 256usize), ("append_16k", 16 << 10)] {
        let payload = vec![0xabu8; len];
        let mut wal = mem_wal(64 << 20);
        group.bench_function(label, |b| {
            b.iter(|| black_box(wal.append(black_box(&payload)).unwrap()))
        });
    }

    // End-to-end: the same ingest batch with and without the WAL in the
    // write path (in-memory storage, so the gap is encode+append work).
    // `checkpoint_every = 0` benches the steady-state append path alone.
    for (label, scale) in [("tiny8", 8usize), ("lake48", 48)] {
        let columns = batch(scale);
        let plain = ValidationService::new(ServiceConfig::default());
        group.bench_function(format!("ingest_plain_{label}"), |b| {
            b.iter(|| black_box(plain.ingest(black_box(&columns)).unwrap().total_patterns))
        });
        let durable = durable_mem_service(0);
        group.bench_function(format!("ingest_durable_{label}"), |b| {
            b.iter(|| black_box(durable.ingest(black_box(&columns)).unwrap().total_patterns))
        });
    }

    // Incremental checkpoint cost tracks *touched* shards: a narrow
    // batch dirties a handful, a diverse one dirties most, and with
    // nothing new every shard file is reused.
    let narrow = vec![
        enum_column("status", &["OK", "RETRY", "FAIL"], 90),
        enum_column("level", &["INFO", "WARN", "ERROR", "DEBUG"], 80),
    ];
    let diverse = batch(4);
    let base = batch(64);
    for (label, step) in [("narrow", &narrow), ("diverse", &diverse)] {
        let service = durable_mem_service(0);
        service.ingest(&base).unwrap();
        service.persist().unwrap();
        group.bench_function(format!("checkpoint_after_{label}"), |b| {
            b.iter(|| {
                service.ingest(black_box(step)).unwrap();
                service.persist().unwrap();
                black_box(service.durability().unwrap().checkpoint_generation)
            })
        });
    }
    let service = durable_mem_service(0);
    service.ingest(&base).unwrap();
    service.persist().unwrap();
    group.bench_function("checkpoint_reuse_all", |b| {
        b.iter(|| {
            service.persist().unwrap();
            black_box(service.durability().unwrap().checkpoint_generation)
        })
    });

    // Real-disk fsync floor, opt-in (slow and I/O bound).
    if std::env::var("AV_WAL_BENCH_FSYNC").is_ok_and(|v| v == "1") {
        let dir = std::env::temp_dir().join(format!("av_wal_bench_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let storage: Arc<dyn Storage> = Arc::new(OsStorage);
        storage.create_dir_all(&dir).unwrap();
        let mut wal = Wal::create(
            storage,
            dir.clone(),
            WalConfig {
                segment_bytes: 64 << 20,
            },
            1,
        )
        .unwrap();
        let payload = vec![0xcdu8; 256];
        group.bench_function("append_fsync_os", |b| {
            b.iter(|| black_box(wal.append(black_box(&payload)).unwrap()))
        });
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_wal_append
}
criterion_main!(benches);
