//! The `index_build` group: offline index construction throughput
//! (columns/s over the generated lake — the paper's 7M-column cluster job
//! at laptop scale) and end-to-end `AutoValidate::infer` latency against
//! that index. These are the two sides the fingerprint-streaming
//! enumeration speeds up: the §2.4 offline build and the per-request
//! `P(D)` → FMDV candidate pipeline.

use av_core::{AutoValidate, FmdvConfig, Variant};
use av_corpus::{generate_lake, Column, LakeProfile};
use av_index::{IndexConfig, IndexDelta, PatternIndex};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(500), 11);
    let cols: Vec<&Column> = corpus.columns().collect();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cols.len() as u64));
    for tau in [8usize, 13] {
        let config = IndexConfig {
            tau,
            ..Default::default()
        };
        group.bench_function(format!("tau{tau}_500cols"), |b| {
            b.iter(|| black_box(PatternIndex::build(black_box(&cols), &config).len()))
        });
    }
    // The service ingest path: profile a fresh batch into a delta (the
    // expensive half of `ValidationService::ingest`, run with no lock).
    let batch = generate_lake(&LakeProfile::tiny().scaled(100), 23);
    let batch_cols: Vec<&Column> = batch.columns().collect();
    let config = IndexConfig::default();
    group.throughput(Throughput::Elements(batch_cols.len() as u64));
    group.bench_function("ingest_delta_100cols", |b| {
        b.iter(|| black_box(IndexDelta::profile(black_box(&batch_cols), &config).len()))
    });
    group.finish();
}

fn bench_infer(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(800), 77);
    let cols: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&cols, &IndexConfig::default());
    let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
    cfg.max_segment_tokens = index.tau;
    cfg.theta = 0.05;
    let engine = AutoValidate::new(&index, cfg);

    let times: Vec<String> = (0..200)
        .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
        .collect();
    let composite: Vec<String> = (0..200)
        .map(|i| {
            format!(
                "{}-{:02}-{:02}|{:02}:{:02}:{:02}|{}",
                2010 + (i % 20),
                (i % 12) + 1,
                (i % 28) + 1,
                i % 24,
                (i * 7) % 60,
                (i * 13) % 60,
                1_400_000_000u64 + i as u64 * 1000,
            )
        })
        .collect();

    let mut group = c.benchmark_group("infer");
    group.sample_size(10);
    group.bench_function("basic_times_200", |b| {
        b.iter(|| black_box(engine.infer(black_box(&times), Variant::Fmdv).is_ok()))
    });
    group.bench_function("vh_times_200", |b| {
        b.iter(|| black_box(engine.infer(black_box(&times), Variant::FmdvVH).is_ok()))
    });
    group.bench_function("vh_composite_200", |b| {
        b.iter(|| black_box(engine.infer(black_box(&composite), Variant::FmdvVH).is_ok()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_index_build, bench_infer
}
criterion_main!(benches);
