//! The `ingest_delta` group: incremental-merge latency vs shard count.
//!
//! The service's ingest path is `clone live index → merge delta → publish`.
//! With a monolithic index (1 shard) the clone+merge republishes every
//! entry, so the latency grows with the lake; with fingerprint sharding it
//! clones only the shards the delta touches — O(delta), not O(index).
//!
//! Two batch shapes bracket the behavior:
//!
//! * `narrow` — four enum-style feed columns (status/level/env/region, a
//!   few dozen distinct patterns total): touches a small fraction of the
//!   shards, so merge latency should drop roughly with the shard count;
//! * `diverse` — four columns sampled from the synthetic lake (hundreds
//!   of patterns each): touches nearly every shard, the worst case, and
//!   must not regress versus the monolithic merge.
//!
//! `profile_small_batch` measures the lock-free profiling half for
//! context. PERF.md Point 4 records the trajectory on a 10k-column lake
//! (`AV_INGEST_BENCH_COLS=10000`).

use av_corpus::{generate_lake, Column, ColumnMeta, LakeProfile};
use av_index::{IndexConfig, IndexDelta, PatternIndex};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Lake size (columns); CI smoke keeps it modest, PERF runs override.
fn lake_cols() -> usize {
    std::env::var("AV_INGEST_BENCH_COLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

fn enum_column(name: &str, vocab: &[&str], rows: usize) -> Column {
    Column {
        name: name.to_string(),
        values: (0..rows)
            .map(|i| vocab[i % vocab.len()].to_string())
            .collect(),
        meta: ColumnMeta::machine("ingest-bench", None),
    }
}

/// A recurring telemetry feed: categorical columns whose handful of
/// shapes land in a handful of shards.
fn narrow_batch() -> Vec<Column> {
    vec![
        enum_column("status", &["OK", "RETRY", "FAIL"], 90),
        enum_column("level", &["INFO", "WARN", "ERROR", "DEBUG"], 80),
        enum_column("env", &["prod", "staging"], 60),
        enum_column("region", &["useast", "uswest", "eucentral"], 70),
    ]
}

fn bench_ingest_delta(c: &mut Criterion) {
    let corpus = generate_lake(&LakeProfile::tiny().scaled(lake_cols()), 11);
    let cols: Vec<&Column> = corpus.columns().collect();
    let narrow = narrow_batch();
    let diverse = generate_lake(&LakeProfile::tiny().scaled(4), 23);
    let batches: Vec<(&str, Vec<&Column>)> = vec![
        ("narrow", narrow.iter().collect()),
        ("diverse", diverse.columns().collect()),
    ];

    let mut group = c.benchmark_group("ingest_delta");
    group.sample_size(10);
    for shard_bits in [0u32, 4, 6, 8] {
        let config = IndexConfig {
            shard_bits,
            ..Default::default()
        };
        let index = PatternIndex::build(&cols, &config);
        for (label, batch_cols) in &batches {
            let delta = IndexDelta::profile(batch_cols, &config);
            let touched = delta.touched_shards(shard_bits);
            group.bench_function(
                format!(
                    "merge_{label}/shards{:04}_touch{touched:04}",
                    1usize << shard_bits
                ),
                |b| {
                    // The service's post-profiling ingest: COW-clone the
                    // live epoch, merge (clones touched shards only),
                    // republish.
                    b.iter(|| {
                        let mut next = index.clone();
                        next.merge_delta(black_box(delta.clone())).unwrap();
                        black_box(next.num_columns)
                    })
                },
            );
        }
    }

    // The lock-free half of ingest for scale: profiling a batch itself.
    let config = IndexConfig::default();
    let narrow_refs: Vec<&Column> = narrow.iter().collect();
    group.bench_function("profile_small_batch", |b| {
        b.iter(|| black_box(IndexDelta::profile(black_box(&narrow_refs), &config).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ingest_delta
}
criterion_main!(benches);
