//! Catalog size × per-value classify latency: the catalog automaton
//! (`av-match`'s lazily-determinized NFA union) against the N-programs
//! loop it replaces. Measured numbers are recorded as Point 6 in
//! `crates/av-bench/PERF.md`.
//!
//! The design contract being verified: one `classify` scan of a value is
//! ~independent of catalog size once the lazy DFA is warm, while the loop
//! pays one full program match per rule — so the gap must widen linearly
//! with the catalog (≥10× at 1 000 rules).

use av_match::CatalogMatcher;
use av_pattern::{CompiledPattern, Pattern, Token};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// `n` distinct machine-data shapes: a literal feed prefix plus a mix of
/// digit/upper/lower runs, cycling widths so no two rules share a program.
fn synthetic_catalog(n: usize) -> Vec<CompiledPattern> {
    (0..n)
        .map(|i| {
            let tokens = match i % 4 {
                0 => vec![
                    Token::lit(format!("f{:03}-", i / 4)),
                    Token::Digit(2 + (i % 5) as u16),
                ],
                1 => vec![
                    Token::lit(format!("F{:03}/", i / 4)),
                    Token::Upper(1 + (i % 3) as u16),
                    Token::lit(":".to_string()),
                    Token::DigitPlus,
                ],
                2 => vec![
                    Token::Digit(4),
                    Token::lit(format!(".{:03}.", i / 4)),
                    Token::LowerPlus,
                ],
                _ => vec![Token::lit(format!("id{:04}x", i / 4)), Token::AlnumPlus],
            };
            CompiledPattern::compile(&Pattern::new(tokens))
        })
        .collect()
}

/// A probe mix: values matching rules from the front, middle and back of
/// the catalog, plus misses that die at byte 0 and deep misses.
fn probes(n: usize) -> Vec<String> {
    vec![
        "f000-42".to_string(),
        format!("F{:03}/AB:1234", (n / 2) / 4),
        format!("1999.{:03}.abcdef", (n - 2) / 4),
        "zzz-no-rule-starts-here".to_string(),
        format!("id{:04}x", n),
    ]
}

fn bench_catalog_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_match");
    group.sample_size(30);
    for n in [10usize, 100, 1_000, 10_000] {
        let programs = synthetic_catalog(n);
        let values = probes(n);
        let mut matcher = CatalogMatcher::new();
        for (i, p) in programs.iter().enumerate() {
            matcher.insert(i as u32, p);
        }
        // Equal verdicts on every probe, or the speedup is meaningless.
        for v in &values {
            let loop_set: Vec<u32> = programs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.matches(v))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(matcher.classify(v), loop_set, "verdicts diverge on {v:?}");
        }

        group.bench_function(format!("classify/{n}"), |b| {
            b.iter(|| {
                let mut matched = 0usize;
                for v in &values {
                    matched += matcher.classify(black_box(v)).len();
                }
                matched
            })
        });
        group.bench_function(format!("loop/{n}"), |b| {
            b.iter(|| {
                let mut matched = 0usize;
                for v in &values {
                    matched += programs.iter().filter(|p| p.matches(black_box(v))).count();
                }
                matched
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_catalog_scaling
}
criterion_main!(benches);
