//! Simulated programmers for the user study (Table 3).
//!
//! The paper recruited five programmers to hand-write validation regexes
//! for 20 sampled columns; two failed outright (ill-formed or non-matching
//! regexes) and the rest averaged precision 0.47 — far below the
//! algorithm — because hand-written regexes overfit the training sample.
//!
//! We model a programmer as a skill-parameterized regex author: skill
//! controls how often they correctly generalize a position (variable width
//! where the domain varies, class instead of literal) versus pinning what
//! they saw, and how often they produce a broken regex altogether.
//! Authoring wall-clock time cannot be simulated; the paper's measured
//! times are carried in EXPERIMENTS.md.

use crate::validator::{ColumnValidator, InferredRule};
use av_pattern::{tokenize, CharClass};
use av_regex::Regex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Skill profile of a simulated programmer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Skill {
    /// Probability of generalizing a fixed width to `+`/`{m,n}` when the
    /// training sample shows varying widths.
    pub generalize_width: f64,
    /// Probability of using a character class where the sample shows
    /// varying content (vs pinning the literal they saw first).
    pub generalize_content: f64,
    /// Probability the final regex is ill-formed / fails on its own
    /// training data (the "2 out of 5 users fail completely" mode).
    pub blunder: f64,
}

impl Skill {
    /// A careful senior developer.
    pub fn expert() -> Skill {
        Skill {
            generalize_width: 0.9,
            generalize_content: 0.95,
            blunder: 0.0,
        }
    }

    /// A middling developer: frequently pins what they saw.
    pub fn average() -> Skill {
        Skill {
            generalize_width: 0.5,
            generalize_content: 0.7,
            blunder: 0.1,
        }
    }

    /// A hurried developer: overfits heavily and sometimes ships a broken
    /// regex.
    pub fn novice() -> Skill {
        Skill {
            generalize_width: 0.2,
            generalize_content: 0.4,
            blunder: 0.4,
        }
    }
}

/// A simulated programmer writing one regex per column.
pub struct SimulatedProgrammer {
    /// Display name ("#1", "#2", ...).
    pub label: String,
    skill: Skill,
    seed: u64,
}

impl SimulatedProgrammer {
    /// Create a programmer with a given skill and RNG seed.
    pub fn new(label: impl Into<String>, skill: Skill, seed: u64) -> SimulatedProgrammer {
        SimulatedProgrammer {
            label: label.into(),
            skill,
            seed,
        }
    }
}

impl ColumnValidator for SimulatedProgrammer {
    fn name(&self) -> &str {
        &self.label
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        let first = *train.first()?;
        // Deterministic per-column randomness: seed ⊕ column content hash.
        let mut h: u64 = self.seed;
        for v in train.iter().take(4) {
            for b in v.as_bytes() {
                h = h.wrapping_mul(0x100000001b3) ^ (*b as u64);
            }
        }
        let mut rng = StdRng::seed_from_u64(h);
        if rng.random_bool(self.skill.blunder) {
            // Ships a regex that cannot even match the sample: model as a
            // rule that fails everything (it would alarm daily and be
            // discarded; precision/recall are scored as written).
            return Some(InferredRule::all_match(
                format!("{}: broken regex", self.label),
                |_: &str| false,
            ));
        }
        // Author the regex by looking at (at most) the first 10 values,
        // like a human skimming a sample.
        let sample: Vec<&str> = train.iter().take(10).copied().collect();
        let runs = tokenize(first);
        let mut regex = String::new();
        for (i, run) in runs.iter().enumerate() {
            // What does this position look like across the sample?
            let texts: Vec<&str> = sample
                .iter()
                .filter_map(|v| tokenize(v).get(i).map(|r| r.text))
                .collect();
            let same_text = texts.iter().all(|t| *t == run.text);
            let widths: Vec<usize> = texts.iter().map(|t| t.chars().count()).collect();
            let same_width = widths.iter().all(|w| *w == widths[0]);
            let class = match run.class {
                CharClass::Digit => r"\d",
                CharClass::Letter => "[A-Za-z]",
                CharClass::Space => r"\s",
                CharClass::Symbol => "",
            };
            if run.class == CharClass::Symbol {
                for c in run.text.chars() {
                    if "\\^$.|?*+()[]{}".contains(c) {
                        regex.push('\\');
                    }
                    regex.push(c);
                }
                continue;
            }
            let generalize_content = !same_text && rng.random_bool(self.skill.generalize_content);
            let pin_literal = same_text && !rng.random_bool(self.skill.generalize_content);
            if pin_literal || (!generalize_content && !same_text && texts.len() > 1) {
                // Pins the first literal they saw (overfit mode) — or, if
                // they noticed variation but didn't generalize, writes an
                // alternation of observed values (still overfit).
                let mut alts: Vec<&str> = if pin_literal {
                    vec![run.text]
                } else {
                    texts.clone()
                };
                alts.sort_unstable();
                alts.dedup();
                let escaped: Vec<String> = alts
                    .iter()
                    .map(|t| {
                        t.chars()
                            .flat_map(|c| {
                                if "\\^$.|?*+()[]{}".contains(c) {
                                    vec!['\\', c]
                                } else {
                                    vec![c]
                                }
                            })
                            .collect()
                    })
                    .collect();
                regex.push('(');
                regex.push_str(&escaped.join("|"));
                regex.push(')');
            } else if same_width && !rng.random_bool(self.skill.generalize_width) {
                regex.push_str(&format!("{}{{{}}}", class, widths[0]));
            } else {
                regex.push_str(class);
                regex.push('+');
            }
        }
        let compiled = Regex::new(&regex).ok()?;
        Some(InferredRule::all_match(
            format!("{}: /{}/", self.label, regex),
            move |v: &str| compiled.is_full_match(v),
        ))
    }
}

/// The study panel: three scoring programmers (the paper's two complete
/// failures are modeled by the novice's blunder rate).
pub fn study_panel(seed: u64) -> Vec<SimulatedProgrammer> {
    vec![
        SimulatedProgrammer::new("Programmer#1", Skill::expert(), seed),
        SimulatedProgrammer::new("Programmer#2", Skill::average(), seed.wrapping_add(1)),
        SimulatedProgrammer::new("Programmer#3", Skill::novice(), seed.wrapping_add(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col<'a>(vals: &[&'a str]) -> Vec<&'a str> {
        vals.to_vec()
    }

    #[test]
    fn expert_generalizes_dates() {
        let p = SimulatedProgrammer::new("e", Skill::expert(), 7);
        let train = col(&[
            "Mar 01 2019",
            "Mar 05 2019",
            "Mar 11 2019",
            "Mar 19 2019",
            "Mar 28 2019",
        ]);
        let rule = p.infer(&train).expect("expert writes a regex");
        assert!(rule.passes(&col(&["Mar 14 2019"])), "{}", rule.description);
    }

    #[test]
    fn novice_overfits_or_blunders() {
        // Across many columns, the novice must be measurably worse than the
        // expert at accepting same-domain future data.
        let novice = SimulatedProgrammer::new("n", Skill::novice(), 1);
        let expert = SimulatedProgrammer::new("e", Skill::expert(), 1);
        let mut novice_ok = 0;
        let mut expert_ok = 0;
        for s in 0..40u64 {
            let train: Vec<String> = (0..8)
                .map(|i| format!("{}-{:02}-{:02}", 2010 + ((s + i) % 9), (i % 12) + 1, i + 1))
                .collect();
            let train_refs: Vec<&str> = train.iter().map(String::as_str).collect();
            let future: Vec<String> = vec![format!("{}-{:02}-{:02}", 2024, 7, 15)];
            if let Some(r) = novice.infer(&train_refs) {
                if r.passes(&future) {
                    novice_ok += 1;
                }
            }
            if let Some(r) = expert.infer(&train_refs) {
                if r.passes(&future) {
                    expert_ok += 1;
                }
            }
        }
        assert!(
            novice_ok < expert_ok,
            "novice {novice_ok} vs expert {expert_ok}"
        );
        assert!(
            expert_ok >= 30,
            "expert should usually generalize: {expert_ok}"
        );
    }

    #[test]
    fn panel_is_deterministic() {
        let train = col(&["10.0.0.1", "10.0.0.2", "192.168.7.13"]);
        for p in study_panel(9) {
            let a = p.infer(&train).map(|r| r.description);
            let b = p.infer(&train).map(|r| r.description);
            assert_eq!(a, b);
        }
    }
}
