//! Recall upper bounds for orthogonal method families (§5.2): FD-UB
//! (functional dependencies) and AD-UB (Auto-Detect's common-pattern
//! co-occurrence). Both assume perfect precision, per the paper.

use av_corpus::{Corpus, Table};
use av_pattern::coarse_pattern;
use std::collections::HashMap;

/// Does column `i` of `table` participate in a functional dependency with
/// any other column (either as determinant or dependent), on this table
/// instance?
pub fn fd_participates(table: &Table, i: usize) -> bool {
    let n_rows = table.columns.get(i).map(|c| c.len()).unwrap_or(0);
    if n_rows == 0 {
        return false;
    }
    (0..table.columns.len())
        .filter(|&j| j != i && table.columns[j].len() == n_rows)
        .any(|j| holds_fd(table, i, j) || holds_fd(table, j, i))
}

/// Does `A → B` hold on the instance (every A-value maps to one B-value)?
/// Trivial FDs (constant A, i.e. |A| = 1 distinct) are excluded, as
/// instance-level FDs from constants carry no semantic signal [19, 51].
fn holds_fd(table: &Table, a: usize, b: usize) -> bool {
    let col_a = &table.columns[a].values;
    let col_b = &table.columns[b].values;
    let mut map: HashMap<&str, &str> = HashMap::new();
    for (x, y) in col_a.iter().zip(col_b) {
        match map.get(x.as_str()) {
            Some(prev) if *prev != y.as_str() => return false,
            Some(_) => {}
            None => {
                map.insert(x, y);
            }
        }
    }
    map.len() > 1
}

/// FD-UB: the fraction of named columns that are part of any FD in their
/// original table — a recall upper bound for FD-based validation.
pub fn fd_recall_upper_bound(corpus: &Corpus, column_names: &[&str]) -> f64 {
    if column_names.is_empty() {
        return 0.0;
    }
    let wanted: std::collections::HashSet<&str> = column_names.iter().copied().collect();
    let mut covered = 0usize;
    for table in &corpus.tables {
        for (i, col) in table.columns.iter().enumerate() {
            if wanted.contains(col.name.as_str()) && fd_participates(table, i) {
                covered += 1;
            }
        }
    }
    covered as f64 / column_names.len() as f64
}

/// The "common patterns" of a corpus: coarse patterns carried (as the
/// plurality structure) by at least `min_columns` columns. Auto-Detect can
/// only flag incompatibility between two *common* patterns.
pub fn common_patterns(corpus: &Corpus, min_columns: usize) -> HashMap<av_pattern::Pattern, usize> {
    let mut census: HashMap<av_pattern::Pattern, usize> = HashMap::new();
    for col in corpus.columns() {
        let mut local: HashMap<av_pattern::Pattern, usize> = HashMap::new();
        for v in col.values.iter().take(100) {
            *local.entry(coarse_pattern(v)).or_insert(0) += 1;
        }
        if let Some((top, _)) = local
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        {
            *census.entry(top).or_insert(0) += 1;
        }
    }
    census.retain(|_, c| *c >= min_columns);
    census
}

/// AD-UB: the fraction of query columns whose plurality coarse pattern is a
/// common pattern — a recall upper bound for Auto-Detect-style methods
/// (both sides of a value pair must map to common patterns).
pub fn ad_recall_upper_bound(
    common: &HashMap<av_pattern::Pattern, usize>,
    query_columns: &[Vec<String>],
) -> f64 {
    if query_columns.is_empty() {
        return 0.0;
    }
    let covered = query_columns
        .iter()
        .filter(|values| {
            let mut local: HashMap<av_pattern::Pattern, usize> = HashMap::new();
            for v in values.iter().take(100) {
                *local.entry(coarse_pattern(v)).or_insert(0) += 1;
            }
            local
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .is_some_and(|(top, _)| common.contains_key(&top))
        })
        .count();
    covered as f64 / query_columns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, Column, ColumnMeta, LakeProfile};

    fn col(name: &str, vals: &[&str]) -> Column {
        Column {
            name: name.into(),
            values: vals.iter().map(|s| s.to_string()).collect(),
            meta: ColumnMeta::machine("t", None),
        }
    }

    #[test]
    fn fd_detection_on_country_currency() {
        let table = Table {
            name: "t".into(),
            columns: vec![
                col("country", &["US", "UK", "US", "DE"]),
                col("currency", &["USD", "GBP", "USD", "EUR"]),
                col("noise", &["1", "2", "3", "4"]),
            ],
        };
        assert!(fd_participates(&table, 0));
        assert!(fd_participates(&table, 1));
        // noise → everything (all-distinct determinant): noise does
        // participate as a determinant, which is the upper-bound semantics.
        assert!(fd_participates(&table, 2));
    }

    #[test]
    fn fd_violations_are_rejected() {
        let table = Table {
            name: "t".into(),
            columns: vec![col("a", &["x", "x"]), col("b", &["1", "2"])],
        };
        // a → b fails (x maps to both); b → a holds but is from an
        // all-distinct determinant… which is allowed. Column 0 participates
        // only via b → a.
        assert!(holds_fd(&table, 1, 0));
        assert!(!holds_fd(&table, 0, 1));
    }

    #[test]
    fn constant_determinants_are_trivial() {
        let table = Table {
            name: "t".into(),
            columns: vec![col("a", &["x", "x"]), col("b", &["1", "1"])],
        };
        assert!(!holds_fd(&table, 0, 1), "constant FD carries no signal");
    }

    #[test]
    fn fd_upper_bound_counts_generated_pairs() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(600), 13);
        let names: Vec<&str> = corpus
            .columns()
            .filter(|c| c.name.ends_with("_country") || c.name.ends_with("_currency"))
            .map(|c| c.name.as_str())
            .collect();
        if !names.is_empty() {
            let ub = fd_recall_upper_bound(&corpus, &names);
            assert!(ub > 0.9, "country/currency pairs are FDs, got {ub}");
        }
    }

    #[test]
    fn common_patterns_have_counts() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(500), 5);
        let common = common_patterns(&corpus, 3);
        assert!(!common.is_empty());
        assert!(common.values().all(|&c| c >= 3));
    }

    #[test]
    fn ad_upper_bound_reflects_commonality() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(500), 5);
        let common = common_patterns(&corpus, 3);
        let in_corpus: Vec<Vec<String>> = corpus
            .columns()
            .take(50)
            .map(|c| c.values.clone())
            .collect();
        let ub = ad_recall_upper_bound(&common, &in_corpus);
        assert!(ub > 0.3, "popular corpus columns should be common: {ub}");
        let foreign: Vec<Vec<String>> =
            vec![vec!["@@##$$ weird !! unique structure 9".to_string()]];
        assert_eq!(ad_recall_upper_bound(&common, &foreign), 0.0);
    }
}
