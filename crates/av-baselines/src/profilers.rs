//! Pattern-profiler baselines: Potter's Wheel, SSIS, XSystem, FlashProfile
//! (§5.2). All profile the query column alone; they differ in how specific
//! their patterns are and whether they branch into multiple patterns.

use crate::profile::{profile_group, strict_groups, TokenChoice};
use crate::validator::{ColumnValidator, InferredRule};
use av_pattern::{CompiledPattern, Pattern};

/// Does the column look like natural language (many multi-word letter/space
/// values)? Profilers produce only the trivial pattern there; following the
/// paper, they decline instead.
fn looks_natural_language(train: &[&str]) -> bool {
    if train.is_empty() {
        return true;
    }
    let wordy = train
        .iter()
        .filter(|v| {
            let mut words = 0;
            let mut letters = 0usize;
            let mut others = 0usize;
            for part in v.split(' ') {
                if !part.is_empty() {
                    words += 1;
                }
                for c in part.chars() {
                    if c.is_ascii_alphabetic() {
                        letters += 1;
                    } else {
                        others += 1;
                    }
                }
            }
            words >= 2 && letters > 4 * others.max(1)
        })
        .count();
    wordy * 2 > train.len()
}

/// Potter's Wheel \[57\]: single MDL-optimal pattern over the dominant
/// structure; future values must all match it.
#[derive(Debug, Default)]
pub struct PottersWheel;

impl ColumnValidator for PottersWheel {
    fn name(&self) -> &str {
        "PWheel"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if looks_natural_language(train) {
            return None;
        }
        let groups = strict_groups(train);
        let dominant = groups.first()?;
        let pattern = profile_group(dominant, TokenChoice::Mdl);
        if pattern.is_trivial() {
            return None;
        }
        let compiled = pattern.compile();
        Some(InferredRule::all_match(
            pattern.to_string(),
            move |v: &str| compiled.matches(v),
        ))
    }
}

/// SQL Server Integration Services data profiling: class-only regex per
/// column (never pins alphanumeric literals).
#[derive(Debug, Default)]
pub struct Ssis;

impl ColumnValidator for Ssis {
    fn name(&self) -> &str {
        "SSIS"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if looks_natural_language(train) {
            return None;
        }
        let groups = strict_groups(train);
        let dominant = groups.first()?;
        let pattern = profile_group(dominant, TokenChoice::ClassOnly);
        if pattern.is_trivial() {
            return None;
        }
        let compiled = pattern.compile();
        Some(InferredRule::all_match(
            pattern.to_regex(),
            move |v: &str| compiled.matches(v),
        ))
    }
}

/// XSystem \[40\]: branch-and-merge — one class pattern per retained branch;
/// a future value must match *some* branch.
#[derive(Debug)]
pub struct XSystem {
    /// Minimum fraction of training values a branch needs to be retained.
    pub min_branch_frac: f64,
}

impl Default for XSystem {
    fn default() -> Self {
        XSystem {
            min_branch_frac: 0.05,
        }
    }
}

impl ColumnValidator for XSystem {
    fn name(&self) -> &str {
        "XSystem"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if looks_natural_language(train) {
            return None;
        }
        let groups = strict_groups(train);
        let min_count = ((self.min_branch_frac * train.len() as f64).ceil() as usize).max(1);
        let branches: Vec<Pattern> = groups
            .iter()
            .filter(|g| g.count >= min_count)
            .map(|g| profile_group(g, TokenChoice::ClassOnly))
            .filter(|p| !p.is_trivial() || p.is_empty())
            .collect();
        if branches.is_empty() {
            return None;
        }
        let desc = branches
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" | ");
        let compiled: Vec<CompiledPattern> = branches.iter().map(Pattern::compile).collect();
        Some(InferredRule::all_match(desc, move |v: &str| {
            compiled.iter().any(|p| p.matches(v))
        }))
    }
}

/// FlashProfile \[49\]: cluster by syntactic shape, emit one *specific*
/// pattern per cluster; a future value must match some cluster pattern.
#[derive(Debug)]
pub struct FlashProfile {
    /// Minimum cluster fraction to keep.
    pub min_cluster_frac: f64,
}

impl Default for FlashProfile {
    fn default() -> Self {
        FlashProfile {
            min_cluster_frac: 0.02,
        }
    }
}

impl ColumnValidator for FlashProfile {
    fn name(&self) -> &str {
        "FlashProfile"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if looks_natural_language(train) {
            return None;
        }
        // Cluster = strict signature + per-position width signature: the
        // clusters FlashProfile's dissimilarity function converges to on
        // machine-generated data.
        use std::collections::HashMap;
        let mut clusters: HashMap<String, Vec<&str>> = HashMap::new();
        for v in train {
            let sig: String = av_pattern::tokenize(v)
                .iter()
                .map(|r| format!("{:?}{}", r.class, r.len()))
                .collect();
            clusters.entry(sig).or_default().push(v);
        }
        let min_count = ((self.min_cluster_frac * train.len() as f64).ceil() as usize).max(1);
        let mut patterns: Vec<Pattern> = Vec::new();
        for values in clusters.values() {
            if values.len() < min_count {
                continue;
            }
            let groups = strict_groups(values);
            if let Some(g) = groups.first() {
                // Singleton clusters would pin every literal; FlashProfile's
                // synthesis falls back to class atoms there.
                let choice = if values.len() == 1 {
                    TokenChoice::ClassOnly
                } else {
                    TokenChoice::MostSpecific
                };
                patterns.push(profile_group(g, choice));
            }
        }
        if patterns.is_empty() {
            return None;
        }
        patterns.sort();
        patterns.dedup();
        let desc = format!("{} cluster patterns", patterns.len());
        let compiled: Vec<CompiledPattern> = patterns.iter().map(Pattern::compile).collect();
        Some(InferredRule::all_match(desc, move |v: &str| {
            compiled.iter().any(|p| p.matches(v))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col<'a>(vals: &[&'a str]) -> Vec<&'a str> {
        vals.to_vec()
    }

    #[test]
    fn pwheel_overfits_months_as_paper_describes() {
        let train = col(&["Mar 01 2019", "Mar 05 2019", "Mar 30 2019"]);
        let rule = PottersWheel.infer(&train).unwrap();
        assert_eq!(rule.description, "Mar <digit>{2} 2019");
        assert!(rule.passes(&col(&["Mar 17 2019"])));
        // False alarm on April — the profiling-vs-validation gap (§1).
        assert!(!rule.passes(&col(&["Apr 01 2019"])));
    }

    #[test]
    fn ssis_generalizes_the_month_but_not_widths() {
        let train = col(&["Mar 01 2019", "Mar 05 2019"]);
        let rule = Ssis.infer(&train).unwrap();
        assert!(rule.passes(&col(&["Apr 17 2019"])));
        assert!(!rule.passes(&col(&["April 17 2019"])));
    }

    #[test]
    fn xsystem_branches_on_mixed_columns() {
        let mut train = col(&["12345", "23456", "34567", "45678"]);
        train.extend(col(&["ab-1", "cd-2"]));
        let rule = XSystem::default().infer(&train).unwrap();
        assert!(rule.passes(&col(&["99999", "xy-7"])));
        assert!(!rule.passes(&col(&["hello world ok"])));
    }

    #[test]
    fn flashprofile_is_width_specific() {
        let train = col(&["9:07", "8:30", "12:45"]);
        let rule = FlashProfile::default().infer(&train).unwrap();
        assert!(rule.passes(&col(&["7:59"])));
        assert!(rule.passes(&col(&["11:11"])));
        // Unseen width signature (3-digit hour) fails.
        assert!(!rule.passes(&col(&["123:45"])));
    }

    #[test]
    fn profilers_decline_natural_language() {
        let train = col(&[
            "Global Dynamics Research",
            "Acme Consulting Group",
            "Northwind Data Services",
        ]);
        assert!(PottersWheel.infer(&train).is_none());
        assert!(Ssis.infer(&train).is_none());
        assert!(XSystem::default().infer(&train).is_none());
        assert!(FlashProfile::default().infer(&train).is_none());
    }

    #[test]
    fn empty_training_declines() {
        assert!(PottersWheel.infer(&[]).is_none());
        assert!(FlashProfile::default().infer(&[]).is_none());
    }
}
