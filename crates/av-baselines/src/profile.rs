//! Shared single-column profiling helpers for the pattern-profiler
//! baselines (Potter's Wheel, SSIS, XSystem, FlashProfile).
//!
//! Unlike Auto-Validate, profilers look at the query column **only** — the
//! paper's central observation is that this produces patterns that are
//! ideal summaries of observed data but over-restrictive validators.

use av_pattern::{tokenize, CharClass, Pattern, Token};

/// Values of one strict-signature group, organized by position.
#[derive(Debug)]
pub(crate) struct StrictGroup<'a> {
    /// The per-position character classes.
    pub classes: Vec<CharClass>,
    /// Per-position run texts, one inner vec per position, one entry per value.
    pub texts: Vec<Vec<&'a str>>,
    /// Number of values in the group.
    pub count: usize,
}

/// Group values by their strict run-class signature.
pub(crate) fn strict_groups<'a>(values: &[&'a str]) -> Vec<StrictGroup<'a>> {
    use std::collections::HashMap;
    let mut map: HashMap<Vec<CharClass>, Vec<Vec<&str>>> = HashMap::new();
    for v in values {
        let runs = tokenize(v);
        let classes: Vec<CharClass> = runs.iter().map(|r| r.class).collect();
        let entry = map
            .entry(classes.clone())
            .or_insert_with(|| vec![Vec::new(); classes.len()]);
        for (i, run) in runs.iter().enumerate() {
            entry[i].push(run.text);
        }
    }
    let mut out: Vec<StrictGroup<'_>> = map
        .into_iter()
        .map(|(classes, texts)| {
            let count = texts.first().map(|t| t.len()).unwrap_or(
                // zero-position signature: count values via… the map lost it;
                // recompute below for the empty case.
                0,
            );
            StrictGroup {
                classes,
                texts,
                count,
            }
        })
        .collect();
    // Empty-string values produce a zero-length signature whose count can't
    // be read off the texts; recount.
    let empties = values.iter().filter(|v| v.is_empty()).count();
    for g in out.iter_mut() {
        if g.classes.is_empty() {
            g.count = empties;
        }
    }
    out.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.classes.len().cmp(&b.classes.len()))
    });
    out
}

/// How a profiler picks per-position tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenChoice {
    /// Minimum description length: constants where constant, fixed widths
    /// where uniform, variadic otherwise (Potter's Wheel).
    Mdl,
    /// Pure character classes, never literals on alphanumeric runs (SSIS).
    ClassOnly,
    /// Most specific: constants where constant, else fixed width — even if
    /// the column disagrees, pick per-cluster (FlashProfile clusters first).
    MostSpecific,
}

/// Description length (bits) of encoding all `texts` with `token`;
/// `f64::INFINITY` when the token cannot represent them.
fn dl_cost(token: &Token, texts: &[&str]) -> f64 {
    const LEN_BITS: f64 = 5.0; // length header for variadic tokens
    let bits_per_char = |t: &Token| -> f64 {
        match t {
            Token::Digit(_) | Token::DigitPlus | Token::Num => 10f64.log2(),
            Token::Upper(_) | Token::UpperPlus | Token::Lower(_) | Token::LowerPlus => 26f64.log2(),
            Token::Letter(_) | Token::LetterPlus => 52f64.log2(),
            Token::Alnum(_) | Token::AlnumPlus => 62f64.log2(),
            Token::Sym(_) | Token::SymPlus => 32f64.log2(),
            Token::SpacePlus => 1.0,
            Token::AnyPlus => 96f64.log2(),
            Token::Lit(_) => 0.0,
        }
    };
    let pattern_cost = 8.0; // flat cost per token in the pattern itself
    match token {
        Token::Lit(s) => {
            if texts.iter().all(|t| *t == s.as_ref()) {
                pattern_cost + 8.0 * s.chars().count() as f64
            } else {
                f64::INFINITY
            }
        }
        t => {
            let mut total = pattern_cost;
            let variadic = t.is_variadic();
            let width = t.fixed_width();
            for text in texts {
                let n = text.chars().count();
                if let Some(w) = width {
                    if n != w {
                        return f64::INFINITY;
                    }
                }
                if !text.chars().all(|c| t.class_contains(c)) {
                    return f64::INFINITY;
                }
                total += n as f64 * bits_per_char(t) + if variadic { LEN_BITS } else { 0.0 };
            }
            total
        }
    }
}

/// Candidate tokens for a position of class `class` over `texts`.
fn position_candidates(class: CharClass, texts: &[&str]) -> Vec<Token> {
    let w0 = texts.first().map(|t| t.chars().count()).unwrap_or(0) as u16;
    let uniform_width = texts.iter().all(|t| t.chars().count() == w0 as usize);
    let mut cands = vec![Token::lit(texts.first().copied().unwrap_or(""))];
    match class {
        CharClass::Digit => {
            if uniform_width {
                cands.push(Token::Digit(w0));
            }
            cands.push(Token::DigitPlus);
        }
        CharClass::Letter => {
            if texts
                .iter()
                .all(|t| t.chars().all(|c| c.is_ascii_uppercase()))
            {
                if uniform_width {
                    cands.push(Token::Upper(w0));
                }
                cands.push(Token::UpperPlus);
            } else if texts
                .iter()
                .all(|t| t.chars().all(|c| c.is_ascii_lowercase()))
            {
                if uniform_width {
                    cands.push(Token::Lower(w0));
                }
                cands.push(Token::LowerPlus);
            }
            if uniform_width {
                cands.push(Token::Letter(w0));
            }
            cands.push(Token::LetterPlus);
        }
        CharClass::Space => {
            cands.push(Token::SpacePlus);
        }
        CharClass::Symbol => {
            if uniform_width {
                cands.push(Token::Sym(w0));
            }
            cands.push(Token::SymPlus);
        }
    }
    cands
}

/// Profile one strict group into a pattern, per the chosen strategy.
pub(crate) fn profile_group(group: &StrictGroup<'_>, choice: TokenChoice) -> Pattern {
    let mut tokens: Vec<Token> = Vec::with_capacity(group.classes.len());
    for (class, texts) in group.classes.iter().zip(&group.texts) {
        let cands = position_candidates(*class, texts);
        let tok = match choice {
            TokenChoice::Mdl => cands
                .iter()
                .map(|t| (t, dl_cost(t, texts)))
                .filter(|(_, c)| c.is_finite())
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
                .map(|(t, _)| t.clone()),
            TokenChoice::ClassOnly => cands
                .iter()
                .filter(|t| {
                    // Literals allowed only on symbol/space positions.
                    !matches!(t, Token::Lit(_))
                        || matches!(class, CharClass::Symbol | CharClass::Space)
                })
                .find(|t| dl_cost(t, texts).is_finite())
                .cloned(),
            TokenChoice::MostSpecific => cands
                .iter()
                .find(|t| dl_cost(t, texts).is_finite())
                .cloned(),
        };
        tokens.push(tok.unwrap_or(Token::AnyPlus));
    }
    Pattern::new(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::matches;

    fn col<'a>(vals: &[&'a str]) -> Vec<&'a str> {
        vals.to_vec()
    }

    #[test]
    fn mdl_reproduces_paper_profiling_pattern() {
        // Potter's Wheel on C1 yields "Mar <digit>{2} 2019" (Fig. 2a) —
        // perfect summary, over-restrictive validator.
        let values = col(&["Mar 01 2019", "Mar 05 2019", "Mar 30 2019"]);
        let groups = strict_groups(&values);
        assert_eq!(groups.len(), 1);
        let p = profile_group(&groups[0], TokenChoice::Mdl);
        assert_eq!(p.to_string(), "Mar <digit>{2} 2019");
        assert!(matches(&p, "Mar 17 2019"));
        assert!(!matches(&p, "Apr 01 2019"));
    }

    #[test]
    fn class_only_never_pins_alnum_literals() {
        let values = col(&["Mar 01 2019", "Mar 05 2019"]);
        let groups = strict_groups(&values);
        let p = profile_group(&groups[0], TokenChoice::ClassOnly);
        assert_eq!(p.to_string(), "<letter>{3} <digit>{2} <digit>{4}");
    }

    #[test]
    fn variable_width_uses_variadic() {
        let values = col(&["9:07", "12:30"]);
        let groups = strict_groups(&values);
        let p = profile_group(&groups[0], TokenChoice::Mdl);
        assert_eq!(p.to_string(), "<digit>+:<digit>{2}");
    }

    #[test]
    fn strict_groups_split_heterogeneous_columns() {
        let values = col(&["123", "abc", "456", ""]);
        let groups = strict_groups(&values);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].count, 2); // digits dominate
        assert!(groups.iter().any(|g| g.classes.is_empty() && g.count == 1));
    }

    #[test]
    fn uppercase_groups_use_case_tokens() {
        let values = col(&["AM", "PM"]);
        let groups = strict_groups(&values);
        let p = profile_group(&groups[0], TokenChoice::Mdl);
        assert_eq!(p.to_string(), "<upper>{2}");
    }
}
