//! Grok-pattern validator (§5.2): a curated library of regexes for common
//! data types (as used in log parsing and AWS Glue classifiers). High
//! precision, low recall — only curated types are recognized.

use crate::validator::{ColumnValidator, InferredRule};
use av_regex::Regex;
use std::sync::OnceLock;

/// The curated pattern library: `(name, regex)`. A trimmed-down version of
/// the Elastic grok-patterns file, covering the common machine data types.
pub const GROK_PATTERNS: &[(&str, &str)] = &[
    ("INT", r"[+-]?\d+"),
    ("NUMBER", r"[+-]?\d+(\.\d+)?"),
    ("BASE16NUM", r"(0x)?[0-9A-Fa-f]+"),
    (
        "UUID",
        r"[0-9A-Fa-f]{8}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{12}",
    ),
    (
        "IPV4",
        r"(25[0-5]|2[0-4]\d|[01]?\d?\d)(\.(25[0-5]|2[0-4]\d|[01]?\d?\d)){3}",
    ),
    ("MAC", r"([0-9A-Fa-f]{2}:){5}[0-9A-Fa-f]{2}"),
    (
        "HOSTNAME",
        r"[a-zA-Z0-9]([a-zA-Z0-9-]{0,62})?(\.[a-zA-Z0-9]([a-zA-Z0-9-]{0,62})?)+",
    ),
    (
        "EMAILADDRESS",
        r"[a-zA-Z][a-zA-Z0-9_.+-]*@[a-zA-Z0-9][a-zA-Z0-9._-]*\.[a-zA-Z]+",
    ),
    ("URI", r"https?://[a-zA-Z0-9._-]+(/[a-zA-Z0-9._/-]*)?"),
    ("ISO8601_DATE", r"\d{4}-\d{2}-\d{2}"),
    (
        "ISO8601_TIMESTAMP",
        r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(Z|[+-]\d{2}:?\d{2})?",
    ),
    ("DATE_US", r"\d{1,2}/\d{1,2}/\d{4}"),
    ("DATE_EU", r"\d{1,2}-\d{1,2}-\d{4}"),
    ("TIME", r"\d{1,2}:\d{2}(:\d{2})?"),
    (
        "DATESTAMP_US",
        r"\d{1,2}/\d{1,2}/\d{4}[ T]\d{1,2}:\d{2}:\d{2}( (AM|PM))?",
    ),
    (
        "MONTHDAY_YEAR",
        r"(Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec) \d{2} \d{4}",
    ),
    ("HTTPDATE_YEAR", r"\d{4}"),
    ("ZIP", r"\d{5}(-\d{4})?"),
    ("PHONE_US", r"\(\d{3}\) \d{3}-\d{4}"),
    ("VERSION", r"v?\d+(\.\d+)+"),
    ("LOCALE", r"[a-z]{2}-[A-Z]{2}"),
    ("PERCENT", r"\d{1,3}%"),
    ("CURRENCY_USD", r"\$\d+\.\d{2}"),
    ("UNIXPATH", r"(/[a-zA-Z0-9._-]+)+"),
    ("WINPATH", r"[A-Za-z]:(\\[a-zA-Z0-9._ -]+)+"),
    ("WORD", r"[A-Za-z]+"),
];

fn compiled() -> &'static Vec<(&'static str, Regex)> {
    static CACHE: OnceLock<Vec<(&'static str, Regex)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        GROK_PATTERNS
            .iter()
            .map(|(name, pat)| {
                (
                    *name,
                    Regex::new(pat).unwrap_or_else(|e| panic!("grok {name}: {e}")),
                )
            })
            .collect()
    })
}

/// Grok validator: recognize the training column as one of the curated
/// types (≥ `min_match_frac` of values full-match) and require future
/// values to match that type too.
#[derive(Debug)]
pub struct Grok {
    /// Fraction of training values that must match a pattern to adopt it.
    pub min_match_frac: f64,
}

impl Default for Grok {
    fn default() -> Self {
        Grok {
            min_match_frac: 0.99,
        }
    }
}

impl ColumnValidator for Grok {
    fn name(&self) -> &str {
        "Grok"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if train.is_empty() {
            return None;
        }
        // Pick the FIRST library pattern (they are ordered specific →
        // generic within type families) that explains the training data.
        // The catch-all WORD pattern is excluded from adoption: it would
        // "validate" any letter column.
        let need = (self.min_match_frac * train.len() as f64).ceil() as usize;
        // One explicit NFA scratch for the whole library sweep; the check
        // closure below runs on the engine's thread-local scratch (the
        // `Fn` closure cannot hold `&mut` state and stay `Sync`), so both
        // inference and per-value checks are allocation-free.
        let mut scratch = av_regex::NfaScratch::new();
        let (name, regex) = compiled()
            .iter()
            .filter(|(name, _)| *name != "WORD" && *name != "INT" && *name != "HTTPDATE_YEAR")
            .find(|(_, re)| {
                train
                    .iter()
                    .filter(|v| re.is_full_match_with(v, &mut scratch))
                    .count()
                    >= need
            })?;
        let re = regex.clone();
        Some(InferredRule::tolerant(
            format!("grok:{name}"),
            1.0 - self.min_match_frac,
            move |v: &str| re.is_full_match(v),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col<'a>(vals: &[&'a str]) -> Vec<&'a str> {
        vals.to_vec()
    }

    #[test]
    fn all_library_patterns_compile() {
        assert_eq!(compiled().len(), GROK_PATTERNS.len());
    }

    #[test]
    fn recognizes_ip_addresses() {
        let train = col(&["10.0.0.1", "192.168.1.254", "8.8.8.8"]);
        let rule = Grok::default().infer(&train).unwrap();
        assert_eq!(rule.description, "grok:IPV4");
        assert!(rule.passes(&col(&["172.16.0.9"])));
        assert!(!rule.passes(&col(&["999.999.1.1", "abc"])));
    }

    #[test]
    fn recognizes_guids_and_dates() {
        let guids = col(&[
            "550e8400-e29b-41d4-a716-446655440000",
            "67e55044-10b1-426f-9247-bb680e5fe0c8",
        ]);
        assert_eq!(
            Grok::default().infer(&guids).unwrap().description,
            "grok:UUID"
        );
        let dates = col(&["2019-03-01", "2020-12-31"]);
        assert_eq!(
            Grok::default().infer(&dates).unwrap().description,
            "grok:ISO8601_DATE"
        );
    }

    #[test]
    fn declines_proprietary_formats() {
        // Fig. 3-style proprietary ids are not in any curated library —
        // the source of Grok's low recall.
        let train = col(&["/m/0abc12x", "/m/0zz93k7"]);
        let rule = Grok::default().infer(&train);
        if let Some(r) = &rule {
            // If anything matched it would be UNIXPATH; either declining or
            // adopting a path pattern is acceptable grok behavior.
            assert_eq!(r.description, "grok:UNIXPATH");
        }
        let weird = col(&["X|7|OnBooking", "Y|9|Delivered"]);
        assert!(Grok::default().infer(&weird).is_none());
    }

    #[test]
    fn generalizes_across_months_unlike_dictionaries() {
        let train = col(&["Mar 01 2019", "Mar 05 2019"]);
        let rule = Grok::default().infer(&train).unwrap();
        assert!(
            rule.passes(&col(&["Apr 01 2019"])),
            "curated month pattern generalizes"
        );
    }
}
