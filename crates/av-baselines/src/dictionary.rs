//! Dictionary-based validators: TFDV and Amazon Deequ (§5.2).
//!
//! TFDV infers a fixed dictionary from observed values and requires future
//! values to come from it — the paper's §1 example shows exactly why this
//! false-alarms on machine-generated data ("Apr 01 2019" after a March
//! training window). Deequ's `CategoricalRangeRule` (Deequ-Cat) does the
//! same but only when the column looks categorical, and its
//! `FractionalCategoricalRangeRule` (Deequ-Fra) requires only a fraction of
//! future values to be in-dictionary.

use crate::validator::{ColumnValidator, InferredRule};
use std::collections::HashSet;

fn dictionary(train: &[&str]) -> HashSet<String> {
    train.iter().map(|v| v.to_string()).collect()
}

/// Google TensorFlow Data Validation: unconditional dictionary rule.
#[derive(Debug, Default)]
pub struct Tfdv;

impl ColumnValidator for Tfdv {
    fn name(&self) -> &str {
        "TFDV"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if train.is_empty() {
            return None;
        }
        let dict = dictionary(train);
        Some(InferredRule::all_match(
            format!("dictionary({} values)", dict.len()),
            move |v: &str| dict.contains(v),
        ))
    }
}

/// Deequ `CategoricalRangeRule`: dictionary rule, suggested only when the
/// training column looks categorical (low distinct-to-total ratio).
#[derive(Debug)]
pub struct DeequCat {
    /// Maximum distinct/total ratio for the rule to be suggested.
    pub max_distinct_ratio: f64,
}

impl Default for DeequCat {
    fn default() -> Self {
        DeequCat {
            max_distinct_ratio: 0.9,
        }
    }
}

impl ColumnValidator for DeequCat {
    fn name(&self) -> &str {
        "Deequ-Cat"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if train.is_empty() {
            return None;
        }
        let dict = dictionary(train);
        let ratio = dict.len() as f64 / train.len() as f64;
        if ratio > self.max_distinct_ratio {
            return None; // not categorical enough; Deequ stays silent
        }
        Some(InferredRule::all_match(
            format!("categorical-range({} values)", dict.len()),
            move |v: &str| dict.contains(v),
        ))
    }
}

/// Deequ `FractionalCategoricalRangeRule`: at least `min_fraction` of the
/// future values must be in-dictionary.
#[derive(Debug)]
pub struct DeequFra {
    /// Required in-dictionary fraction at validation time.
    pub min_fraction: f64,
}

impl Default for DeequFra {
    fn default() -> Self {
        DeequFra { min_fraction: 0.9 }
    }
}

impl ColumnValidator for DeequFra {
    fn name(&self) -> &str {
        "Deequ-Fra"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        if train.is_empty() {
            return None;
        }
        let dict = dictionary(train);
        Some(InferredRule::tolerant(
            format!("fractional-categorical({} values)", dict.len()),
            1.0 - self.min_fraction,
            move |v: &str| dict.contains(v),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfdv_false_alarms_on_unseen_dates() {
        // The §1 example: March dictionary, April arrivals.
        let train = ["Mar 01 2019", "Mar 02 2019", "Mar 30 2019"];
        let rule = Tfdv.infer(&train).unwrap();
        assert!(rule.passes(["Mar 01 2019", "Mar 02 2019"]));
        assert!(
            !rule.passes(["Apr 01 2019"]),
            "dictionary rules false-alarm"
        );
    }

    #[test]
    fn deequ_cat_declines_high_cardinality_columns() {
        let unique: Vec<String> = (0..100).map(|i| format!("id-{i}")).collect();
        let refs: Vec<&str> = unique.iter().map(String::as_str).collect();
        assert!(DeequCat::default().infer(&refs).is_none());
        let categorical = ["US", "UK", "US", "DE", "US", "UK", "DE", "US", "UK", "DE"];
        assert!(DeequCat::default().infer(&categorical).is_some());
    }

    #[test]
    fn deequ_fra_tolerates_small_novelty() {
        let train: Vec<String> = (0..50).map(|i| format!("c{}", i % 5)).collect();
        let refs: Vec<&str> = train.iter().map(String::as_str).collect();
        let rule = DeequFra::default().infer(&refs).unwrap();
        // 5% novel values: passes.
        let mut future: Vec<String> = (0..95).map(|i| format!("c{}", i % 5)).collect();
        future.extend((0..5).map(|i| format!("new{i}")));
        assert!(rule.passes(&future));
        // 50% novel values: fails.
        let mut drifted: Vec<String> = (0..50).map(|i| format!("c{}", i % 5)).collect();
        drifted.extend((0..50).map(|i| format!("new{i}")));
        assert!(!rule.passes(&drifted));
    }

    #[test]
    fn empty_training_declines() {
        assert!(Tfdv.infer(&[]).is_none());
        assert!(DeequCat::default().infer(&[]).is_none());
        assert!(DeequFra::default().infer(&[]).is_none());
    }
}
