//! Schema-matching baselines (§5.2): broaden the training sample with
//! "related" corpus columns before profiling, instead of reasoning about
//! pattern goodness like Auto-Validate does.
//!
//! * **SM-I-k** (instance-based): any corpus column sharing more than `k`
//!   distinct values with the training sample joins the training data.
//! * **SM-P-M / SM-P-P** (pattern-based): corpus columns whose
//!   majority/plurality coarse pattern equals the training sample's.
//!
//! Profiling of the augmented sample uses Potter's Wheel, the strongest
//! profiler in the paper's experiments.

use crate::profilers::PottersWheel;
use crate::validator::{ColumnValidator, InferredRule};
use av_corpus::Corpus;
use av_pattern::{coarse_pattern, Pattern};
use std::collections::HashMap;
use std::sync::Arc;

/// Cap on corpus values appended per matched column (keeps augmentation
/// and profiling costs bounded).
const VALUES_PER_MATCH: usize = 50;
/// Cap on matched corpus columns used for augmentation.
const MAX_MATCHES: usize = 50;

/// Preprocessed corpus hand-off shared by the schema-matching validators.
pub struct SchemaMatchCorpus {
    /// Distinct value → ids of columns containing it.
    value_index: HashMap<String, Vec<u32>>,
    /// Majority coarse pattern (> 50% of values) → column ids.
    majority_index: HashMap<Pattern, Vec<u32>>,
    /// Plurality coarse pattern (most common) → column ids.
    plurality_index: HashMap<Pattern, Vec<u32>>,
    /// Column id → sampled values.
    columns: Vec<Vec<String>>,
}

impl SchemaMatchCorpus {
    /// Index a corpus for schema matching. Values per column are capped to
    /// keep the inverted index bounded.
    pub fn new(corpus: &Corpus) -> Arc<SchemaMatchCorpus> {
        const DISTINCT_CAP: usize = 200;
        let mut value_index: HashMap<String, Vec<u32>> = HashMap::new();
        let mut majority_index: HashMap<Pattern, Vec<u32>> = HashMap::new();
        let mut plurality_index: HashMap<Pattern, Vec<u32>> = HashMap::new();
        let mut columns: Vec<Vec<String>> = Vec::new();
        for col in corpus.columns() {
            let id = columns.len() as u32;
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for v in col.values.iter() {
                if seen.len() >= DISTINCT_CAP {
                    break;
                }
                if seen.insert(v.as_str(), ()).is_none() {
                    value_index.entry(v.clone()).or_default().push(id);
                }
            }
            // Coarse-pattern census for the pattern-based variants.
            let mut census: HashMap<Pattern, usize> = HashMap::new();
            for v in col.values.iter().take(DISTINCT_CAP) {
                *census.entry(coarse_pattern(v)).or_insert(0) += 1;
            }
            let total: usize = census.values().sum();
            if let Some((top, top_count)) = census
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(p, c)| (p.clone(), *c))
            {
                plurality_index.entry(top.clone()).or_default().push(id);
                if top_count * 2 > total {
                    majority_index.entry(top).or_default().push(id);
                }
            }
            columns.push(col.values.iter().take(VALUES_PER_MATCH).cloned().collect());
        }
        Arc::new(SchemaMatchCorpus {
            value_index,
            majority_index,
            plurality_index,
            columns,
        })
    }

    /// Borrowed augmentation: the training refs plus sampled refs into the
    /// preprocessed corpus — no value is copied.
    fn augment<'a>(&'a self, train: &[&'a str], matched: Vec<u32>) -> Vec<&'a str> {
        let mut out: Vec<&'a str> = train.to_vec();
        for id in matched.into_iter().take(MAX_MATCHES) {
            out.extend(self.columns[id as usize].iter().map(String::as_str));
        }
        out
    }

    fn instance_matches(&self, train: &[&str], k: usize) -> Vec<u32> {
        let mut overlap: HashMap<u32, usize> = HashMap::new();
        let mut distinct: Vec<&str> = train.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for v in distinct {
            if let Some(ids) = self.value_index.get(v) {
                for id in ids {
                    *overlap.entry(*id).or_insert(0) += 1;
                }
            }
        }
        let mut ids: Vec<u32> = overlap
            .into_iter()
            .filter(|(_, c)| *c > k)
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn pattern_matches(&self, train: &[&str], majority: bool) -> Vec<u32> {
        let mut census: HashMap<Pattern, usize> = HashMap::new();
        for v in train {
            *census.entry(coarse_pattern(v)).or_insert(0) += 1;
        }
        let Some((top, top_count)) = census
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(p, c)| (p.clone(), *c))
        else {
            return Vec::new();
        };
        if majority {
            if top_count * 2 <= train.len() {
                return Vec::new();
            }
            self.majority_index.get(&top).cloned().unwrap_or_default()
        } else {
            self.plurality_index.get(&top).cloned().unwrap_or_default()
        }
    }
}

/// Instance-based schema matching with overlap threshold `k` (SM-I-1 and
/// SM-I-10 in the paper).
pub struct SmInstance {
    corpus: Arc<SchemaMatchCorpus>,
    k: usize,
    name: String,
}

impl SmInstance {
    /// Build with overlap threshold `k`.
    pub fn new(corpus: Arc<SchemaMatchCorpus>, k: usize) -> SmInstance {
        SmInstance {
            corpus,
            k,
            name: format!("SM-I-{k}"),
        }
    }
}

impl ColumnValidator for SmInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        let matched = self.corpus.instance_matches(train, self.k);
        let augmented = self.corpus.augment(train, matched);
        PottersWheel.infer(&augmented)
    }
}

/// Pattern-based schema matching: majority (SM-P-M) or plurality (SM-P-P).
pub struct SmPattern {
    corpus: Arc<SchemaMatchCorpus>,
    majority: bool,
    name: &'static str,
}

impl SmPattern {
    /// Majority variant (SM-P-M).
    pub fn majority(corpus: Arc<SchemaMatchCorpus>) -> SmPattern {
        SmPattern {
            corpus,
            majority: true,
            name: "SM-P-M",
        }
    }

    /// Plurality variant (SM-P-P).
    pub fn plurality(corpus: Arc<SchemaMatchCorpus>) -> SmPattern {
        SmPattern {
            corpus,
            majority: false,
            name: "SM-P-P",
        }
    }
}

impl ColumnValidator for SmPattern {
    fn name(&self) -> &str {
        self.name
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        let matched = self.corpus.pattern_matches(train, self.majority);
        let augmented = self.corpus.augment(train, matched);
        PottersWheel.infer(&augmented)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, LakeProfile};

    fn small_corpus() -> Arc<SchemaMatchCorpus> {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(400), 3);
        SchemaMatchCorpus::new(&corpus)
    }

    #[test]
    fn augmentation_generalizes_beyond_train() {
        let sm = small_corpus();
        // March-only training sample; corpus date columns span all months,
        // so the augmented profile must not pin "Mar"… if any column in the
        // corpus shares instances. Use the pattern-based variant which only
        // needs structural agreement.
        let train: Vec<String> = (1..=9).map(|d| format!("Mar {d:02} 2019")).collect();
        let refs: Vec<&str> = train.iter().map(String::as_str).collect();
        let validator = SmPattern::plurality(sm);
        let rule = validator.infer(&refs).expect("rule");
        // The augmented training data covers other months, so April passes.
        assert!(rule.passes(["Apr 03 2021"]), "{}", rule.description);
    }

    #[test]
    fn instance_overlap_requires_shared_values() {
        let sm = small_corpus();
        let v1 = SmInstance::new(sm.clone(), 1);
        // A synthetic vocabulary that cannot overlap with the corpus.
        let train: Vec<String> = (0..20).map(|i| format!("zq{i}zq")).collect();
        let refs: Vec<&str> = train.iter().map(String::as_str).collect();
        let rule = v1.infer(&refs).expect("falls back to plain PWheel");
        // Without matches, augmentation is a no-op: behaves like PWheel.
        let pw = PottersWheel.infer(&refs).unwrap();
        assert_eq!(rule.description, pw.description);
    }

    #[test]
    fn names_match_paper() {
        let sm = small_corpus();
        assert_eq!(SmInstance::new(sm.clone(), 1).name(), "SM-I-1");
        assert_eq!(SmInstance::new(sm.clone(), 10).name(), "SM-I-10");
        assert_eq!(SmPattern::majority(sm.clone()).name(), "SM-P-M");
        assert_eq!(SmPattern::plurality(sm).name(), "SM-P-P");
    }
}
