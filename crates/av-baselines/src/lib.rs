//! # av-baselines — every method Auto-Validate is compared against (§5.2)
//!
//! Faithful re-implementations of the *rules each tool infers for
//! string-valued columns*, behind one [`ColumnValidator`] interface:
//!
//! | family | methods |
//! |---|---|
//! | dictionary validators | [`Tfdv`], [`DeequCat`], [`DeequFra`] |
//! | pattern profilers | [`PottersWheel`], [`Ssis`], [`XSystem`], [`FlashProfile`] |
//! | curated types | [`Grok`] |
//! | schema matching | [`SmInstance`] (SM-I-1/10), [`SmPattern`] (SM-P-M/P) |
//! | upper bounds | [`fd_recall_upper_bound`] (FD-UB), [`ad_recall_upper_bound`] (AD-UB) |
//! | user study | [`SimulatedProgrammer`] (Table 3) |

mod bounds;
mod dictionary;
mod grok;
mod profile;
mod profilers;
mod programmer;
mod schema_matching;
mod validator;

pub use bounds::{ad_recall_upper_bound, common_patterns, fd_participates, fd_recall_upper_bound};
pub use dictionary::{DeequCat, DeequFra, Tfdv};
pub use grok::{Grok, GROK_PATTERNS};
pub use profilers::{FlashProfile, PottersWheel, Ssis, XSystem};
pub use programmer::{study_panel, SimulatedProgrammer, Skill};
pub use schema_matching::{SchemaMatchCorpus, SmInstance, SmPattern};
pub use validator::{baseline_by_name, baseline_names, ColumnValidator, InferredRule};
