//! The common interface all compared methods implement (§5.2).
//!
//! Following the paper's methodology (§5.1): each method observes
//! `C_train`, optionally infers a rule, and the rule is then asked to
//! *pass or fail* future columns — `C_test` from the same column (failing
//! it is a false positive) and other columns `C_j, j ≠ i` (passing them is
//! a recall loss).
//!
//! Inferred rules are plain [`av_core::Validator`]s: single-value `check`,
//! zero-copy `validate_batch`, and streaming sessions all work on baseline
//! rules exactly as they do on FMDV rules, so the evaluation harness and
//! the validation service dispatch every method through one `dyn Validator`.

use av_core::{CheckScratch, Report, Tally, ValidationSession, Validator, Verdict};

/// A rule inferred from training data, applied to future columns.
///
/// Internally a boxed [`Validator`] — either a wrapped per-value predicate
/// (the classic baseline shape) or any richer rule such as an FMDV
/// [`av_core::ValidationRule`] handed in via
/// [`InferredRule::from_validator`].
pub struct InferredRule {
    /// Human-readable description (pattern, dictionary size, ...).
    pub description: String,
    inner: Box<dyn Validator>,
}

impl InferredRule {
    /// Wrap a per-value predicate; the column fails when *any* value
    /// non-conforms (the strict profile-and-match semantics most baselines
    /// use).
    pub fn all_match(
        description: impl Into<String>,
        check: impl Fn(&str) -> bool + Send + Sync + 'static,
    ) -> InferredRule {
        InferredRule::tolerant(description, 0.0, check)
    }

    /// Wrap a per-value predicate with a tolerance: the column fails when
    /// the non-conforming fraction exceeds `max_nonconforming` (e.g.
    /// Deequ's fractional dictionary rule).
    pub fn tolerant(
        description: impl Into<String>,
        max_nonconforming: f64,
        check: impl Fn(&str) -> bool + Send + Sync + 'static,
    ) -> InferredRule {
        let description = description.into();
        InferredRule {
            inner: Box::new(Predicate {
                description: description.clone(),
                max_nonconforming,
                check: Box::new(check),
            }),
            description,
        }
    }

    /// Adopt any validator (e.g. an FMDV rule) as an inferred rule, with
    /// its own description.
    pub fn from_validator<V: Validator + 'static>(validator: V) -> InferredRule {
        InferredRule {
            description: validator.describe(),
            inner: Box::new(validator),
        }
    }

    /// Does the future column pass validation (no alarm)? Streams any
    /// borrowed iterator — nothing is copied per value.
    pub fn passes<I>(&self, column: I) -> bool
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut session = ValidationSession::new(&*self.inner);
        for v in column {
            session.push(v.as_ref());
        }
        !session.finish().flagged
    }

    /// Borrow the underlying validator for dynamic dispatch.
    pub fn validator(&self) -> &dyn Validator {
        &*self.inner
    }
}

impl Validator for InferredRule {
    fn describe(&self) -> String {
        self.description.clone()
    }

    fn check(&self, value: &str) -> Verdict {
        self.inner.check(value)
    }

    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        self.inner.check_with(value, scratch)
    }

    fn finish(&self, tally: Tally) -> Report {
        self.inner.finish(tally)
    }
}

impl std::fmt::Debug for InferredRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InferredRule({})", self.description)
    }
}

/// A per-value predicate with a column-level tolerance threshold. The
/// deterministic stand-in for the §4 statistical test: the "p-value" is 0
/// when flagged and 1 otherwise (baselines have no distributional model).
struct Predicate {
    description: String,
    max_nonconforming: f64,
    check: Box<dyn Fn(&str) -> bool + Send + Sync>,
}

impl Validator for Predicate {
    fn describe(&self) -> String {
        self.description.clone()
    }

    fn check(&self, value: &str) -> Verdict {
        Verdict::conforming((self.check)(value))
    }

    fn finish(&self, tally: Tally) -> Report {
        let frac = tally.fraction();
        // The epsilon keeps boundary columns (exactly at the tolerance) on
        // the passing side, matching `hits/len >= min_fraction` semantics.
        let flagged = tally.checked > 0 && frac > self.max_nonconforming + 1e-12;
        Report {
            checked: tally.checked,
            nonconforming: tally.nonconforming,
            nonconforming_frac: frac,
            p_value: if flagged { 0.0 } else { 1.0 },
            flagged,
        }
    }
}

/// A validation method under comparison.
pub trait ColumnValidator: Send + Sync {
    /// Display name matching the paper's figures (e.g. "PWheel", "TFDV").
    fn name(&self) -> &str;
    /// Learn a rule from (borrowed) training values; `None` when the method
    /// declines to produce a rule for this column (treated as
    /// pass-everything: perfect precision, zero recall).
    fn infer(&self, train: &[&str]) -> Option<InferredRule>;
}

/// The single source of truth for the corpus-free baseline registry:
/// canonical name → constructor. [`baseline_by_name`] and
/// [`baseline_names`] both read this table, so they cannot drift apart.
/// The schema-matching and programmer-study methods need extra context
/// (a corpus / a seed) and are not constructible by name.
type BaselineFactory = fn() -> Box<dyn ColumnValidator>;
static BASELINES: &[(&str, BaselineFactory)] = &[
    ("tfdv", || Box::new(crate::Tfdv)),
    ("deequ-cat", || Box::new(crate::DeequCat::default())),
    ("deequ-fra", || Box::new(crate::DeequFra::default())),
    ("pwheel", || Box::new(crate::PottersWheel)),
    ("ssis", || Box::new(crate::Ssis)),
    ("xsystem", || Box::new(crate::XSystem::default())),
    ("flashprofile", || Box::new(crate::FlashProfile::default())),
    ("grok", || Box::new(crate::Grok::default())),
];

/// Look up a corpus-free baseline by its paper name (case-insensitive, with
/// a few aliases), for serving baselines behind `dyn Validator` (e.g. over
/// the service protocol).
pub fn baseline_by_name(name: &str) -> Option<Box<dyn ColumnValidator>> {
    let lower = name.to_ascii_lowercase();
    let canonical = match lower.as_str() {
        "potters-wheel" => "pwheel",
        other => other,
    };
    BASELINES
        .iter()
        .find(|(n, _)| *n == canonical)
        .map(|(_, make)| make())
}

/// The canonical names [`baseline_by_name`] accepts, in display order.
pub fn baseline_names() -> impl Iterator<Item = &'static str> {
    BASELINES.iter().map(|(name, _)| *name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_wraps_predicate() {
        let rule = InferredRule::all_match("len<=3", |v: &str| v.len() <= 3);
        assert!(rule.passes(["ab", "abc"]));
        assert!(!rule.passes(["abcd"]));
        assert_eq!(rule.description, "len<=3");
        assert!(rule.passes(Vec::<&str>::new()), "empty columns pass");
    }

    #[test]
    fn tolerant_rule_uses_fraction_threshold() {
        let rule = InferredRule::tolerant("mostly-digits", 0.25, |v: &str| {
            v.bytes().all(|b| b.is_ascii_digit())
        });
        assert!(rule.passes(["1", "2", "3", "x"]), "25% failures tolerated");
        assert!(!rule.passes(["1", "x", "y"]));
    }

    #[test]
    fn rules_are_validators() {
        let rule = InferredRule::all_match("digits", |v: &str| {
            !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit())
        });
        assert!(rule.check("42").is_conform());
        assert!(!rule.check("4x").is_conform());
        let report = rule.validate_batch(["1", "2", "oops"]);
        assert!(report.flagged);
        assert_eq!(report.nonconforming, 1);
        // Streaming and batch agree bit-for-bit.
        let mut session = rule.session();
        session.extend(["1", "2", "oops"]);
        assert_eq!(session.finish(), report);
        // And the rule dispatches as a dyn Validator.
        let dynamic: &dyn Validator = rule.validator();
        assert!(dynamic.check("7").is_conform());
    }

    #[test]
    fn baseline_registry_resolves_paper_names() {
        let mut count = 0;
        for name in baseline_names() {
            let v = baseline_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!v.name().is_empty());
            count += 1;
        }
        assert!(count >= 8);
        assert!(baseline_by_name("TFDV").is_some(), "case-insensitive");
        assert!(baseline_by_name("Potters-Wheel").is_some(), "alias");
        assert!(baseline_by_name("sm-i-1").is_none(), "needs a corpus");
    }
}
