//! The common interface all compared methods implement (§5.2).
//!
//! Following the paper's methodology (§5.1): each method observes
//! `C_train`, optionally infers a rule, and the rule is then asked to
//! *pass or fail* future columns — `C_test` from the same column (failing
//! it is a false positive) and other columns `C_j, j ≠ i` (passing them is
//! a recall loss).

/// A pass/fail predicate over a column's values.
type CheckFn = Box<dyn Fn(&[String]) -> bool + Send + Sync>;

/// A rule inferred from training data, applied to future columns.
pub struct InferredRule {
    /// Human-readable description (pattern, dictionary size, ...).
    pub description: String,
    check: CheckFn,
}

impl InferredRule {
    /// Wrap a pass/fail predicate.
    pub fn new(
        description: impl Into<String>,
        check: impl Fn(&[String]) -> bool + Send + Sync + 'static,
    ) -> InferredRule {
        InferredRule {
            description: description.into(),
            check: Box::new(check),
        }
    }

    /// Does the future column pass validation (no alarm)?
    pub fn passes(&self, column: &[String]) -> bool {
        (self.check)(column)
    }
}

impl std::fmt::Debug for InferredRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InferredRule({})", self.description)
    }
}

/// A validation method under comparison.
pub trait ColumnValidator: Send + Sync {
    /// Display name matching the paper's figures (e.g. "PWheel", "TFDV").
    fn name(&self) -> &str;
    /// Learn a rule from training values; `None` when the method declines
    /// to produce a rule for this column (treated as pass-everything:
    /// perfect precision, zero recall).
    fn infer(&self, train: &[String]) -> Option<InferredRule>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_wraps_predicate() {
        let rule = InferredRule::new("len<=3", |col: &[String]| col.iter().all(|v| v.len() <= 3));
        assert!(rule.passes(&["ab".into(), "abc".into()]));
        assert!(!rule.passes(&["abcd".into()]));
        assert_eq!(rule.description, "len<=3");
    }
}
