//! Property-based tests for the corpus substrate: every generator must
//! stay consistent with its own ground truth under all seeds and times.

use av_corpus::{generate_lake, kaggle_tasks, machine_domains, Benchmark, LakeProfile};
use av_pattern::matches;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every machine domain's samples match its ground truth at every
    /// drift time t — the temporal window must never escape the domain.
    #[test]
    fn samples_match_ground_truth_at_all_times(seed in 0u64..10_000, t in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for d in machine_domains() {
            let gt = d.ground_truth().expect("machine domains carry ground truth");
            let v = d.sample_at(&mut rng, t);
            prop_assert!(matches(&gt, &v), "{} at t={t}: {gt} !~ {v:?}", d.name());
        }
    }

    /// Lakes are seed-deterministic and structurally sound: row-aligned
    /// tables, machine columns conforming to their ground truth up to the
    /// recorded dirty rate.
    #[test]
    fn lake_invariants(seed in 0u64..500) {
        let profile = LakeProfile::tiny().scaled(120);
        let corpus = generate_lake(&profile, seed);
        prop_assert!(corpus.num_columns() >= 120);
        for table in &corpus.tables {
            let rows = table.columns[0].len();
            for col in &table.columns {
                prop_assert_eq!(col.len(), rows, "row alignment in {}", table.name);
            }
        }
        for col in corpus.columns() {
            if let Some(gt) = &col.meta.ground_truth {
                let bad = col.values.iter().filter(|v| !matches(gt, v)).count();
                let allowed = (col.meta.dirty_rate * col.len() as f64).round() as usize;
                prop_assert!(
                    bad <= allowed,
                    "{}: {} nonconforming but dirty_rate allows {}",
                    col.name, bad, allowed
                );
            }
        }
    }

    /// Benchmarks split 10/90 and never invent values.
    #[test]
    fn benchmark_invariants(seed in 0u64..200) {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(150), seed);
        let bench = Benchmark::sample(&corpus, 30, 20, 100, seed);
        for case in &bench.cases {
            let total = case.train.len() + case.test.len();
            prop_assert!(total <= 100);
            prop_assert_eq!(case.train.len(), (total / 10).max(1));
            // Train + test is a prefix of the source column.
            let rebuilt: Vec<&String> = case.train.iter().chain(case.test.iter()).collect();
            let source: Vec<&String> = case.column.values.iter().take(total).collect();
            prop_assert_eq!(rebuilt, source);
        }
    }

    /// Kaggle tasks: swapping is an involution and clean data round-trips.
    #[test]
    fn kaggle_swap_involution(seed in 0u64..200) {
        for task in kaggle_tasks(40, 20, seed) {
            let once = task.with_swapped_test_cats(0, 1);
            let twice = once.with_swapped_test_cats(0, 1);
            prop_assert_eq!(&twice.cat_test, &task.cat_test);
            prop_assert_eq!(&once.cat_train, &task.cat_train, "train never changes");
        }
    }
}
