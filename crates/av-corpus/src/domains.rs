//! The domain catalog: ~40 machine-generated domains modeled on the
//! proprietary formats of the paper's Fig. 3 (knowledge-base entity ids,
//! ads delivery statuses, timestamps in proprietary formats, ...) plus
//! natural-language domains for the ~33% of columns where pattern methods
//! do not apply.

use crate::domain::{Domain, Part, SpecDomain};
use av_pattern::Pattern;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

const MONTHS3: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const WEEKDAYS3: &[&str] = &["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
const AMPM: &[&str] = &["AM", "PM"];
const COUNTRY2: &[&str] = &["US", "UK", "DE", "JP", "FR", "BR", "IN", "CA", "AU", "NL"];
const ADS_STATUS: &[&str] = &[
    "Delivered",
    "Pending",
    "Throttled",
    "Rejected",
    "OnBooking",
    "Paused",
    "Archived",
    "Serving",
];
const BOOLS: &[&str] = &["true", "false"];
const ORDER_STATUS: &[&str] = &[
    "Created",
    "Packed",
    "Shipped",
    "InTransit",
    "Arrived",
    "Returned",
];
const ENVIRONMENTS: &[&str] = &["prod", "staging", "dev", "test", "canary"];
const SEVERITIES: &[&str] = &["LOW", "MEDIUM", "HIGH", "CRITICAL"];
const LOG_LEVELS: &[&str] = &["TRACE", "DEBUG", "INFO", "WARN", "ERROR", "FATAL"];
const DEVICE_TYPES: &[&str] = &["desktop", "mobile", "tablet", "bot", "tv", "console"];
const PAYMENT_METHODS: &[&str] = &["Card", "Invoice", "Wallet", "Transfer", "Voucher"];
const TIERS: &[&str] = &["Free", "Basic", "Plus", "Premium", "Enterprise"];
const COLORS: &[&str] = &["red", "green", "blue", "black", "white", "silver", "gold"];
const UNITS: &[&str] = &["ms", "sec", "min", "hour", "day", "week"];
const BROWSERS: &[&str] = &["Chrome", "Edge", "Firefox", "Safari", "Opera"];
const HTTP_METHODS: &[&str] = &["GET", "PUT", "POST", "HEAD"];
const TLDS: &[&str] = &["com", "org", "net", "dev"];

/// Build the full catalog of machine-generated domains.
///
/// Every domain is deterministic given the caller's RNG and carries a
/// derived ground-truth validation pattern.
pub fn machine_domains() -> Vec<Arc<dyn Domain>> {
    use Part::*;
    /// Domains with a temporally-drifting part (the paper's data-drift
    /// mechanism: a March training window must generalize to April), and
    /// which part index drifts.
    const DRIFT: &[(&str, usize)] = &[
        ("date-month-name", 0),
        ("datetime-us", 0),
        ("date-iso", 2),
        ("datetime-iso", 2),
        ("timestamp-padded", 0),
        ("unix-epoch", 0),
        ("epoch-millis", 0),
        ("month-year", 0),
        ("weekday-date", 4),
        ("quarter-tag", 2),
        ("build-tag", 1),
        ("semver-v", 3),
        ("version-dotted", 2),
        ("invoice-id", 1),
    ];
    let mut out: Vec<Arc<dyn Domain>> = Vec::new();
    let mut push = |name: &str, parts: Vec<Part>| {
        let mut d = SpecDomain::new(name, parts);
        if let Some((_, i)) = DRIFT.iter().find(|(n, _)| *n == name) {
            d = d.with_drift(*i);
        }
        out.push(Arc::new(d));
    };

    // --- Dates and times (the paper's running examples C1 / C2) ---
    push(
        "date-month-name", // "Mar 01 2019" (Fig. 2a)
        vec![
            Choice(MONTHS3),
            Const(" "),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
            Const(" "),
            Int { lo: 2010, hi: 2029 },
        ],
    );
    push(
        "datetime-us", // "9/07/2019 12:01:32 PM" (Fig. 2b)
        vec![
            Int { lo: 1, hi: 12 },
            Const("/"),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
            Const("/"),
            Int { lo: 2010, hi: 2029 },
            Const(" "),
            Int { lo: 1, hi: 12 },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const(" "),
            Choice(AMPM),
        ],
    );
    push(
        "date-iso",
        vec![
            Int { lo: 2010, hi: 2029 },
            Const("-"),
            Padded {
                width: 2,
                lo: 1,
                hi: 12,
            },
            Const("-"),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
        ],
    );
    push(
        "datetime-iso",
        vec![
            Int { lo: 2010, hi: 2029 },
            Const("-"),
            Padded {
                width: 2,
                lo: 1,
                hi: 12,
            },
            Const("-"),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
            Const("T"),
            Padded {
                width: 2,
                lo: 0,
                hi: 23,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const("Z"),
        ],
    );
    push(
        "timestamp-padded", // "02/18/2015 00:00:00" (Fig. 8 segment)
        vec![
            Padded {
                width: 2,
                lo: 1,
                hi: 12,
            },
            Const("/"),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
            Const("/"),
            Int { lo: 2010, hi: 2029 },
            Const(" "),
            Padded {
                width: 2,
                lo: 0,
                hi: 23,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
        ],
    );
    push(
        "time-24h",
        vec![
            Padded {
                width: 2,
                lo: 0,
                hi: 23,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
            Const(":"),
            Padded {
                width: 2,
                lo: 0,
                hi: 59,
            },
        ],
    );
    push(
        "unix-epoch",
        vec![Int {
            lo: 1_400_000_000,
            hi: 1_699_999_999,
        }],
    );
    push(
        "epoch-millis",
        vec![Int {
            lo: 1_400_000_000_000,
            hi: 1_699_999_999_999,
        }],
    );
    push("date-compact", vec![DigitsFixed(8)]);
    push(
        "month-year",
        vec![Choice(MONTHS3), Const("-"), Int { lo: 2010, hi: 2029 }],
    );
    push(
        "weekday-date",
        vec![
            Choice(WEEKDAYS3),
            Const(", "),
            Padded {
                width: 2,
                lo: 1,
                hi: 28,
            },
            Const(" "),
            Choice(MONTHS3),
            Const(" "),
            Int { lo: 2010, hi: 2029 },
        ],
    );
    push(
        "quarter-tag",
        vec![
            Int { lo: 2010, hi: 2029 },
            Const("-Q"),
            Int { lo: 1, hi: 4 },
        ],
    );

    // --- Network / machine identifiers ---
    push(
        "ipv4",
        vec![
            Int { lo: 1, hi: 255 },
            Const("."),
            Int { lo: 0, hi: 255 },
            Const("."),
            Int { lo: 0, hi: 255 },
            Const("."),
            Int { lo: 1, hi: 255 },
        ],
    );
    push(
        "mac-address",
        vec![
            HexLower(2),
            Const(":"),
            HexLower(2),
            Const(":"),
            HexLower(2),
            Const(":"),
            HexLower(2),
            Const(":"),
            HexLower(2),
            Const(":"),
            HexLower(2),
        ],
    );
    push(
        "guid",
        vec![
            HexLower(8),
            Const("-"),
            HexLower(4),
            Const("-"),
            HexLower(4),
            Const("-"),
            HexLower(4),
            Const("-"),
            HexLower(12),
        ],
    );
    push(
        "guid-upper",
        vec![
            HexUpper(8),
            Const("-"),
            HexUpper(4),
            Const("-"),
            HexUpper(4),
            Const("-"),
            HexUpper(4),
            Const("-"),
            HexUpper(12),
        ],
    );
    push("hex-id-16", vec![HexLower(16)]);
    push("hash-sha1-like", vec![HexLower(40)]);
    push(
        "kb-entity-id", // Bing knowledge-base ids, Fig. 3 first column
        vec![Const("/m/0"), AlnumVar(5, 7)],
    );
    push(
        "url-https",
        vec![
            Const("https://"),
            LowerVar(4, 10),
            Const("."),
            Choice(TLDS),
            Const("/"),
            LowerVar(3, 8),
        ],
    );
    push(
        "email",
        vec![
            LowerVar(3, 9),
            Const("@"),
            LowerVar(4, 8),
            Const("."),
            Choice(TLDS),
        ],
    );
    push(
        "version-dotted",
        vec![
            Int { lo: 0, hi: 20 },
            Const("."),
            Int { lo: 0, hi: 40 },
            Const("."),
            Int { lo: 0, hi: 9999 },
        ],
    );
    push(
        "semver-v",
        vec![
            Const("v"),
            Int { lo: 1, hi: 9 },
            Const("."),
            Int { lo: 0, hi: 30 },
        ],
    );
    push(
        "build-tag",
        vec![
            Const("build-"),
            Int {
                lo: 1000,
                hi: 99999,
            },
        ],
    );
    push(
        "session-id", // Fig. 3-style proprietary session ids
        vec![
            AlnumVar(7, 7),
            Const("-"),
            AlnumVar(3, 3),
            Const("-"),
            AlnumVar(5, 5),
        ],
    );
    push(
        "http-request",
        vec![
            Choice(HTTP_METHODS),
            Const(" /"),
            LowerVar(3, 9),
            Const(" HTTP/1.1"),
        ],
    );

    // --- Business codes ---
    push(
        "product-sku",
        vec![UpperFixed(3), Const("-"), DigitsFixed(5)],
    );
    push("order-id", vec![Const("ORD"), DigitsFixed(8)]);
    push(
        "invoice-id",
        vec![
            Const("INV-"),
            Int { lo: 2015, hi: 2025 },
            Const("-"),
            DigitsFixed(6),
        ],
    );
    push(
        "currency-usd",
        vec![
            Const("$"),
            Int { lo: 1, hi: 9999 },
            Const("."),
            DigitsFixed(2),
        ],
    );
    push("percentage", vec![Int { lo: 0, hi: 100 }, Const("%")]);
    push("locale", vec![LowerFixed(2), Const("-"), UpperFixed(2)]);
    push("country-code", vec![Choice(COUNTRY2)]);
    push("ads-delivery-status", vec![Choice(ADS_STATUS)]);
    push("http-status", vec![Int { lo: 100, hi: 599 }]);
    push("zip-code", vec![DigitsFixed(5)]);
    push(
        "zip-plus4",
        vec![DigitsFixed(5), Const("-"), DigitsFixed(4)],
    );
    push(
        "phone-us",
        vec![
            Const("("),
            DigitsFixed(3),
            Const(") "),
            DigitsFixed(3),
            Const("-"),
            DigitsFixed(4),
        ],
    );
    push(
        "latitude",
        vec![Int { lo: 0, hi: 89 }, Const("."), DigitsFixed(4)],
    );
    push("metric-float", vec![Float { int_hi: 9, frac: 2 }]);
    push(
        "big-float",
        vec![Float {
            int_hi: 99999,
            frac: 3,
        }],
    );
    push("flight-no", vec![UpperFixed(2), DigitsVar(3, 4)]);
    push("boolean", vec![Choice(BOOLS)]);
    // Word/enum domains — extremely common in real lakes (status flags,
    // environments, log levels, ...); they give `<letter>+`-family patterns
    // the clean corpus evidence they need.
    push("order-status", vec![Choice(ORDER_STATUS)]);
    push("environment", vec![Choice(ENVIRONMENTS)]);
    push("severity", vec![Choice(SEVERITIES)]);
    push("log-level", vec![Choice(LOG_LEVELS)]);
    push("device-type", vec![Choice(DEVICE_TYPES)]);
    push("payment-method", vec![Choice(PAYMENT_METHODS)]);
    push("subscription-tier", vec![Choice(TIERS)]);
    push("color-name", vec![Choice(COLORS)]);
    push("time-unit", vec![Choice(UNITS)]);
    push("browser-name", vec![Choice(BROWSERS)]);
    push(
        "unix-path",
        vec![Const("/var/log/"), LowerVar(3, 8), Const(".log")],
    );
    push(
        "win-path",
        vec![Const("C:\\data\\"), LowerVar(3, 8), Const(".csv")],
    );
    push("row-key", vec![UpperFixed(1), DigitsFixed(7)]);
    push("int-id", vec![DigitsVar(5, 9)]);
    push("small-count", vec![Int { lo: 0, hi: 99 }]);
    out
}

/// Vocabulary for natural-language columns.
const NL_WORDS: &[&str] = &[
    "acme",
    "global",
    "dynamic",
    "systems",
    "analytics",
    "research",
    "development",
    "sales",
    "marketing",
    "finance",
    "operations",
    "northwind",
    "contoso",
    "fabrikam",
    "engineering",
    "quality",
    "assurance",
    "partner",
    "solutions",
    "consulting",
    "digital",
    "services",
    "platform",
    "enterprise",
    "customer",
    "support",
    "product",
    "design",
    "strategy",
    "data",
    "cloud",
    "mobile",
    "retail",
    "logistics",
    "payments",
    "insurance",
    "health",
    "energy",
    "media",
    "travel",
];

/// A natural-language-like domain: short multi-word phrases with varied
/// casing — pattern-based validators should refuse to produce rules here.
#[derive(Debug)]
pub struct NaturalLanguageDomain {
    name: String,
    min_words: usize,
    max_words: usize,
    capitalize: bool,
}

impl NaturalLanguageDomain {
    /// Create an NL domain producing `min_words..=max_words` phrases.
    pub fn new(
        name: impl Into<String>,
        min_words: usize,
        max_words: usize,
        capitalize: bool,
    ) -> Self {
        NaturalLanguageDomain {
            name: name.into(),
            min_words,
            max_words,
            capitalize,
        }
    }
}

impl Domain for NaturalLanguageDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, rng: &mut StdRng) -> String {
        let n = rng.random_range(self.min_words..=self.max_words);
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            let w = NL_WORDS[rng.random_range(0..NL_WORDS.len())];
            if self.capitalize {
                let mut cs = w.chars();
                if let Some(first) = cs.next() {
                    out.extend(first.to_uppercase());
                    out.push_str(cs.as_str());
                }
            } else {
                out.push_str(w);
            }
        }
        out
    }

    fn ground_truth(&self) -> Option<Pattern> {
        None
    }

    fn machine_generated(&self) -> bool {
        false
    }
}

/// Natural-language domain catalog.
pub fn natural_language_domains() -> Vec<Arc<dyn Domain>> {
    vec![
        Arc::new(NaturalLanguageDomain::new("company-names", 1, 3, true)),
        Arc::new(NaturalLanguageDomain::new("department-names", 1, 2, true)),
        Arc::new(NaturalLanguageDomain::new("comments", 2, 6, false)),
        Arc::new(NaturalLanguageDomain::new("project-phrases", 2, 4, true)),
    ]
}

/// A composite domain (§3, Fig. 8): atomic domains concatenated with
/// separators, e.g. `"0.1|02/18/2015 00:00:00|OnBooking"`.
pub struct CompositeDomain {
    name: String,
    subdomains: Vec<Arc<dyn Domain>>,
    separator: &'static str,
}

impl CompositeDomain {
    /// Concatenate `subdomains` with `separator`.
    pub fn new(
        name: impl Into<String>,
        subdomains: Vec<Arc<dyn Domain>>,
        separator: &'static str,
    ) -> CompositeDomain {
        assert!(!subdomains.is_empty(), "composite needs at least one part");
        CompositeDomain {
            name: name.into(),
            subdomains,
            separator,
        }
    }
}

impl Domain for CompositeDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (i, d) in self.subdomains.iter().enumerate() {
            if i > 0 {
                out.push_str(self.separator);
            }
            out.push_str(&d.sample(rng));
        }
        out
    }

    fn sample_at(&self, rng: &mut StdRng, t: f64) -> String {
        let mut out = String::new();
        for (i, d) in self.subdomains.iter().enumerate() {
            if i > 0 {
                out.push_str(self.separator);
            }
            out.push_str(&d.sample_at(rng, t));
        }
        out
    }

    fn drifts(&self) -> bool {
        self.subdomains.iter().any(|d| d.drifts())
    }

    fn ground_truth(&self) -> Option<Pattern> {
        let mut pattern = Pattern::empty();
        let sep = Pattern::new(vec![av_pattern::Token::lit(self.separator)]);
        for (i, d) in self.subdomains.iter().enumerate() {
            if i > 0 {
                pattern = pattern.concat(&sep);
            }
            pattern = pattern.concat(&d.ground_truth()?);
        }
        Some(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::matches;
    use rand::SeedableRng;

    #[test]
    fn catalog_sizes() {
        assert!(machine_domains().len() >= 40, "catalog should be broad");
        assert_eq!(natural_language_domains().len(), 4);
    }

    #[test]
    fn every_machine_domain_matches_its_ground_truth() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in machine_domains() {
            let gt = d
                .ground_truth()
                .unwrap_or_else(|| panic!("{} lacks ground truth", d.name()));
            for _ in 0..100 {
                let v = d.sample(&mut rng);
                assert!(matches(&gt, &v), "domain {}: {gt} !~ {v:?}", d.name());
            }
        }
    }

    #[test]
    fn domain_names_are_unique() {
        let mut names: Vec<String> = machine_domains()
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn nl_domains_have_no_ground_truth() {
        for d in natural_language_domains() {
            assert!(d.ground_truth().is_none());
            assert!(!d.machine_generated());
        }
    }

    #[test]
    fn composite_concatenates_ground_truths() {
        let machines = machine_domains();
        let float = machines
            .iter()
            .find(|d| d.name() == "metric-float")
            .unwrap()
            .clone();
        let status = machines
            .iter()
            .find(|d| d.name() == "ads-delivery-status")
            .unwrap()
            .clone();
        let comp = CompositeDomain::new("float|status", vec![float, status], "|");
        let gt = comp.ground_truth().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = comp.sample(&mut rng);
            assert!(matches(&gt, &v), "{gt} !~ {v:?}");
            assert!(v.contains('|'));
        }
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let d = &machine_domains()[0];
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
