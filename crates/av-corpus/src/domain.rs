//! Synthetic data domains: the generators standing in for the proprietary
//! formats of the paper's enterprise data lake (Fig. 3).
//!
//! A [`SpecDomain`] is assembled from [`Part`]s; each part knows how to
//! sample a fragment and which pattern token(s) describe its full value
//! space, so every domain carries a derived **ground-truth validation
//! pattern** — the label the paper's authors hand-curated for Table 2.

use av_pattern::{Pattern, Token};
use rand::rngs::StdRng;
use rand::Rng;

/// A data domain: a named distribution over strings with (usually) a
/// ground-truth validation pattern.
pub trait Domain: Send + Sync {
    /// Stable domain name (used as provenance / recall labels).
    fn name(&self) -> &str;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> String;
    /// The ideal validation pattern for the domain's full value space, if
    /// the domain is pattern-representable (`None` for natural language).
    fn ground_truth(&self) -> Option<Pattern>;
    /// Machine-generated (true) or natural-language-like (false)?
    fn machine_generated(&self) -> bool {
        true
    }
    /// Draw one value at relative time `t ∈ [0, 1]` within a recurring
    /// feed. Temporally-drifting domains (dates, epochs, versions) restrict
    /// the drifting component to a window around `t` — this is what makes
    /// "training on March, validating on April" (the paper's §1 example)
    /// punish over-restrictive rules. Stationary domains ignore `t`.
    fn sample_at(&self, rng: &mut StdRng, _t: f64) -> String {
        self.sample(rng)
    }
    /// Does this domain drift over time?
    fn drifts(&self) -> bool {
        false
    }
}

/// One building block of a [`SpecDomain`].
#[derive(Debug, Clone)]
pub enum Part {
    /// A constant fragment, e.g. a delimiter or a fixed prefix.
    Const(&'static str),
    /// Zero-padded fixed-width integer in `[lo, hi]`, e.g. "07".
    Padded {
        /// Rendered width.
        width: u16,
        /// Minimum value.
        lo: u64,
        /// Maximum value (must fit the width).
        hi: u64,
    },
    /// Variable-width integer in `[lo, hi]`, rendered without padding.
    Int {
        /// Minimum value.
        lo: u64,
        /// Maximum value.
        hi: u64,
    },
    /// Uniform choice from a fixed vocabulary of pure-letter words.
    Choice(&'static [&'static str]),
    /// `width` random lowercase hex characters (letters and digits mix).
    HexLower(u16),
    /// `width` random uppercase hex characters.
    HexUpper(u16),
    /// Fixed-width uppercase letters.
    UpperFixed(u16),
    /// Fixed-width lowercase letters.
    LowerFixed(u16),
    /// Variable-width uppercase letters in `[lo, hi]` chars.
    UpperVar(u16, u16),
    /// Variable-width lowercase letters in `[lo, hi]` chars.
    LowerVar(u16, u16),
    /// Variable-width alphanumeric (lowercase letters + digits, always at
    /// least one of each class mixed) in `[lo, hi]` chars.
    AlnumVar(u16, u16),
    /// Fixed-width random digits (leading zeros allowed), e.g. ids.
    DigitsFixed(u16),
    /// Variable-width digit strings with `[lo, hi]` digits.
    DigitsVar(u16, u16),
    /// Decimal number: integer part in `[0, int_hi]`, exactly `frac` digits.
    Float {
        /// Maximum integer part.
        int_hi: u64,
        /// Fractional digits.
        frac: u16,
    },
}

impl Part {
    fn sample_into(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            Part::Const(s) => out.push_str(s),
            Part::Padded { width, lo, hi } => {
                let v = rng.random_range(*lo..=*hi);
                let s = format!("{:0width$}", v, width = *width as usize);
                out.push_str(&s);
            }
            Part::Int { lo, hi } => {
                let v = rng.random_range(*lo..=*hi);
                out.push_str(&v.to_string());
            }
            Part::Choice(words) => {
                let w = words[rng.random_range(0..words.len())];
                out.push_str(w);
            }
            Part::HexLower(w) => {
                const H: &[u8] = b"0123456789abcdef";
                for _ in 0..*w {
                    out.push(H[rng.random_range(0..16)] as char);
                }
            }
            Part::HexUpper(w) => {
                const H: &[u8] = b"0123456789ABCDEF";
                for _ in 0..*w {
                    out.push(H[rng.random_range(0..16)] as char);
                }
            }
            Part::UpperFixed(w) => {
                for _ in 0..*w {
                    out.push((b'A' + rng.random_range(0..26u8)) as char);
                }
            }
            Part::LowerFixed(w) => {
                for _ in 0..*w {
                    out.push((b'a' + rng.random_range(0..26u8)) as char);
                }
            }
            Part::UpperVar(lo, hi) => {
                let w = rng.random_range(*lo..=*hi);
                for _ in 0..w {
                    out.push((b'A' + rng.random_range(0..26u8)) as char);
                }
            }
            Part::LowerVar(lo, hi) => {
                let w = rng.random_range(*lo..=*hi);
                for _ in 0..w {
                    out.push((b'a' + rng.random_range(0..26u8)) as char);
                }
            }
            Part::AlnumVar(lo, hi) => {
                const A: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
                let w = rng.random_range(*lo..=*hi).max(2);
                // Guarantee a class mix so the segment is genuinely alnum.
                let digit_at = rng.random_range(0..w);
                let letter_at = (digit_at + 1 + rng.random_range(0..w.max(2) - 1)) % w;
                for i in 0..w {
                    if i == digit_at {
                        out.push((b'0' + rng.random_range(0..10u8)) as char);
                    } else if i == letter_at {
                        out.push((b'a' + rng.random_range(0..26u8)) as char);
                    } else {
                        out.push(A[rng.random_range(0..A.len())] as char);
                    }
                }
            }
            Part::DigitsFixed(w) => {
                for _ in 0..*w {
                    out.push((b'0' + rng.random_range(0..10u8)) as char);
                }
            }
            Part::DigitsVar(lo, hi) => {
                let w = rng.random_range(*lo..=*hi);
                // No leading zero so width genuinely varies.
                out.push((b'1' + rng.random_range(0..9u8)) as char);
                for _ in 1..w {
                    out.push((b'0' + rng.random_range(0..10u8)) as char);
                }
            }
            Part::Float { int_hi, frac } => {
                let v = rng.random_range(0..=*int_hi);
                out.push_str(&v.to_string());
                out.push('.');
                for _ in 0..*frac {
                    out.push((b'0' + rng.random_range(0..10u8)) as char);
                }
            }
        }
    }

    /// Ground-truth tokens for this part's full value space, consistent with
    /// how `av-pattern` analyzes the generated values.
    fn ground_truth_tokens(&self) -> Vec<Token> {
        match self {
            Part::Const(s) => vec![Token::lit(*s)],
            Part::Padded { width, .. } => vec![Token::Digit(*width)],
            Part::Int { lo, hi } => {
                let dl = digits(*lo);
                let dh = digits(*hi);
                if dl == dh {
                    vec![Token::Digit(dl)]
                } else {
                    vec![Token::DigitPlus]
                }
            }
            Part::Choice(words) => {
                let first = words.first().expect("non-empty vocabulary");
                let same_width = words
                    .iter()
                    .all(|w| w.chars().count() == first.chars().count());
                let all_upper = words
                    .iter()
                    .all(|w| w.chars().all(|c| c.is_ascii_uppercase()));
                let all_lower = words
                    .iter()
                    .all(|w| w.chars().all(|c| c.is_ascii_lowercase()));
                let w = first.chars().count() as u16;
                vec![match (same_width, all_upper, all_lower) {
                    (true, true, _) => Token::Upper(w),
                    (true, _, true) => Token::Lower(w),
                    (true, false, false) => Token::Letter(w),
                    (false, true, _) => Token::UpperPlus,
                    (false, _, true) => Token::LowerPlus,
                    (false, false, false) => Token::LetterPlus,
                }]
            }
            Part::HexLower(w) | Part::HexUpper(w) => vec![Token::Alnum(*w)],
            Part::UpperFixed(w) => vec![Token::Upper(*w)],
            Part::LowerFixed(w) => vec![Token::Lower(*w)],
            Part::UpperVar(..) => vec![Token::UpperPlus],
            Part::LowerVar(..) => vec![Token::LowerPlus],
            Part::AlnumVar(lo, hi) => {
                if lo == hi {
                    vec![Token::Alnum(*lo)]
                } else {
                    vec![Token::AlnumPlus]
                }
            }
            Part::DigitsFixed(w) => vec![Token::Digit(*w)],
            Part::DigitsVar(lo, hi) => {
                if lo == hi {
                    vec![Token::Digit(*lo)]
                } else {
                    vec![Token::DigitPlus]
                }
            }
            Part::Float { int_hi, frac } => {
                let mut toks = vec![];
                if digits(0) == digits(*int_hi) {
                    toks.push(Token::Digit(1));
                } else {
                    toks.push(Token::DigitPlus);
                }
                toks.push(Token::lit("."));
                toks.push(Token::Digit(*frac));
                toks
            }
        }
    }
}

fn digits(mut v: u64) -> u16 {
    let mut d = 1;
    while v >= 10 {
        v /= 10;
        d += 1;
    }
    d
}

/// A domain assembled from [`Part`]s.
#[derive(Debug, Clone)]
pub struct SpecDomain {
    name: String,
    parts: Vec<Part>,
    /// Index of the part that drifts over time, if any.
    drift_part: Option<usize>,
}

impl SpecDomain {
    /// Build a domain from parts.
    pub fn new(name: impl Into<String>, parts: Vec<Part>) -> SpecDomain {
        SpecDomain {
            name: name.into(),
            parts,
            drift_part: None,
        }
    }

    /// Mark part `i` as temporally drifting (must be `Int`, `Padded` or
    /// `Choice` — the orderable parts).
    pub fn with_drift(mut self, i: usize) -> SpecDomain {
        debug_assert!(matches!(
            self.parts.get(i),
            Some(Part::Int { .. } | Part::Padded { .. } | Part::Choice(_))
        ));
        self.drift_part = Some(i);
        self
    }

    /// Borrow the parts (used by composite-domain assembly).
    pub fn parts(&self) -> &[Part] {
        &self.parts
    }

    /// Sample one part, restricting a drifting part to a window around `t`.
    fn sample_part(&self, i: usize, rng: &mut StdRng, t: Option<f64>, out: &mut String) {
        let part = &self.parts[i];
        let Some(t) = t.filter(|_| self.drift_part == Some(i)) else {
            part.sample_into(rng, out);
            return;
        };
        // Drift window: ±5% of the range around position t.
        let window = |lo: u64, hi: u64| -> (u64, u64) {
            let span = (hi - lo) as f64;
            let center = lo as f64 + t * span;
            let half = (span * 0.05).max(0.5);
            let w_lo = (center - half).floor().max(lo as f64) as u64;
            let w_hi = (center + half).ceil().min(hi as f64) as u64;
            (w_lo, w_hi.max(w_lo))
        };
        match part {
            Part::Int { lo, hi } => {
                let (wl, wh) = window(*lo, *hi);
                Part::Int { lo: wl, hi: wh }.sample_into(rng, out);
            }
            Part::Padded { width, lo, hi } => {
                let (wl, wh) = window(*lo, *hi);
                Part::Padded {
                    width: *width,
                    lo: wl,
                    hi: wh,
                }
                .sample_into(rng, out);
            }
            Part::Choice(words) => {
                let (wl, wh) = window(0, (words.len() - 1) as u64);
                let idx = rng.random_range(wl..=wh) as usize;
                out.push_str(words[idx]);
            }
            other => other.sample_into(rng, out),
        }
    }
}

impl Domain for SpecDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::with_capacity(24);
        for p in &self.parts {
            p.sample_into(rng, &mut out);
        }
        out
    }

    fn sample_at(&self, rng: &mut StdRng, t: f64) -> String {
        let mut out = String::with_capacity(24);
        for i in 0..self.parts.len() {
            self.sample_part(i, rng, Some(t), &mut out);
        }
        out
    }

    fn drifts(&self) -> bool {
        self.drift_part.is_some()
    }

    fn ground_truth(&self) -> Option<Pattern> {
        let tokens: Vec<Token> = self
            .parts
            .iter()
            .flat_map(|p| p.ground_truth_tokens())
            .collect();
        Some(Pattern::new(tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::{matches, Token};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn padded_int_samples_match_ground_truth() {
        let d = SpecDomain::new(
            "date-mdy",
            vec![
                Part::Padded {
                    width: 2,
                    lo: 1,
                    hi: 12,
                },
                Part::Const("/"),
                Part::Padded {
                    width: 2,
                    lo: 1,
                    hi: 28,
                },
                Part::Const("/"),
                Part::Int { lo: 2000, hi: 2029 },
            ],
        );
        let gt = d.ground_truth().unwrap();
        assert_eq!(gt.to_string(), "<digit>{2}/<digit>{2}/<digit>{4}");
        let mut r = rng();
        for _ in 0..200 {
            let v = d.sample(&mut r);
            assert!(matches(&gt, &v), "{gt} should match {v}");
        }
    }

    #[test]
    fn choice_ground_truth_depends_on_vocabulary_shape() {
        let months = SpecDomain::new("m", vec![Part::Choice(&["Jan", "Feb", "Mar"])]);
        assert_eq!(months.ground_truth().unwrap().tokens(), &[Token::Letter(3)]);
        let ampm = SpecDomain::new("a", vec![Part::Choice(&["AM", "PM"])]);
        assert_eq!(ampm.ground_truth().unwrap().tokens(), &[Token::Upper(2)]);
        let bools = SpecDomain::new("b", vec![Part::Choice(&["true", "false"])]);
        assert_eq!(bools.ground_truth().unwrap().tokens(), &[Token::LowerPlus]);
    }

    #[test]
    fn hex_parts_are_alnum_and_mixed() {
        let d = SpecDomain::new("hex", vec![Part::HexLower(16)]);
        assert_eq!(d.ground_truth().unwrap().tokens(), &[Token::Alnum(16)]);
        let mut r = rng();
        let v = d.sample(&mut r);
        assert_eq!(v.len(), 16);
        assert!(v.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn alnum_var_always_mixes_classes() {
        let d = SpecDomain::new("id", vec![Part::AlnumVar(5, 9)]);
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!(v.chars().any(|c| c.is_ascii_digit()), "{v}");
            assert!(v.chars().any(|c| c.is_ascii_lowercase()), "{v}");
        }
    }

    #[test]
    fn digits_var_has_no_leading_zero() {
        let d = SpecDomain::new("n", vec![Part::DigitsVar(1, 5)]);
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!(!v.starts_with('0') || v.len() == 1, "{v}");
        }
    }

    #[test]
    fn float_ground_truth_uses_three_tokens() {
        let d = SpecDomain::new(
            "f",
            vec![Part::Float {
                int_hi: 99,
                frac: 2,
            }],
        );
        let gt = d.ground_truth().unwrap();
        assert_eq!(gt.to_string(), "<digit>+.<digit>{2}");
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!(matches(&gt, &v), "{v}");
        }
    }

    #[test]
    fn ground_truth_merges_adjacent_constants() {
        let d = SpecDomain::new("kb", vec![Part::Const("/m/"), Part::AlnumVar(5, 7)]);
        let gt = d.ground_truth().unwrap();
        assert_eq!(gt.len(), 2);
        assert_eq!(gt.to_string(), "/m/<alnum>+");
    }
}
