//! Synthetic Kaggle-like prediction tasks for the schema-drift case study
//! (paper §5.3, Fig. 15).
//!
//! Each task has at least two string-valued categorical attributes whose
//! *formats* come from distinct machine-generated domains, plus numeric
//! features and a target correlated with the categoricals. Schema-drift is
//! simulated exactly as in the paper: the positions of two categorical
//! attributes are swapped in the test data only.
//!
//! Three of the eleven tasks deliberately pair two categorical columns with
//! the *same* format — these are the tasks the paper reports as undetectable
//! by pattern validation (`WestNile`, `HomeDepot`, `WalmartTrips`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Format family for a categorical feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatFormat {
    /// Uppercase two-letter codes ("US", "DE", ...).
    Code2,
    /// Status words ("Delivered", "Pending", ...).
    Word,
    /// Zone ids like "Z-042".
    ZoneId,
    /// Date-ish bucket like "2019-03".
    MonthBucket,
    /// Small integer bucket rendered as two digits ("42", "17").
    IntBucket,
}

impl CatFormat {
    fn vocabulary(&self, cardinality: usize, rng: &mut StdRng) -> Vec<String> {
        let mut vocab = Vec::with_capacity(cardinality);
        match self {
            CatFormat::Code2 => {
                while vocab.len() < cardinality {
                    let s: String = (0..2)
                        .map(|_| (b'A' + rng.random_range(0..26u8)) as char)
                        .collect();
                    if !vocab.contains(&s) {
                        vocab.push(s);
                    }
                }
            }
            CatFormat::Word => {
                const WORDS: &[&str] = &[
                    "Delivered",
                    "Pending",
                    "Throttled",
                    "Rejected",
                    "Booked",
                    "Paused",
                    "Archived",
                    "Serving",
                    "Expired",
                    "Active",
                    "Blocked",
                    "Review",
                    "Draft",
                    "Closed",
                    "Open",
                    "Hold",
                ];
                for w in WORDS.iter().take(cardinality) {
                    vocab.push((*w).to_string());
                }
            }
            CatFormat::ZoneId => {
                while vocab.len() < cardinality {
                    let s = format!("Z-{:03}", rng.random_range(0..1000));
                    if !vocab.contains(&s) {
                        vocab.push(s);
                    }
                }
            }
            CatFormat::MonthBucket => {
                for y in 2017..=2020 {
                    for m in 1..=12 {
                        if vocab.len() < cardinality {
                            vocab.push(format!("{y}-{m:02}"));
                        }
                    }
                }
            }
            CatFormat::IntBucket => {
                while vocab.len() < cardinality {
                    let s = rng.random_range(10..100u32).to_string();
                    if !vocab.contains(&s) {
                        vocab.push(s);
                    }
                }
            }
        }
        vocab
    }
}

/// One Kaggle-like task with train/test splits.
#[derive(Debug, Clone)]
pub struct KaggleTask {
    /// Task name (named after the paper's 11 Kaggle tasks).
    pub name: String,
    /// Classification (true) or regression (false).
    pub is_classification: bool,
    /// Names of the categorical attributes.
    pub cat_names: Vec<String>,
    /// Formats of the categorical attributes (for provenance).
    pub cat_formats: Vec<CatFormat>,
    /// Categorical training data, `[feature][row]`.
    pub cat_train: Vec<Vec<String>>,
    /// Categorical testing data, `[feature][row]`.
    pub cat_test: Vec<Vec<String>>,
    /// Numeric training data, `[feature][row]`.
    pub num_train: Vec<Vec<f64>>,
    /// Numeric testing data, `[feature][row]`.
    pub num_test: Vec<Vec<f64>>,
    /// Training targets.
    pub y_train: Vec<f64>,
    /// Testing targets.
    pub y_test: Vec<f64>,
}

impl KaggleTask {
    /// Number of training rows.
    pub fn n_train(&self) -> usize {
        self.y_train.len()
    }

    /// Number of testing rows.
    pub fn n_test(&self) -> usize {
        self.y_test.len()
    }

    /// Simulate schema-drift: swap two categorical columns in the *test*
    /// data only (the paper swaps attribute positions after training).
    pub fn with_swapped_test_cats(&self, i: usize, j: usize) -> KaggleTask {
        let mut t = self.clone();
        t.cat_test.swap(i, j);
        t
    }

    /// Do the two swapped columns share a format (making the drift
    /// undetectable by syntactic validation)?
    pub fn swap_is_detectable(&self, i: usize, j: usize) -> bool {
        self.cat_formats[i] != self.cat_formats[j]
    }
}

/// Simple deterministic category weight in [-1, 1] via FNV hashing.
fn cat_weight(value: &str, salt: u64) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ salt;
    for b in value.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % 2000) as f64 / 1000.0 - 1.0
}

/// Build one task.
fn make_task(
    name: &str,
    is_classification: bool,
    formats: &[CatFormat],
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> KaggleTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n_train + n_test;
    let n_num = 3usize;
    // Vocabularies per categorical feature.
    let vocabs: Vec<Vec<String>> = formats.iter().map(|f| f.vocabulary(12, &mut rng)).collect();
    // Row-wise generation.
    let mut cats: Vec<Vec<String>> = (0..formats.len()).map(|_| Vec::with_capacity(n)).collect();
    let mut nums: Vec<Vec<f64>> = (0..n_num).map(|_| Vec::with_capacity(n)).collect();
    let mut ys: Vec<f64> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut signal = 0.0;
        for (f, vocab) in vocabs.iter().enumerate() {
            let v = &vocab[rng.random_range(0..vocab.len())];
            // Categorical contribution: feature-specific salt so swapping
            // columns scrambles the learned mapping.
            signal += cat_weight(v, (f as u64 + 1) * 7919);
            cats[f].push(v.clone());
        }
        for (k, num) in nums.iter_mut().enumerate() {
            let x: f64 = rng.random_range(-1.0..1.0);
            signal += 0.5 * x * (k as f64 + 1.0) / n_num as f64;
            num.push(x);
        }
        let noise: f64 = rng.random_range(-0.2..0.2);
        ys.push(signal + noise);
    }
    // Classification: threshold at the median so classes are balanced.
    let ys = if is_classification {
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = sorted[sorted.len() / 2];
        ys.into_iter()
            .map(|y| if y > median { 1.0 } else { 0.0 })
            .collect()
    } else {
        ys
    };
    let split = |v: &Vec<Vec<String>>| -> (Vec<Vec<String>>, Vec<Vec<String>>) {
        (
            v.iter().map(|col| col[..n_train].to_vec()).collect(),
            v.iter().map(|col| col[n_train..].to_vec()).collect(),
        )
    };
    let (cat_train, cat_test) = split(&cats);
    let num_train: Vec<Vec<f64>> = nums.iter().map(|c| c[..n_train].to_vec()).collect();
    let num_test: Vec<Vec<f64>> = nums.iter().map(|c| c[n_train..].to_vec()).collect();
    KaggleTask {
        name: name.to_string(),
        is_classification,
        cat_names: (0..formats.len()).map(|i| format!("cat_{i}")).collect(),
        cat_formats: formats.to_vec(),
        cat_train,
        cat_test,
        num_train,
        num_test,
        y_train: ys[..n_train].to_vec(),
        y_test: ys[n_train..].to_vec(),
    }
}

/// The eleven tasks of the paper's case study. The first seven are
/// classification, the last four regression. `WestNile`, `HomeDepot` and
/// `WalmartTrips` pair two same-format categoricals, so their simulated
/// drift is syntactically undetectable — matching the paper's 8/11 result.
pub fn kaggle_tasks(n_train: usize, n_test: usize, seed: u64) -> Vec<KaggleTask> {
    use CatFormat::*;
    let spec: Vec<(&str, bool, Vec<CatFormat>)> = vec![
        ("Titanic", true, vec![Code2, Word]),
        ("AirBnb", true, vec![Word, MonthBucket]),
        ("BNPParibas", true, vec![Code2, ZoneId]),
        ("RedHat", true, vec![Word, IntBucket]),
        ("SFCrime", true, vec![ZoneId, MonthBucket]),
        ("WestNile", true, vec![Code2, Code2]), // undetectable pair
        ("WalmartTrips", true, vec![Word, Word]), // undetectable pair
        ("HousePrice", false, vec![ZoneId, Word]),
        ("HomeDepot", false, vec![IntBucket, IntBucket]), // undetectable pair
        ("Caterpillar", false, vec![Code2, MonthBucket]),
        ("WalmartSales", false, vec![ZoneId, IntBucket]),
    ];
    spec.into_iter()
        .enumerate()
        .map(|(i, (name, cls, formats))| {
            make_task(
                name,
                cls,
                &formats,
                n_train,
                n_test,
                seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_tasks_with_paper_names() {
        let tasks = kaggle_tasks(200, 100, 1);
        assert_eq!(tasks.len(), 11);
        assert_eq!(tasks.iter().filter(|t| t.is_classification).count(), 7);
        assert!(tasks.iter().any(|t| t.name == "Titanic"));
        assert!(tasks.iter().any(|t| t.name == "WalmartSales"));
    }

    #[test]
    fn shapes_are_consistent() {
        for t in kaggle_tasks(150, 80, 2) {
            assert_eq!(t.n_train(), 150);
            assert_eq!(t.n_test(), 80);
            for c in &t.cat_train {
                assert_eq!(c.len(), 150);
            }
            for c in &t.cat_test {
                assert_eq!(c.len(), 80);
            }
            assert!(t.cat_names.len() >= 2);
        }
    }

    #[test]
    fn classification_targets_are_binary_and_balanced() {
        for t in kaggle_tasks(400, 100, 3) {
            if t.is_classification {
                assert!(t.y_train.iter().all(|&y| y == 0.0 || y == 1.0));
                let pos = t.y_train.iter().filter(|&&y| y == 1.0).count();
                let frac = pos as f64 / t.y_train.len() as f64;
                assert!((0.3..0.7).contains(&frac), "{}: {frac}", t.name);
            }
        }
    }

    #[test]
    fn swap_changes_test_columns_only() {
        let t = &kaggle_tasks(100, 50, 4)[0];
        let swapped = t.with_swapped_test_cats(0, 1);
        assert_eq!(t.cat_train, swapped.cat_train);
        assert_eq!(t.cat_test[0], swapped.cat_test[1]);
        assert_eq!(t.cat_test[1], swapped.cat_test[0]);
    }

    #[test]
    fn exactly_three_tasks_have_undetectable_swaps() {
        let tasks = kaggle_tasks(100, 50, 5);
        let undetectable: Vec<&str> = tasks
            .iter()
            .filter(|t| !t.swap_is_detectable(0, 1))
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(undetectable, vec!["WestNile", "WalmartTrips", "HomeDepot"]);
    }

    #[test]
    fn categoricals_predict_target() {
        // Sanity: the target must carry categorical signal, otherwise the
        // case study cannot show drift-induced degradation.
        let t = &kaggle_tasks(2000, 10, 6)[7]; // HousePrice (regression)
                                               // Group mean by first categorical value.
        use std::collections::HashMap;
        let mut groups: HashMap<&str, (f64, usize)> = HashMap::new();
        for (v, y) in t.cat_train[0].iter().zip(&t.y_train) {
            let e = groups.entry(v).or_insert((0.0, 0));
            e.0 += *y;
            e.1 += 1;
        }
        let means: Vec<f64> = groups.values().map(|(s, n)| s / *n as f64).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.5, "categorical signal too weak: {spread}");
    }
}
