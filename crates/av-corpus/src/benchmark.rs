//! Benchmark construction following the paper's evaluation methodology
//! (§5.1): sample query columns from the corpus, use the first 10% of each
//! column's values as "training data" that arrives first, hold out the
//! remaining 90% as future "testing data".

use crate::column::{Column, ColumnKind};
use crate::lake::sample_columns;
use crate::Corpus;

/// One benchmark case `C_i`: a sampled query column with its train/test
/// split.
#[derive(Debug, Clone)]
pub struct BenchmarkCase {
    /// The source column (carries provenance / ground truth).
    pub column: Column,
    /// First 10% of values — what a validator may observe (`C_train`).
    pub train: Vec<String>,
    /// Remaining 90% — future arrivals (`C_test`).
    pub test: Vec<String>,
}

impl BenchmarkCase {
    /// Split one column 10/90 after truncating to `value_cap` values (the
    /// paper caps `B_E` columns at 1000 values and `B_G` at 100).
    pub fn from_column(column: &Column, value_cap: usize) -> BenchmarkCase {
        let values: Vec<String> = column.values.iter().take(value_cap).cloned().collect();
        let split = (values.len() / 10).max(1);
        let train = values[..split].to_vec();
        let test = values[split..].to_vec();
        BenchmarkCase {
            column: column.clone(),
            train,
            test,
        }
    }

    /// Is this case amenable to syntactic patterns? The paper reports
    /// headline numbers on the subset of cases where patterns exist
    /// (571/1000 on `B_E`), excluding natural-language columns.
    pub fn pattern_eligible(&self) -> bool {
        self.column.meta.kind != ColumnKind::NaturalLanguage
    }

    /// The domain name this case was generated from, when known.
    pub fn domain(&self) -> Option<&str> {
        self.column.meta.domain.as_deref()
    }
}

/// A full benchmark `B`: `n` sampled cases.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The sampled cases.
    pub cases: Vec<BenchmarkCase>,
}

impl Benchmark {
    /// Sample `n` query columns (with at least `min_values` values so the
    /// 10/90 split is meaningful), capping each at `value_cap` values.
    pub fn sample(
        corpus: &Corpus,
        n: usize,
        min_values: usize,
        value_cap: usize,
        seed: u64,
    ) -> Benchmark {
        let cases = sample_columns(corpus, n, min_values, seed)
            .into_iter()
            .map(|c| BenchmarkCase::from_column(c, value_cap))
            .collect();
        Benchmark { cases }
    }

    /// Only the pattern-eligible cases.
    pub fn eligible_cases(&self) -> impl Iterator<Item = &BenchmarkCase> {
        self.cases.iter().filter(|c| c.pattern_eligible())
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True when no cases were sampled.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::{generate_lake, LakeProfile};

    #[test]
    fn split_is_ten_ninety() {
        let corpus = generate_lake(&LakeProfile::tiny(), 1);
        let b = Benchmark::sample(&corpus, 30, 20, 1000, 2);
        assert_eq!(b.len(), 30);
        for case in &b.cases {
            let total = case.train.len() + case.test.len();
            assert_eq!(case.train.len(), (total / 10).max(1));
            assert!(case.test.len() >= case.train.len());
        }
    }

    #[test]
    fn value_cap_is_applied() {
        let corpus = generate_lake(&LakeProfile::tiny(), 1);
        let b = Benchmark::sample(&corpus, 10, 20, 25, 3);
        for case in &b.cases {
            assert!(case.train.len() + case.test.len() <= 25);
        }
    }

    #[test]
    fn eligibility_excludes_natural_language() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(600), 5);
        let b = Benchmark::sample(&corpus, 200, 20, 100, 7);
        let eligible = b.eligible_cases().count();
        assert!(eligible < b.len(), "NL cases should be excluded");
        assert!(eligible > b.len() / 3, "most cases should be eligible");
        for c in b.eligible_cases() {
            assert_ne!(c.column.meta.kind, ColumnKind::NaturalLanguage);
        }
    }
}
