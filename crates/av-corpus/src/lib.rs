//! # av-corpus — synthetic data lakes, domains and benchmarks
//!
//! The data substrate for the Auto-Validate reproduction. The paper
//! evaluates on two corpora that cannot be redistributed (Microsoft's
//! production data lake and a NationalArchives crawl); this crate generates
//! synthetic corpora with the same *statistical structure*:
//!
//! * a catalog of ~40 machine-generated [`Domain`]s (timestamps, GUIDs,
//!   knowledge-base entity ids, locales, ads statuses, ... — modeled on
//!   Fig. 3) each with a derived ground-truth validation pattern;
//! * [`LakeProfile`]s for the enterprise (`T_E`) and government (`T_G`)
//!   corpora: Zipf domain popularity, ~33% natural-language columns, ~12%
//!   impure columns, composite columns (§3), ad-hoc special values (§4);
//! * [`Benchmark`] sampling with the paper's 10%/90% train/test split
//!   (§5.1);
//! * [`kaggle_tasks`] — the eleven synthetic prediction tasks of the
//!   schema-drift case study (Fig. 15).
//!
//! Everything is deterministic given a `u64` seed.

mod benchmark;
mod column;
mod domain;
mod domains;
mod kaggle;
mod lake;

pub use benchmark::{Benchmark, BenchmarkCase};
pub use column::{Column, ColumnKind, ColumnMeta, Corpus, CorpusStats, Table};
pub use domain::{Domain, Part, SpecDomain};
pub use domains::{
    machine_domains, natural_language_domains, CompositeDomain, NaturalLanguageDomain,
};
pub use kaggle::{kaggle_tasks, CatFormat, KaggleTask};
pub use lake::{generate_lake, sample_columns, LakeProfile, SPECIAL_VALUES};
