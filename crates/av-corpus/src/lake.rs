//! Synthetic data-lake generation: the stand-in for the paper's enterprise
//! corpus `T_E` (Microsoft production pipelines) and government corpus
//! `T_G` (NationalArchives crawl).
//!
//! The generator reproduces the *statistical structure* the algorithms
//! depend on rather than any particular byte content: domain popularity is
//! Zipf-distributed (thousands of columns share popular domains, a long
//! tail does not), ~33% of columns are natural language, ~12% are impure
//! mixtures (the paper measured 87.9% homogeneity), some columns are
//! composites of atomic domains (§3), and some carry ad-hoc non-conforming
//! values like `"-"` or `"NULL"` (§4, Fig. 9).

use crate::column::{Column, ColumnKind, ColumnMeta, Corpus, Table};
use crate::domain::Domain;
use crate::domains::{machine_domains, natural_language_domains, CompositeDomain};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Ad-hoc special values observed in real pipelines (Fig. 9).
pub const SPECIAL_VALUES: &[&str] = &["-", "", "NULL", "N/A", "?", "(null)", "none"];

/// Shape parameters of a synthetic lake.
#[derive(Debug, Clone)]
pub struct LakeProfile {
    /// Profile name ("enterprise" / "government" / custom).
    pub name: String,
    /// Total number of columns to generate.
    pub num_columns: usize,
    /// Columns per table, inclusive range.
    pub columns_per_table: (usize, usize),
    /// Values per table (rows), inclusive range.
    pub rows: (usize, usize),
    /// Fraction of natural-language columns (paper: ~33%).
    pub nl_fraction: f64,
    /// Fraction of impure two-domain columns (paper: ~12% non-homogeneous).
    pub impure_fraction: f64,
    /// Fraction of composite concatenated columns (§3).
    pub composite_fraction: f64,
    /// Fraction of machine columns carrying ad-hoc special values (§4).
    pub dirty_fraction: f64,
    /// Within a dirty column, the rate of non-conforming values.
    pub dirty_value_rate: f64,
    /// Per-value probability of manual-editing noise (government profile):
    /// stray whitespace, case flips, character drops.
    pub text_noise_rate: f64,
    /// Zipf exponent for domain popularity.
    pub zipf_s: f64,
    /// Fraction of tables that carry a functionally-dependent column pair
    /// (exercises the FD-UB baseline).
    pub fd_pair_fraction: f64,
}

impl LakeProfile {
    /// The enterprise-lake profile `T_E`: larger, cleaner, bigger columns.
    pub fn enterprise() -> LakeProfile {
        LakeProfile {
            name: "enterprise".into(),
            num_columns: 20_000,
            columns_per_table: (3, 10),
            rows: (50, 400),
            nl_fraction: 0.33,
            impure_fraction: 0.08,
            composite_fraction: 0.06,
            dirty_fraction: 0.12,
            dirty_value_rate: 0.05,
            text_noise_rate: 0.0,
            zipf_s: 1.07,
            fd_pair_fraction: 0.35,
        }
    }

    /// The government-lake profile `T_G`: smaller corpus, shorter columns,
    /// dirtier (manually edited CSV) data.
    pub fn government() -> LakeProfile {
        LakeProfile {
            name: "government".into(),
            num_columns: 5_000,
            columns_per_table: (3, 8),
            rows: (20, 120),
            nl_fraction: 0.33,
            impure_fraction: 0.15,
            composite_fraction: 0.04,
            dirty_fraction: 0.15,
            dirty_value_rate: 0.08,
            text_noise_rate: 0.02,
            zipf_s: 1.05,
            fd_pair_fraction: 0.08,
        }
    }

    /// A tiny profile for unit tests (hundreds of columns).
    pub fn tiny() -> LakeProfile {
        LakeProfile {
            name: "tiny".into(),
            num_columns: 300,
            columns_per_table: (2, 5),
            rows: (20, 60),
            nl_fraction: 0.3,
            impure_fraction: 0.1,
            composite_fraction: 0.05,
            dirty_fraction: 0.1,
            dirty_value_rate: 0.03,
            text_noise_rate: 0.0,
            zipf_s: 1.0,
            fd_pair_fraction: 0.1,
        }
    }

    /// Copy of the profile scaled to `num_columns` columns.
    pub fn scaled(&self, num_columns: usize) -> LakeProfile {
        LakeProfile {
            num_columns,
            ..self.clone()
        }
    }
}

/// Zipf sampler over `n` ranks with exponent `s`.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// Apply government-style manual-editing noise to one value.
fn apply_text_noise(v: &str, rng: &mut StdRng) -> String {
    match rng.random_range(0..4u8) {
        0 => format!(" {v}"),
        1 => format!("{v} "),
        2 => {
            // Flip the case of one letter, if any.
            let mut chars: Vec<char> = v.chars().collect();
            let letters: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_ascii_alphabetic())
                .map(|(i, _)| i)
                .collect();
            if let Some(&i) = letters.get(
                rng.random_range(0..letters.len().max(1))
                    .min(letters.len().saturating_sub(1)),
            ) {
                chars[i] = if chars[i].is_ascii_uppercase() {
                    chars[i].to_ascii_lowercase()
                } else {
                    chars[i].to_ascii_uppercase()
                };
            }
            chars.into_iter().collect()
        }
        _ => {
            // Drop the last character.
            let mut s = v.to_string();
            s.pop();
            s
        }
    }
}

/// Sample `n` values from a domain with value reuse: real lake columns
/// repeat values heavily (the paper's Table 1: ~1543 distinct out of ~8945
/// values per column, a ratio of ~0.17, from keys repeated by joins and
/// denormalization). `distinct_ratio` controls the expected distinct/total
/// ratio of the generated column.
fn sample_with_repeats(
    domain: &dyn Domain,
    n: usize,
    distinct_ratio: f64,
    rng: &mut StdRng,
) -> Vec<String> {
    let ratio = distinct_ratio.clamp(0.01, 1.0);
    if domain.drifts() {
        // Drifting feeds repeat *recent* values (today's dates, current
        // build numbers) while the distribution slides forward in time.
        let mut recent: Vec<String> = Vec::with_capacity(24);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if !recent.is_empty() && !rng.random_bool(ratio) {
                out.push(recent[rng.random_range(0..recent.len())].clone());
            } else {
                let t = i as f64 / n.max(1) as f64;
                let v = domain.sample_at(rng, t);
                if recent.len() >= 24 {
                    let slot = rng.random_range(0..recent.len());
                    recent[slot] = v.clone();
                } else {
                    recent.push(v.clone());
                }
                out.push(v);
            }
        }
        return out;
    }
    // Stationary: fix the column's value pool first (the snapshot of a
    // feed has a fixed active-key set), then draw rows uniformly from it.
    let k = ((ratio * n as f64).ceil() as usize).clamp(1, n.max(1));
    let pool: Vec<String> = (0..k).map(|_| domain.sample(rng)).collect();
    (0..n)
        .map(|_| pool[rng.random_range(0..pool.len())].clone())
        .collect()
}

/// Draw a column's target distinct/total ratio: log-uniform in [0.03, 1.0],
/// geometric mean ≈ 0.18 — matching the paper's Table 1 shape.
fn draw_distinct_ratio(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random_range(0.0..1.5);
    10f64.powf(-u)
}

/// Deterministic region for a country code (the FD group generator).
fn region_for(country: &str) -> &'static str {
    match country {
        "US" | "CA" | "BR" => "Americas",
        "UK" | "DE" | "FR" | "NL" => "Europe",
        "JP" | "IN" => "Asia",
        "AU" => "Oceania",
        _ => "Other",
    }
}

/// Deterministic currency for a country code (the FD pair generator).
fn currency_for(country: &str) -> &'static str {
    match country {
        "US" => "USD",
        "UK" => "GBP",
        "DE" | "FR" | "NL" => "EUR",
        "JP" => "JPY",
        "BR" => "BRL",
        "IN" => "INR",
        "CA" => "CAD",
        "AU" => "AUD",
        _ => "USD",
    }
}

/// Generate a corpus according to `profile`, deterministically from `seed`.
pub fn generate_lake(profile: &LakeProfile, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let machines = machine_domains();
    let nls = natural_language_domains();
    let zipf = Zipf::new(machines.len(), profile.zipf_s);
    let seps: [&'static str; 4] = ["|", " ", ";", ","];
    let countries: [&str; 10] = ["US", "UK", "DE", "JP", "FR", "BR", "IN", "CA", "AU", "NL"];

    let mut tables: Vec<Table> = Vec::new();
    let mut columns_made = 0usize;
    let mut table_idx = 0usize;
    while columns_made < profile.num_columns {
        let cols_here = rng
            .random_range(profile.columns_per_table.0..=profile.columns_per_table.1)
            .min(profile.num_columns - columns_made)
            .max(1);
        let n_rows = rng.random_range(profile.rows.0..=profile.rows.1);
        let mut columns: Vec<Column> = Vec::with_capacity(cols_here);

        // Optionally lead with a functionally-dependent column group
        // (country → currency, country → region) for the FD-UB baseline.
        let fd_pair = cols_here >= 3 && rng.random_bool(profile.fd_pair_fraction);
        if fd_pair {
            let mut country_vals = Vec::with_capacity(n_rows);
            let mut currency_vals = Vec::with_capacity(n_rows);
            let mut region_vals = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let c = countries[rng.random_range(0..countries.len())];
                country_vals.push(c.to_string());
                currency_vals.push(currency_for(c).to_string());
                region_vals.push(region_for(c).to_string());
            }
            columns.push(Column {
                name: format!("t{table_idx}_country"),
                values: country_vals,
                meta: ColumnMeta::machine(
                    "country-code",
                    Some(av_pattern::Pattern::new(vec![av_pattern::Token::Upper(2)])),
                ),
            });
            columns.push(Column {
                name: format!("t{table_idx}_currency"),
                values: currency_vals,
                meta: ColumnMeta::machine(
                    "currency-code",
                    Some(av_pattern::Pattern::new(vec![av_pattern::Token::Upper(3)])),
                ),
            });
            columns.push(Column {
                name: format!("t{table_idx}_region"),
                values: region_vals,
                meta: ColumnMeta {
                    domain: Some("region-name".to_string()),
                    ground_truth: None,
                    kind: ColumnKind::NaturalLanguage,
                    dirty_rate: 0.0,
                },
            });
        }

        while columns.len() < cols_here {
            let ci = columns.len();
            let name = format!("t{table_idx}_c{ci}");
            let roll: f64 = rng.random();
            let column = if roll < profile.nl_fraction {
                let d = &nls[rng.random_range(0..nls.len())];
                make_column(
                    name,
                    d.as_ref(),
                    n_rows,
                    &mut rng,
                    ColumnKind::NaturalLanguage,
                )
            } else if roll < profile.nl_fraction + profile.impure_fraction {
                // Two domains mixed. Production impurity is mostly light
                // contamination — the paper's Example 5 sees impure columns
                // at ~1% impurity ("en-us" creeping into "en-US" columns) —
                // with occasional heavy mixtures from schema accidents.
                let a = &machines[zipf.sample(&mut rng)];
                let b = &machines[zipf.sample(&mut rng)];
                let major = if rng.random_bool(0.1) {
                    rng.random_range(0.6..0.9)
                } else {
                    rng.random_range(0.90..0.98)
                };
                let ratio = draw_distinct_ratio(&mut rng);
                let major_values = sample_with_repeats(a.as_ref(), n_rows, ratio, &mut rng);
                let mut values = Vec::with_capacity(n_rows);
                for v in major_values {
                    if rng.random_bool(major) {
                        values.push(v);
                    } else {
                        values.push(b.sample(&mut rng));
                    }
                }
                Column {
                    name,
                    values,
                    meta: ColumnMeta {
                        domain: Some(format!("{}+{}", a.name(), b.name())),
                        ground_truth: None,
                        kind: ColumnKind::Impure,
                        dirty_rate: 0.0,
                    },
                }
            } else if roll
                < profile.nl_fraction + profile.impure_fraction + profile.composite_fraction
            {
                let k = rng.random_range(2..=4);
                let parts: Vec<Arc<dyn Domain>> = (0..k)
                    .map(|_| machines[zipf.sample(&mut rng)].clone())
                    .collect();
                let sep = seps[rng.random_range(0..seps.len())];
                let comp_name = parts.iter().map(|d| d.name()).collect::<Vec<_>>().join("~");
                let comp = CompositeDomain::new(comp_name, parts, sep);
                let mut col = make_column(name, &comp, n_rows, &mut rng, ColumnKind::Composite);
                col.meta.ground_truth = comp.ground_truth();
                col
            } else {
                let d = &machines[zipf.sample(&mut rng)];
                let mut col = make_column(name, d.as_ref(), n_rows, &mut rng, ColumnKind::Machine);
                col.meta.ground_truth = d.ground_truth();
                // Ad-hoc special values (§4).
                if rng.random_bool(profile.dirty_fraction) {
                    let mut dirty = 0usize;
                    let len = col.values.len();
                    for v in col.values.iter_mut() {
                        if rng.random_bool(profile.dirty_value_rate) {
                            *v = SPECIAL_VALUES[rng.random_range(0..SPECIAL_VALUES.len())]
                                .to_string();
                            dirty += 1;
                        }
                    }
                    col.meta.dirty_rate = dirty as f64 / len.max(1) as f64;
                }
                col
            };
            columns.push(column);
        }

        // Government-style manual-editing noise, applied across the board.
        if profile.text_noise_rate > 0.0 {
            for col in columns.iter_mut() {
                for v in col.values.iter_mut() {
                    if rng.random_bool(profile.text_noise_rate) {
                        *v = apply_text_noise(v, &mut rng);
                    }
                }
            }
        }

        columns_made += columns.len();
        tables.push(Table {
            name: format!("table_{table_idx}"),
            columns,
        });
        table_idx += 1;
    }
    Corpus { tables }
}

fn make_column(
    name: String,
    domain: &dyn Domain,
    n_rows: usize,
    rng: &mut StdRng,
    kind: ColumnKind,
) -> Column {
    let ratio = draw_distinct_ratio(rng);
    let values = sample_with_repeats(domain, n_rows, ratio, rng);
    Column {
        name,
        values,
        meta: ColumnMeta {
            domain: Some(domain.name().to_string()),
            ground_truth: None,
            kind,
            dirty_rate: 0.0,
        },
    }
}

/// Sample `n` benchmark columns uniformly from the corpus (the paper's
/// `B_E`/`B_G`), preferring columns with at least `min_values` values.
pub fn sample_columns(corpus: &Corpus, n: usize, min_values: usize, seed: u64) -> Vec<&Column> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eligible: Vec<&Column> = corpus.columns().filter(|c| c.len() >= min_values).collect();
    eligible.shuffle(&mut rng);
    eligible.truncate(n);
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_lake_has_requested_shape() {
        let profile = LakeProfile::tiny();
        let corpus = generate_lake(&profile, 1);
        assert!(corpus.num_columns() >= profile.num_columns);
        assert!(corpus.num_columns() < profile.num_columns + 12);
        for t in &corpus.tables {
            let rows = t.columns[0].len();
            assert!(t.columns.iter().all(|c| c.len() == rows), "aligned rows");
        }
    }

    #[test]
    fn lake_is_deterministic() {
        let profile = LakeProfile::tiny();
        let a = generate_lake(&profile, 7);
        let b = generate_lake(&profile, 7);
        assert_eq!(a.num_columns(), b.num_columns());
        let va: Vec<&String> = a.columns().flat_map(|c| c.values.iter()).collect();
        let vb: Vec<&String> = b.columns().flat_map(|c| c.values.iter()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn kind_fractions_are_roughly_respected() {
        let profile = LakeProfile::tiny().scaled(2000);
        let corpus = generate_lake(&profile, 3);
        let total = corpus.num_columns() as f64;
        let nl = corpus
            .columns()
            .filter(|c| c.meta.kind == ColumnKind::NaturalLanguage)
            .count() as f64;
        let impure = corpus
            .columns()
            .filter(|c| c.meta.kind == ColumnKind::Impure)
            .count() as f64;
        assert!(
            (nl / total - profile.nl_fraction).abs() < 0.06,
            "nl {}",
            nl / total
        );
        assert!(
            (impure / total - profile.impure_fraction).abs() < 0.05,
            "impure {}",
            impure / total
        );
    }

    #[test]
    fn machine_columns_conform_to_ground_truth() {
        let corpus = generate_lake(&LakeProfile::tiny(), 11);
        let mut checked = 0;
        for col in corpus.columns() {
            if col.meta.kind == ColumnKind::Machine && col.meta.dirty_rate == 0.0 {
                if let Some(gt) = &col.meta.ground_truth {
                    for v in &col.values {
                        assert!(av_pattern::matches(gt, v), "{}: {gt} !~ {v:?}", col.name);
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 50, "checked only {checked} columns");
    }

    #[test]
    fn dirty_columns_carry_special_values() {
        let mut profile = LakeProfile::tiny().scaled(1500);
        profile.dirty_fraction = 0.5;
        profile.dirty_value_rate = 0.05;
        let corpus = generate_lake(&profile, 5);
        let dirty_cols = corpus.columns().filter(|c| c.meta.dirty_rate > 0.0).count();
        assert!(dirty_cols > 50, "found {dirty_cols} dirty columns");
    }

    #[test]
    fn fd_pairs_are_functional() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(1000), 13);
        let mut pairs = 0;
        for t in &corpus.tables {
            let country = t.columns.iter().find(|c| c.name.ends_with("_country"));
            let currency = t.columns.iter().find(|c| c.name.ends_with("_currency"));
            if let (Some(a), Some(b)) = (country, currency) {
                pairs += 1;
                for (x, y) in a.values.iter().zip(&b.values) {
                    assert_eq!(currency_for(x), y.as_str());
                }
            }
        }
        assert!(pairs > 5, "found {pairs} FD pairs");
    }

    #[test]
    fn sample_columns_is_stable_and_bounded() {
        let corpus = generate_lake(&LakeProfile::tiny(), 17);
        let a = sample_columns(&corpus, 50, 20, 99);
        let b = sample_columns(&corpus, 50, 20, 99);
        assert_eq!(a.len(), 50);
        let names_a: Vec<&str> = a.iter().map(|c| c.name.as_str()).collect();
        let names_b: Vec<&str> = b.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names_a, names_b);
        assert!(a.iter().all(|c| c.len() >= 20));
    }

    #[test]
    fn government_profile_is_noisier_than_enterprise() {
        let e = LakeProfile::enterprise();
        let g = LakeProfile::government();
        assert!(g.text_noise_rate > e.text_noise_rate);
        assert!(g.dirty_fraction > e.dirty_fraction);
        assert!(g.rows.1 < e.rows.1);
    }
}
