//! Data-lake data model: columns, tables, corpora and their statistics.

use av_pattern::Pattern;

/// How a synthetic column was produced — carried along as ground truth for
/// the evaluation harness (the paper's manually-labeled patterns, Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnKind {
    /// Homogeneous machine-generated values from one domain (67.6% of the
    /// paper's enterprise sample).
    Machine,
    /// Natural-language content (company names, comments, ...) for which
    /// pattern methods are not applicable (~33% in the paper).
    NaturalLanguage,
    /// Concatenation of several atomic domains (§3, Fig. 8).
    Composite,
    /// Mixture of two domains (violates homogeneity; ~12% in the paper).
    Impure,
}

/// Provenance metadata attached to generated columns.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    /// Name(s) of the generating domain(s).
    pub domain: Option<String>,
    /// The domain's ideal validation pattern, when one exists.
    pub ground_truth: Option<Pattern>,
    /// Structural kind.
    pub kind: ColumnKind,
    /// Fraction of ad-hoc non-conforming values injected (0.0 for clean).
    pub dirty_rate: f64,
}

impl ColumnMeta {
    /// Metadata for a clean machine-generated column.
    pub fn machine(domain: impl Into<String>, ground_truth: Option<Pattern>) -> ColumnMeta {
        ColumnMeta {
            domain: Some(domain.into()),
            ground_truth,
            kind: ColumnKind::Machine,
            dirty_rate: 0.0,
        }
    }
}

/// A single data column: an ordered bag of string values.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// The values, in arrival order.
    pub values: Vec<String>,
    /// Generation provenance (ground truth for evaluation).
    pub meta: ColumnMeta,
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct_count(&self) -> usize {
        let mut set: Vec<&str> = self.values.iter().map(|s| s.as_str()).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }
}

/// A table: a named list of columns (row alignment matters only for the
/// FD-UB baseline and the Kaggle case study).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table (file) name.
    pub name: String,
    /// The table's columns.
    pub columns: Vec<Column>,
}

/// A corpus `T`: the collection of tables crawled from a data lake.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// All tables.
    pub tables: Vec<Table>,
}

impl Corpus {
    /// Iterate over every column in the corpus.
    pub fn columns(&self) -> impl Iterator<Item = &Column> {
        self.tables.iter().flat_map(|t| t.columns.iter())
    }

    /// Total number of columns.
    pub fn num_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Corpus characteristics in the shape of the paper's Table 1.
    pub fn stats(&self) -> CorpusStats {
        let counts: Vec<f64> = self.columns().map(|c| c.len() as f64).collect();
        let distinct: Vec<f64> = self.columns().map(|c| c.distinct_count() as f64).collect();
        CorpusStats {
            num_files: self.tables.len(),
            num_columns: counts.len(),
            avg_value_count: av_stats_mean(&counts),
            std_value_count: av_stats_std(&counts),
            avg_distinct_count: av_stats_mean(&distinct),
            std_distinct_count: av_stats_std(&distinct),
        }
    }
}

// Local copies of mean/std to avoid a dependency cycle with av-stats (which
// does not depend on us, but keeping av-corpus's dependency list minimal).
fn av_stats_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn av_stats_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = av_stats_mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Corpus characteristics (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total number of data files (tables).
    pub num_files: usize,
    /// Total number of data columns.
    pub num_columns: usize,
    /// Average column value count.
    pub avg_value_count: f64,
    /// Standard deviation of column value counts.
    pub std_value_count: f64,
    /// Average distinct value count.
    pub avg_distinct_count: f64,
    /// Standard deviation of distinct value counts.
    pub std_distinct_count: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, values: &[&str]) -> Column {
        Column {
            name: name.to_string(),
            values: values.iter().map(|s| s.to_string()).collect(),
            meta: ColumnMeta::machine("test", None),
        }
    }

    #[test]
    fn distinct_count() {
        let c = col("c", &["a", "b", "a", "c", "b"]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn corpus_stats() {
        let corpus = Corpus {
            tables: vec![
                Table {
                    name: "t1".into(),
                    columns: vec![col("a", &["1", "2"]), col("b", &["x", "x", "x", "x"])],
                },
                Table {
                    name: "t2".into(),
                    columns: vec![col("c", &["p", "q", "r"])],
                },
            ],
        };
        let s = corpus.stats();
        assert_eq!(s.num_files, 2);
        assert_eq!(s.num_columns, 3);
        assert!((s.avg_value_count - 3.0).abs() < 1e-12);
        assert!((s.avg_distinct_count - 2.0).abs() < 1e-12);
        assert_eq!(corpus.columns().count(), 3);
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::default();
        let s = c.stats();
        assert_eq!(s.num_columns, 0);
        assert_eq!(s.avg_value_count, 0.0);
    }
}
