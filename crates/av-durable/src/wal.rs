//! Append-only, CRC-framed write-ahead log with segment rotation.
//!
//! ## Format
//!
//! The log is a directory of segment files named `wal-<first_lsn as
//! 16-hex>.avwal`. Each segment starts with a 16-byte header (`AVWL`
//! magic, format version, the first LSN the segment was opened at) and is
//! followed by frames:
//!
//! ```text
//! len: u32 LE | crc: u32 LE | lsn: u64 LE | payload (len bytes)
//! ```
//!
//! `crc` is the CRC-32 of the LSN (little-endian) concatenated with the
//! payload, so a frame that lies about its LSN or tears mid-payload is
//! rejected. Every append is fsynced before it returns; callers must not
//! acknowledge an operation until `append` has returned its LSN.
//!
//! ## Failure semantics
//!
//! A failed append is retried in place before the failure is surfaced:
//! the attempt may have left a torn frame in the active segment, so every
//! retry first **rotates** to a fresh segment (whose `first_lsn`
//! supersedes the torn bytes — see Replay) and backs off briefly, up to
//! [`APPEND_ATTEMPTS`] attempts in total. A transient storage hiccup (one
//! failed write or fsync) is therefore absorbed without the caller ever
//! seeing an error, and without weakening the ack invariant: the record's
//! LSN is only returned once a CRC-clean frame bearing it is fsynced.
//!
//! Only when every attempt fails does the append leave the log
//! *poisoned*: the record may or may not be durable, so accepting later
//! appends could let an acknowledged record land after a torn one and be
//! silently truncated by replay. Poisoning rejects all appends until
//! [`Wal::rotate`] (called by a checkpoint) opens a fresh segment. Failed
//! appends do **not** consume their LSN — the segment opened by rotation
//! starts exactly after the last *successful* record, which is what lets
//! replay prove that any frame bearing a superseded LSN in an older
//! segment was never acknowledged.
//!
//! ## Replay
//!
//! [`Wal::replay`] scans segments in LSN order and returns the longest
//! provably-acknowledged prefix: frames must be CRC-clean and strictly
//! consecutive; a torn or corrupt frame ends the segment's contribution;
//! and when a newer segment opens at `first_lsn`, any previously-taken
//! record with an LSN ≥ `first_lsn` is dropped as a phantom (it can only
//! be the residue of a failed, unacknowledged append — see above).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};

use crate::crc32::Crc32;
use crate::storage::{Storage, StorageFile};
use crate::DurableError;

const MAGIC: &[u8; 4] = b"AVWL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const FRAME_OVERHEAD: usize = 16;
/// Total tries a single [`Wal::append`] makes before poisoning the log.
/// Each retry rotates to a fresh segment first (superseding any torn
/// frame the failed try left behind) and backs off briefly.
pub const APPEND_ATTEMPTS: u32 = 3;
/// Base backoff between append retries, doubled per attempt (2 ms, 4 ms):
/// long enough to ride out a momentary storage hiccup, bounded so a dead
/// disk fails the op in well under a second.
const APPEND_RETRY_BACKOFF_MS: u64 = 2;
/// Upper bound on a single record payload; guards allocation when a
/// corrupt length field is read back.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// Tuning knobs for the write-ahead log.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 << 20,
        }
    }
}

fn segment_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:016x}.avwal")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".avwal")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The write-ahead log. Not internally synchronized: the owner is
/// expected to wrap it in a mutex that doubles as the op-ordering lock.
pub struct Wal {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    cfg: WalConfig,
    active: Option<Box<dyn StorageFile>>,
    active_path: PathBuf,
    active_first_lsn: u64,
    active_bytes: u64,
    /// Closed segments: (path, first_lsn, bytes). Includes segments left
    /// over from before recovery until a checkpoint truncates them.
    closed: Vec<(PathBuf, u64, u64)>,
    next_lsn: u64,
    poisoned: Option<String>,
    /// Transient append failures absorbed by retry-through-rotation.
    append_retries: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_lsn", &self.next_lsn)
            .field(
                "segments",
                &(self.closed.len() + usize::from(self.active.is_some())),
            )
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Wal {
    /// Open the log directory for appending, starting at `next_lsn`
    /// (one past the highest LSN recovery replayed). Pre-existing
    /// segments are retained — they are still needed if the process
    /// crashes again before the next checkpoint — and a fresh active
    /// segment is created at `next_lsn`.
    pub fn create(
        storage: Arc<dyn Storage>,
        dir: PathBuf,
        cfg: WalConfig,
        next_lsn: u64,
    ) -> Result<Wal, DurableError> {
        storage.create_dir_all(&dir)?;
        let mut closed = Vec::new();
        for name in storage.list(&dir)? {
            if let Some(first_lsn) = parse_segment_name(&name) {
                let path = dir.join(&name);
                let bytes = storage.size(&path).unwrap_or(0);
                closed.push((path, first_lsn, bytes));
            }
        }
        closed.sort_by_key(|&(_, first_lsn, _)| first_lsn);
        let mut wal = Wal {
            storage,
            dir,
            cfg,
            active: None,
            active_path: PathBuf::new(),
            active_first_lsn: 0,
            active_bytes: 0,
            closed,
            next_lsn,
            poisoned: None,
            append_retries: 0,
        };
        wal.open_segment()?;
        Ok(wal)
    }

    /// The LSN the next successful append will return.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Why appends are currently rejected, if an earlier append failed.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Number of live segment files (closed + active).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }

    /// Total bytes across live segment files.
    pub fn total_bytes(&self) -> u64 {
        self.closed.iter().map(|&(_, _, b)| b).sum::<u64>() + self.active_bytes
    }

    fn open_segment(&mut self) -> Result<(), DurableError> {
        let path = self.dir.join(segment_name(self.next_lsn));
        // A same-named leftover (empty or holding only unacknowledged torn
        // frames) is superseded: overwrite it and drop its closed entry.
        self.closed.retain(|(p, _, _)| *p != path);
        let mut file = self.storage.create(&path)?;
        let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
        header.put_slice(MAGIC);
        header.put_u32_le(VERSION);
        header.put_u64_le(self.next_lsn);
        file.write_all(&header)?;
        file.sync()?;
        self.storage.sync_dir(&self.dir)?;
        self.active = Some(file);
        self.active_path = path;
        self.active_first_lsn = self.next_lsn;
        self.active_bytes = HEADER_LEN;
        Ok(())
    }

    /// Close the active segment and open a fresh one at the current
    /// `next_lsn`, clearing any poison. Called by checkpoints so that all
    /// records at or below the checkpoint watermark live in closed
    /// segments, removable via [`Wal::remove_through`].
    pub fn rotate(&mut self) -> Result<(), DurableError> {
        if self.active.is_some()
            && self.active_bytes == HEADER_LEN
            && self.active_first_lsn == self.next_lsn
            && self.poisoned.is_none()
        {
            return Ok(()); // already a fresh, empty segment
        }
        if self.active.take().is_some() {
            self.closed.push((
                self.active_path.clone(),
                self.active_first_lsn,
                self.active_bytes,
            ));
        }
        match self.open_segment() {
            Ok(()) => {
                self.poisoned = None;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(format!("segment rotation failed: {e}"));
                Err(e)
            }
        }
    }

    /// Total append attempts that failed transiently and were absorbed by
    /// a retry (the caller never saw the error).
    pub fn append_retries(&self) -> u64 {
        self.append_retries
    }

    /// Append one record, fsync it, and return its LSN. A failed attempt
    /// is retried through rotation with bounded backoff (up to
    /// [`APPEND_ATTEMPTS`] tries); only when every try fails is the log
    /// poisoned (see module docs). The LSN is never consumed by a failure.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, DurableError> {
        if let Some(why) = &self.poisoned {
            return Err(DurableError::Poisoned(why.clone()));
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(DurableError::Io(std::io::Error::other(
                "WAL record exceeds MAX_RECORD_BYTES",
            )));
        }
        let mut attempt = 0u32;
        loop {
            match self.append_once(payload) {
                Ok(lsn) => return Ok(lsn),
                Err(e) => {
                    attempt += 1;
                    if attempt >= APPEND_ATTEMPTS {
                        return Err(e);
                    }
                    // The failed try may have left a torn frame in the
                    // active segment; rotating supersedes it, so the retry
                    // writes the same LSN into a provably-clean segment.
                    // A rotation failure means storage is truly down:
                    // surface the append error with the log poisoned.
                    std::thread::sleep(std::time::Duration::from_millis(
                        APPEND_RETRY_BACKOFF_MS << (attempt - 1),
                    ));
                    if self.rotate().is_err() {
                        return Err(e);
                    }
                    self.append_retries += 1;
                }
            }
        }
    }

    fn append_once(&mut self, payload: &[u8]) -> Result<u64, DurableError> {
        if self.active_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let mut crc = Crc32::new();
        crc.update(&lsn.to_le_bytes());
        crc.update(payload);
        let mut frame = BytesMut::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc.finish());
        frame.put_u64_le(lsn);
        frame.put_slice(payload);
        let res = (|| -> Result<(), DurableError> {
            let file = self
                .active
                .as_mut()
                .ok_or_else(|| DurableError::Io(std::io::Error::other("no active segment")))?;
            file.write_all(&frame)?;
            file.sync()?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.active_bytes += frame.len() as u64;
                self.next_lsn = lsn + 1;
                Ok(lsn)
            }
            Err(e) => {
                self.poisoned = Some(format!("append of lsn {lsn} failed: {e}"));
                Err(e)
            }
        }
    }

    /// Remove closed segments whose records are all covered by a durable
    /// checkpoint at `watermark` (i.e. segments opened at or below it).
    /// Returns how many were removed.
    pub fn remove_through(&mut self, watermark: u64) -> Result<usize, DurableError> {
        let mut removed = 0;
        let mut kept = Vec::new();
        let mut synced = false;
        for (path, first_lsn, bytes) in self.closed.drain(..) {
            if first_lsn <= watermark {
                self.storage.remove(&path)?;
                removed += 1;
                synced = true;
            } else {
                kept.push((path, first_lsn, bytes));
            }
        }
        self.closed = kept;
        if synced {
            self.storage.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Scan the log directory and return every provably-acknowledged
    /// record with LSN greater than `from_lsn`, in order. See the module
    /// docs for the truncation and supersession rules.
    pub fn replay(
        storage: &dyn Storage,
        dir: &Path,
        from_lsn: u64,
    ) -> Result<WalReplay, DurableError> {
        let mut segments: Vec<(u64, String)> = storage
            .list(dir)?
            .into_iter()
            .filter_map(|name| parse_segment_name(&name).map(|lsn| (lsn, name)))
            .collect();
        segments.sort();
        let mut out = WalReplay {
            records: Vec::new(),
            truncated_tail_bytes: 0,
            segments_scanned: 0,
            bytes_scanned: 0,
        };
        let mut stopped = false;
        for (seg_idx, (named_lsn, name)) in segments.iter().enumerate() {
            let path = dir.join(name);
            if stopped {
                // A fatal gap upstream: later records cannot be proven part
                // of a consistent prefix. Count them as truncated.
                out.truncated_tail_bytes += storage.size(&path).unwrap_or(0);
                continue;
            }
            let data = storage.read(&path)?;
            out.segments_scanned += 1;
            out.bytes_scanned += data.len() as u64;
            if data.len() < HEADER_LEN as usize
                || &data[..4] != MAGIC
                || (&data[4..8]).get_u32_le() != VERSION
                || (&data[8..16]).get_u64_le() != *named_lsn
            {
                // Torn or corrupt header. Legitimate only for the newest
                // segment (created but not fully written before a crash).
                out.truncated_tail_bytes += data.len() as u64;
                if seg_idx + 1 < segments.len() {
                    stopped = true;
                }
                continue;
            }
            // This segment supersedes any higher-LSN frames taken from
            // older segments: they were never acknowledged.
            while out
                .records
                .last()
                .is_some_and(|&(lsn, _)| lsn >= *named_lsn)
            {
                out.records.pop();
            }
            let expected_cont = match out.records.last() {
                Some(&(last, _)) => last + 1,
                None => from_lsn + 1,
            };
            if *named_lsn > expected_cont {
                // This segment starts beyond the contiguous prefix: a
                // segment in between was lost or corrupted, so nothing
                // from here on is provably consistent.
                stopped = true;
                out.truncated_tail_bytes += (data.len() as u64).saturating_sub(HEADER_LEN);
                continue;
            }
            let mut expected = expected_cont;
            let mut pos = HEADER_LEN as usize;
            while pos + FRAME_OVERHEAD <= data.len() {
                let mut head = &data[pos..pos + FRAME_OVERHEAD];
                let len = head.get_u32_le() as usize;
                let stored_crc = head.get_u32_le();
                let lsn = head.get_u64_le();
                if len > MAX_RECORD_BYTES || pos + FRAME_OVERHEAD + len > data.len() {
                    break; // torn tail
                }
                let payload = &data[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
                let mut crc = Crc32::new();
                crc.update(&lsn.to_le_bytes());
                crc.update(payload);
                if crc.finish() != stored_crc {
                    break; // torn or corrupt frame
                }
                if lsn >= expected {
                    if lsn > expected {
                        // A hole inside a segment can only mean corruption;
                        // nothing after it is provably consistent.
                        stopped = true;
                        break;
                    }
                    out.records.push((lsn, payload.to_vec()));
                    expected = lsn + 1;
                }
                pos += FRAME_OVERHEAD + len;
            }
            out.truncated_tail_bytes += (data.len() - pos.min(data.len())) as u64;
        }
        Ok(out)
    }
}

/// Result of [`Wal::replay`].
#[derive(Debug)]
pub struct WalReplay {
    /// Recovered `(lsn, payload)` records in LSN order, strictly
    /// consecutive, all greater than the `from_lsn` passed to replay.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes discarded as torn tails, corrupt frames, or unprovable
    /// suffixes.
    pub truncated_tail_bytes: u64,
    /// Segment files read.
    pub segments_scanned: usize,
    /// Total bytes read across scanned segments.
    pub bytes_scanned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, MemStorage};

    fn wal_dir() -> PathBuf {
        PathBuf::from("/svc/wal")
    }

    fn new_wal(storage: Arc<dyn Storage>, segment_bytes: u64, next_lsn: u64) -> Wal {
        Wal::create(storage, wal_dir(), WalConfig { segment_bytes }, next_lsn).unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
        for i in 0..20u8 {
            let lsn = wal.append(&[i; 33]).unwrap();
            assert_eq!(lsn, 1 + i as u64);
        }
        let replay = Wal::replay(storage.as_ref(), &wal_dir(), 0).unwrap();
        assert_eq!(replay.records.len(), 20);
        assert_eq!(replay.truncated_tail_bytes, 0);
        for (i, (lsn, payload)) in replay.records.iter().enumerate() {
            assert_eq!(*lsn, 1 + i as u64);
            assert_eq!(payload, &vec![i as u8; 33]);
        }
        // from_lsn filters.
        let replay = Wal::replay(storage.as_ref(), &wal_dir(), 15).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records[0].0, 16);
    }

    #[test]
    fn rotation_spans_segments() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut wal = new_wal(Arc::clone(&storage), 128, 1);
        for i in 0..50u8 {
            wal.append(&[i; 40]).unwrap();
        }
        assert!(wal.segment_count() > 1, "expected rotation");
        let replay = Wal::replay(storage.as_ref(), &wal_dir(), 0).unwrap();
        assert_eq!(replay.records.len(), 50);
        assert!(replay.segments_scanned > 1);
    }

    #[test]
    fn crash_yields_acked_prefix_at_every_point() {
        // Reference run to count storage ops.
        let reference = Arc::new(MemStorage::new());
        {
            let mut wal = new_wal(Arc::clone(&reference) as Arc<dyn Storage>, 256, 1);
            for i in 0..24u8 {
                wal.append(&[i; 21]).unwrap();
            }
        }
        let total_ops = reference.ops_executed();
        for crash_at in 0..total_ops {
            let mem = Arc::new(MemStorage::with_plan(FaultPlan::crash_at(crash_at)));
            let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
            let mut acked = 0u64;
            let run = (|| -> Result<(), DurableError> {
                let mut wal = Wal::create(
                    Arc::clone(&storage),
                    wal_dir(),
                    WalConfig { segment_bytes: 256 },
                    1,
                )?;
                for i in 0..24u8 {
                    wal.append(&[i; 21])?;
                    acked += 1;
                }
                Ok(())
            })();
            assert!(run.is_err(), "crash point {crash_at} did not fire");
            let after = mem.crashed_view();
            let replay = Wal::replay(&after, &wal_dir(), 0).unwrap();
            // Strictly consecutive from 1, covering at least the acked ops.
            assert!(
                replay.records.len() as u64 >= acked,
                "crash {crash_at}: acked {acked} but replayed {}",
                replay.records.len()
            );
            assert!(replay.records.len() as u64 <= acked + 1);
            for (i, (lsn, payload)) in replay.records.iter().enumerate() {
                assert_eq!(*lsn, 1 + i as u64);
                assert_eq!(payload, &vec![i as u8; 21]);
            }
        }
    }

    #[test]
    fn transient_append_failure_retries_and_preserves_acked_ops() {
        // Work out which op indices are the second append's write and
        // fsync by probing: create a WAL (ops for dir + segment + header)
        // plus one append, then fault the next op.
        let probe = Arc::new(MemStorage::new());
        {
            let mut wal = new_wal(Arc::clone(&probe) as Arc<dyn Storage>, 1 << 20, 1);
            wal.append(b"first").unwrap();
        }
        let ops_before_second = probe.ops_executed();
        // offset 0 = the append's write fails, 1 = its fsync fails.
        for offset in 0..2u64 {
            let mem = Arc::new(MemStorage::with_plan(FaultPlan::fail_at(
                ops_before_second + offset,
            )));
            let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
            let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
            assert_eq!(wal.append(b"first").unwrap(), 1);
            // The transient failure is absorbed: the caller sees a normal
            // ack with the same LSN a fault-free run would have returned.
            assert_eq!(wal.append(b"second").unwrap(), 2, "offset {offset}");
            assert!(wal.poisoned().is_none());
            assert_eq!(wal.append_retries(), 1);
            // The retry went through rotation, superseding whatever the
            // failed try left in the old active segment.
            assert!(wal.segment_count() > 1, "offset {offset}: no rotation");
            assert_eq!(wal.append(b"third").unwrap(), 3);
            // Every acked record is durable — both in the live image and
            // across a crash right now (the retried frame was fsynced in
            // the fresh segment before the append returned).
            for view in [
                Wal::replay(storage.as_ref(), &wal_dir(), 0).unwrap(),
                Wal::replay(&mem.crashed_view(), &wal_dir(), 0).unwrap(),
            ] {
                let payloads: Vec<&[u8]> = view.records.iter().map(|(_, p)| p.as_slice()).collect();
                assert_eq!(
                    payloads,
                    vec![&b"first"[..], &b"second"[..], &b"third"[..]],
                    "offset {offset}"
                );
                for (i, (lsn, _)) in view.records.iter().enumerate() {
                    assert_eq!(*lsn, 1 + i as u64);
                }
            }
        }
    }

    #[test]
    fn poisoned_after_exhausted_append_retries() {
        // A storage that dies for good: every retry (and its rotation)
        // fails, so the append surfaces the error and poisons the log.
        let probe = Arc::new(MemStorage::new());
        {
            let mut wal = new_wal(Arc::clone(&probe) as Arc<dyn Storage>, 1 << 20, 1);
            wal.append(b"first").unwrap();
        }
        let ops_before_second = probe.ops_executed();
        let mem = Arc::new(MemStorage::with_plan(FaultPlan::crash_at(
            ops_before_second,
        )));
        let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
        let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
        wal.append(b"first").unwrap();
        assert!(wal.append(b"second").is_err());
        assert!(wal.poisoned().is_some());
        // Subsequent appends rejected without touching storage.
        match wal.append(b"third") {
            Err(DurableError::Poisoned(_)) => {}
            other => panic!("expected poisoned, got {other:?}"),
        }
        // What survives the crash is exactly the acked prefix.
        let replay = Wal::replay(&mem.crashed_view(), &wal_dir(), 0).unwrap();
        let payloads: Vec<&[u8]> = replay.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"first"[..]]);
    }

    #[test]
    fn remove_through_deletes_only_covered_segments() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
        for i in 0..5u8 {
            wal.append(&[i; 8]).unwrap();
        }
        // Checkpoint at watermark 5: rotate, then drop covered segments.
        wal.rotate().unwrap();
        for i in 5..9u8 {
            wal.append(&[i; 8]).unwrap();
        }
        let removed = wal.remove_through(5).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(wal.segment_count(), 1);
        let replay = Wal::replay(storage.as_ref(), &wal_dir(), 5).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[0].0, 6);
    }

    #[test]
    fn mid_log_corruption_truncates_the_suffix() {
        let mem = Arc::new(MemStorage::new());
        let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
        let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
        for i in 0..10u8 {
            wal.append(&[i; 64]).unwrap();
        }
        // Flip a bit inside record 4's payload (frames start after the
        // 16-byte header; each frame is 16 + 64 bytes).
        let seg = wal_dir().join(segment_name(1));
        mem.corrupt(&seg, 16 + 3 * 80 + 16 + 10);
        let replay = Wal::replay(storage.as_ref(), &wal_dir(), 0).unwrap();
        assert_eq!(replay.records.len(), 3, "prefix before the corrupt frame");
        assert!(replay.truncated_tail_bytes > 0);
    }

    #[test]
    fn recovery_restart_supersedes_torn_tail() {
        // First run crashes leaving a torn tail; a second run (started at
        // the replayed next_lsn) appends new records; replay must take the
        // second run's records, never the torn phantom.
        let reference = Arc::new(MemStorage::new());
        {
            let mut wal = new_wal(Arc::clone(&reference) as Arc<dyn Storage>, 1 << 20, 1);
            for i in 0..6u8 {
                wal.append(&[i; 32]).unwrap();
            }
        }
        // Crash during the last append's write (partial frame on disk).
        let total = reference.ops_executed();
        let mem = Arc::new(MemStorage::with_plan(FaultPlan::crash_at(total - 2)));
        let storage: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
        {
            let mut wal = new_wal(Arc::clone(&storage), 1 << 20, 1);
            for i in 0..6u8 {
                let _ = wal.append(&[i; 32]);
            }
        }
        let after = Arc::new(mem.crashed_view());
        let storage2: Arc<dyn Storage> = Arc::clone(&after) as Arc<dyn Storage>;
        let replay = Wal::replay(storage2.as_ref(), &wal_dir(), 0).unwrap();
        let next = replay.records.last().map(|&(l, _)| l + 1).unwrap_or(1);
        let mut wal = new_wal(Arc::clone(&storage2), 1 << 20, next);
        let lsn = wal.append(b"after-recovery").unwrap();
        assert_eq!(lsn, next);
        let replay = Wal::replay(storage2.as_ref(), &wal_dir(), 0).unwrap();
        assert_eq!(replay.records.last().unwrap().1, b"after-recovery");
        // Strictly consecutive from 1.
        for (i, (l, _)) in replay.records.iter().enumerate() {
            assert_eq!(*l, 1 + i as u64);
        }
    }
}
