//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Uses the slice-by-16 variant: sixteen precomputed tables let the
//! hot loop fold 16 input bytes per iteration instead of 1, which
//! matters because every WAL append checksums its whole payload on the
//! acknowledge path. The sixteen lookups per iteration are mutually
//! independent, so they pipeline; a byte-at-a-time loop is a serial
//! dependency chain.

const SLICES: usize = 16;

const fn make_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[t][b] = CRC of byte b followed by t zero bytes: shifting a
    // byte's contribution t positions deeper into the stream.
    let mut t = 1;
    while t < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICES] = make_tables();

/// Streaming CRC-32 accumulator.
///
/// ```
/// let mut crc = av_durable::Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(SLICES);
        for chunk in &mut chunks {
            let a = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let b = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            let c = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
            let d = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
            crc = TABLES[15][(a & 0xFF) as usize]
                ^ TABLES[14][((a >> 8) & 0xFF) as usize]
                ^ TABLES[13][((a >> 16) & 0xFF) as usize]
                ^ TABLES[12][(a >> 24) as usize]
                ^ TABLES[11][(b & 0xFF) as usize]
                ^ TABLES[10][((b >> 8) & 0xFF) as usize]
                ^ TABLES[9][((b >> 16) & 0xFF) as usize]
                ^ TABLES[8][(b >> 24) as usize]
                ^ TABLES[7][(c & 0xFF) as usize]
                ^ TABLES[6][((c >> 8) & 0xFF) as usize]
                ^ TABLES[5][((c >> 16) & 0xFF) as usize]
                ^ TABLES[4][(c >> 24) as usize]
                ^ TABLES[3][(d & 0xFF) as usize]
                ^ TABLES[2][((d >> 8) & 0xFF) as usize]
                ^ TABLES[1][((d >> 16) & 0xFF) as usize]
                ^ TABLES[0][(d >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finalize and return the checksum; the accumulator may be discarded.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for split in [0, 1, 7, 100, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
