//! Crash-safe durability primitives for the Auto-Validate service.
//!
//! This crate is payload-agnostic: it knows nothing about pattern indices
//! or rule catalogs. It provides the four building blocks the service
//! composes into its durability subsystem:
//!
//! - [`storage`] — a [`Storage`] trait abstracting every
//!   file-system operation durability code is allowed to perform
//!   (create/append/sync/rename/remove/sync-dir), with
//!   [`OsStorage`] as the production implementation.
//! - [`fault`] — [`MemStorage`], an in-memory `Storage`
//!   with a precise crash model (volatile vs. durable bytes, unsynced
//!   directory entries, torn tails) driven by a deterministic
//!   [`FaultPlan`]. Test harnesses crash it at every
//!   injection point and recover from [`crashed_view`](fault::MemStorage::crashed_view).
//! - [`wal`] — an append-only, CRC-framed [`Wal`] with segment
//!   rotation, fsync-per-record, poisoning on append failure, and replay
//!   with torn-tail truncation.
//! - [`manifest`] — generation-numbered checkpoint [`Manifest`]s
//!   written with an atomic temp + fsync + rename + dir-fsync swap; recovery
//!   scans newest-first and takes the first manifest whose CRC32 footer
//!   verifies.
//!
//! The correctness contract the pieces are designed around: after a crash
//! at *any* storage operation, recovery (newest valid manifest → verify
//! checksums → replay WAL, truncating the torn tail) yields state equal to
//! the state after some prefix of the logged operation history, and that
//! prefix covers every operation that was acknowledged before the crash.

#![forbid(unsafe_code)]

mod crc32;
pub mod fault;
pub mod manifest;
pub mod storage;
pub mod wal;

pub use crc32::{crc32, Crc32};
pub use fault::{FaultPlan, MemStorage};
pub use manifest::{Manifest, ManifestError, ShardFileEntry};
pub use storage::{write_atomic, OsStorage, Storage, StorageFile};
pub use wal::{Wal, WalConfig, WalReplay};

use std::fmt;

/// Error type shared by the WAL and manifest layers.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying storage operation failed.
    Io(std::io::Error),
    /// On-storage bytes failed validation (bad magic, bad CRC, short file).
    /// Names the offending file and the byte offset where validation failed.
    Corrupt {
        /// File the corruption was detected in.
        file: String,
        /// Byte offset within the file where validation failed.
        offset: u64,
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// The WAL rejected an append because an earlier append failed and the
    /// log has not yet been rotated by a successful checkpoint.
    Poisoned(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Corrupt {
                file,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "corrupt durability file {file} at byte {offset}: {detail}"
                )
            }
            DurableError::Poisoned(msg) => {
                write!(f, "write-ahead log poisoned by earlier failure: {msg}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}
