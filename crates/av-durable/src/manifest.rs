//! Generation-numbered checkpoint manifests.
//!
//! A manifest is the durable root of a checkpoint: it names the catalog
//! file and one shard file per index shard, each with its CRC-32 and
//! size, plus the WAL watermark (`last_lsn`) the checkpoint covers.
//! Manifests are written with the atomic temp + fsync + rename +
//! dir-fsync dance ([`crate::storage::write_atomic`]) and carry a CRC-32
//! footer over their own bytes, so recovery can scan generations
//! newest-first and trust the first manifest that verifies.

use std::fmt;
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::crc32::crc32;
use crate::storage::{write_atomic, Storage};
use crate::DurableError;

const MAGIC: &[u8; 4] = b"AVMN";
const VERSION: u32 = 1;
/// Guard on decoded counts/lengths so a corrupt manifest cannot force a
/// huge allocation before the footer check catches it.
const MAX_NAME_LEN: usize = 4096;
const MAX_SHARDS: usize = 1 << 20;

/// One shard file referenced by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFileEntry {
    /// Shard index within the pattern index.
    pub shard: u32,
    /// File name (relative to the checkpoint directory).
    pub file: String,
    /// CRC-32 of the file's full contents.
    pub crc: u32,
    /// File size in bytes.
    pub bytes: u64,
}

/// A checkpoint manifest. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic checkpoint generation (1-based).
    pub generation: u64,
    /// Highest LSN covered: recovery replays only WAL records above it.
    pub last_lsn: u64,
    /// Number of columns ingested into the checkpointed index.
    pub num_columns: u64,
    /// The index's FPR threshold denominator (tau).
    pub tau: u64,
    /// log2 of the shard count.
    pub shard_bits: u32,
    /// Catalog file name (relative to the checkpoint directory); empty if
    /// the checkpoint carries no catalog.
    pub catalog_file: String,
    /// CRC-32 of the catalog file's contents.
    pub catalog_crc: u32,
    /// Catalog file size in bytes.
    pub catalog_bytes: u64,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardFileEntry>,
}

/// Validation failure while decoding a manifest.
#[derive(Debug)]
pub struct ManifestError {
    /// Byte offset where validation failed.
    pub offset: u64,
    /// What failed to validate.
    pub detail: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "manifest invalid at byte {}: {}",
            self.offset, self.detail
        )
    }
}

impl std::error::Error for ManifestError {}

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut &[u8], offset: &mut u64) -> Result<String, ManifestError> {
    let len = get_u32(buf, offset, "name length")? as usize;
    if len > MAX_NAME_LEN {
        return Err(ManifestError {
            offset: *offset,
            detail: format!("name length {len} exceeds limit"),
        });
    }
    if buf.len() < len {
        return Err(ManifestError {
            offset: *offset,
            detail: "truncated name".into(),
        });
    }
    let name = String::from_utf8(buf[..len].to_vec()).map_err(|_| ManifestError {
        offset: *offset,
        detail: "name is not UTF-8".into(),
    })?;
    buf.advance(len);
    *offset += len as u64;
    Ok(name)
}

fn get_u32(buf: &mut &[u8], offset: &mut u64, what: &str) -> Result<u32, ManifestError> {
    if buf.len() < 4 {
        return Err(ManifestError {
            offset: *offset,
            detail: format!("truncated {what}"),
        });
    }
    *offset += 4;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8], offset: &mut u64, what: &str) -> Result<u64, ManifestError> {
    if buf.len() < 8 {
        return Err(ManifestError {
            offset: *offset,
            detail: format!("truncated {what}"),
        });
    }
    *offset += 8;
    Ok(buf.get_u64_le())
}

impl Manifest {
    /// File name for generation `generation`.
    pub fn file_name(generation: u64) -> String {
        format!("manifest-{generation:016x}.avman")
    }

    /// Parse a generation number back out of a manifest file name.
    pub fn parse_file_name(name: &str) -> Option<u64> {
        let hex = name.strip_prefix("manifest-")?.strip_suffix(".avman")?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()
    }

    /// Serialize, ending with a CRC-32 footer over all preceding bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128 + 64 * self.shards.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.generation);
        buf.put_u64_le(self.last_lsn);
        buf.put_u64_le(self.num_columns);
        buf.put_u64_le(self.tau);
        buf.put_u32_le(self.shard_bits);
        put_name(&mut buf, &self.catalog_file);
        buf.put_u32_le(self.catalog_crc);
        buf.put_u64_le(self.catalog_bytes);
        buf.put_u32_le(self.shards.len() as u32);
        for entry in &self.shards {
            buf.put_u32_le(entry.shard);
            put_name(&mut buf, &entry.file);
            buf.put_u32_le(entry.crc);
            buf.put_u64_le(entry.bytes);
        }
        let footer = crc32(&buf);
        buf.put_u32_le(footer);
        buf.to_vec()
    }

    /// Decode and validate (magic, version, CRC-32 footer).
    pub fn from_bytes(data: &[u8]) -> Result<Manifest, ManifestError> {
        if data.len() < 8 {
            return Err(ManifestError {
                offset: 0,
                detail: "shorter than magic + version".into(),
            });
        }
        if &data[..4] != MAGIC {
            return Err(ManifestError {
                offset: 0,
                detail: "bad magic".into(),
            });
        }
        let body_len = data.len() - 4;
        let stored = (&data[body_len..]).get_u32_le();
        let computed = crc32(&data[..body_len]);
        if stored != computed {
            return Err(ManifestError {
                offset: body_len as u64,
                detail: format!("crc32 mismatch: stored {stored:08x}, computed {computed:08x}"),
            });
        }
        let mut buf = &data[4..body_len];
        let mut offset = 4u64;
        let version = get_u32(&mut buf, &mut offset, "version")?;
        if version != VERSION {
            return Err(ManifestError {
                offset: 4,
                detail: format!("unsupported version {version}"),
            });
        }
        let generation = get_u64(&mut buf, &mut offset, "generation")?;
        let last_lsn = get_u64(&mut buf, &mut offset, "last_lsn")?;
        let num_columns = get_u64(&mut buf, &mut offset, "num_columns")?;
        let tau = get_u64(&mut buf, &mut offset, "tau")?;
        let shard_bits = get_u32(&mut buf, &mut offset, "shard_bits")?;
        let catalog_file = get_name(&mut buf, &mut offset)?;
        let catalog_crc = get_u32(&mut buf, &mut offset, "catalog crc")?;
        let catalog_bytes = get_u64(&mut buf, &mut offset, "catalog size")?;
        let n_shards = get_u32(&mut buf, &mut offset, "shard count")? as usize;
        if n_shards > MAX_SHARDS {
            return Err(ManifestError {
                offset,
                detail: format!("shard count {n_shards} exceeds limit"),
            });
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let shard = get_u32(&mut buf, &mut offset, "shard index")?;
            let file = get_name(&mut buf, &mut offset)?;
            let crc = get_u32(&mut buf, &mut offset, "shard crc")?;
            let bytes = get_u64(&mut buf, &mut offset, "shard size")?;
            shards.push(ShardFileEntry {
                shard,
                file,
                crc,
                bytes,
            });
        }
        if !buf.is_empty() {
            return Err(ManifestError {
                offset,
                detail: format!("{} trailing bytes", buf.len()),
            });
        }
        Ok(Manifest {
            generation,
            last_lsn,
            num_columns,
            tau,
            shard_bits,
            catalog_file,
            catalog_crc,
            catalog_bytes,
            shards,
        })
    }

    /// Write this manifest into `dir` atomically (temp + fsync + rename +
    /// dir fsync).
    pub fn write(&self, storage: &dyn Storage, dir: &Path) -> Result<(), DurableError> {
        let path = dir.join(Manifest::file_name(self.generation));
        write_atomic(storage, &path, &self.to_bytes())?;
        Ok(())
    }

    /// All manifest generations present in `dir`, newest first.
    pub fn list_generations(storage: &dyn Storage, dir: &Path) -> Result<Vec<u64>, DurableError> {
        let mut gens: Vec<u64> = storage
            .list(dir)?
            .iter()
            .filter_map(|n| Manifest::parse_file_name(n))
            .collect();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        Ok(gens)
    }

    /// Load the newest manifest in `dir` that validates, together with
    /// the generations that were skipped as corrupt. `Ok(None)` means no
    /// manifest exists at all.
    pub fn load_newest(
        storage: &dyn Storage,
        dir: &Path,
    ) -> Result<Option<(Manifest, Vec<u64>)>, DurableError> {
        let mut skipped = Vec::new();
        for generation in Manifest::list_generations(storage, dir)? {
            let path = dir.join(Manifest::file_name(generation));
            let data = match storage.read(&path) {
                Ok(d) => d,
                Err(_) => {
                    skipped.push(generation);
                    continue;
                }
            };
            match Manifest::from_bytes(&data) {
                Ok(m) => return Ok(Some((m, skipped))),
                Err(_) => skipped.push(generation),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::MemStorage;
    use std::path::PathBuf;

    fn sample(generation: u64) -> Manifest {
        Manifest {
            generation,
            last_lsn: 42,
            num_columns: 1000,
            tau: 13,
            shard_bits: 3,
            catalog_file: format!("catalog-g{generation:x}.avcat"),
            catalog_crc: 0xDEAD_BEEF,
            catalog_bytes: 512,
            shards: (0..8)
                .map(|i| ShardFileEntry {
                    shard: i,
                    file: format!("shard-{i:04x}-g{generation:x}.avs"),
                    crc: 0x1000 + i,
                    bytes: 64 * (i as u64 + 1),
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample(7);
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample(3).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Manifest::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample(3).to_bytes();
        for len in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn load_newest_skips_corrupt_generations() {
        let storage = MemStorage::new();
        let dir = PathBuf::from("/ckpt");
        sample(1).write(&storage, &dir).unwrap();
        sample(2).write(&storage, &dir).unwrap();
        sample(3).write(&storage, &dir).unwrap();
        // Corrupt generation 3's file.
        storage.corrupt(&dir.join(Manifest::file_name(3)), 20);
        let (m, skipped) = Manifest::load_newest(&storage, &dir).unwrap().unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(skipped, vec![3]);
    }

    #[test]
    fn load_newest_empty_dir() {
        let storage = MemStorage::new();
        assert!(Manifest::load_newest(&storage, &PathBuf::from("/nope"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(
            Manifest::parse_file_name(&Manifest::file_name(0xABC)),
            Some(0xABC)
        );
        assert_eq!(Manifest::parse_file_name("manifest-xyz.avman"), None);
        assert_eq!(
            Manifest::parse_file_name("wal-0000000000000001.avwal"),
            None
        );
    }
}
