//! In-memory [`Storage`] with deterministic fault injection.
//!
//! [`MemStorage`] models the crash semantics of a POSIX file system
//! precisely enough to punish every classic durability bug:
//!
//! - **Unsynced data is volatile.** Bytes written but not `sync`ed may be
//!   lost; after a crash an inode retains its synced prefix plus a
//!   *deterministic, adversarial* amount of the unsynced tail (torn
//!   writes).
//! - **Unsynced directory entries are volatile.** Creates, renames and
//!   removes only become crash-durable after `sync_dir` on the parent;
//!   until then the pre-op name binding survives a crash.
//! - **Create-over-existing clobbers.** `create` truncates, and the
//!   truncate may hit the disk immediately: creating over a name that is
//!   already crash-durable marks the old contents as lost-on-crash. Code
//!   that overwrites files in place instead of temp+rename loses data here.
//!
//! A [`FaultPlan`] crashes the storage at the Nth mutating operation (the
//! op takes partial effect, every later op fails) or injects a single
//! transient failure. After a crash, [`MemStorage::crashed_view`] produces
//! a fresh, fault-free storage holding exactly what survived — the
//! recovery harness reopens the service on it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::storage::{Storage, StorageFile};

/// Deterministic fault schedule for a [`MemStorage`].
///
/// Mutating operations (create, write, sync, rename, remove,
/// create-dir, sync-dir) are numbered from 0 in execution order;
/// read-side operations are not counted.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash at the Nth mutating op: the op takes *partial* effect (a
    /// deterministic short write for writes, a prefix of pending entry
    /// updates for directory syncs, the truncate-clobber for creates,
    /// nothing for the rest), returns an error, and every later op fails.
    pub crash_at_op: Option<u64>,
    /// Fail the Nth mutating op with an injected I/O error and *no*
    /// effect, then let every later op proceed normally. Models a
    /// transient failed write/fsync/rename.
    pub fail_at_op: Option<u64>,
}

impl FaultPlan {
    /// Plan that crashes at mutating op `n`.
    pub fn crash_at(n: u64) -> Self {
        FaultPlan {
            crash_at_op: Some(n),
            fail_at_op: None,
        }
    }

    /// Plan that injects one transient failure at mutating op `n`.
    pub fn fail_at(n: u64) -> Self {
        FaultPlan {
            crash_at_op: None,
            fail_at_op: Some(n),
        }
    }
}

#[derive(Debug, Clone)]
struct Inode {
    /// Bytes as the live process sees them (append-only after creation).
    volatile: Vec<u8>,
    /// Length of the synced (crash-durable) prefix of `volatile`.
    durable_len: usize,
}

#[derive(Debug, Clone)]
struct DurableEntry {
    ino: u64,
    /// A `create` ran over this durable name: on crash the contents are
    /// gone (the truncate may have hit disk), though the name survives.
    clobbered: bool,
}

#[derive(Debug, Clone)]
enum PendingOp {
    Create { path: PathBuf, ino: u64 },
    Rename { from: PathBuf, to: PathBuf },
    Remove { path: PathBuf },
}

impl PendingOp {
    fn dir(&self) -> &Path {
        let p = match self {
            PendingOp::Create { path, .. } => path,
            PendingOp::Rename { to, .. } => to,
            PendingOp::Remove { path } => path,
        };
        p.parent().unwrap_or_else(|| Path::new(""))
    }

    fn apply(&self, durable_ns: &mut BTreeMap<PathBuf, DurableEntry>) {
        match self {
            PendingOp::Create { path, ino } => {
                durable_ns.insert(
                    path.clone(),
                    DurableEntry {
                        ino: *ino,
                        clobbered: false,
                    },
                );
            }
            PendingOp::Rename { from, to } => {
                if let Some(entry) = durable_ns.remove(from) {
                    durable_ns.insert(to.clone(), entry);
                }
            }
            PendingOp::Remove { path } => {
                durable_ns.remove(path);
            }
        }
    }
}

#[derive(Debug)]
struct State {
    inodes: BTreeMap<u64, Inode>,
    /// Live name → inode map (what the running process sees).
    volatile_ns: BTreeMap<PathBuf, u64>,
    /// Crash-durable name → inode map.
    durable_ns: BTreeMap<PathBuf, DurableEntry>,
    /// Directory-entry updates not yet made durable, in issue order.
    pending: Vec<PendingOp>,
    next_ino: u64,
    ops: u64,
    crashed: bool,
    crash_op: u64,
    plan: FaultPlan,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

fn injected_err(op: u64, what: &str) -> io::Error {
    io::Error::other(format!("injected fault at storage op {op}: {what}"))
}

fn crashed_err() -> io::Error {
    io::Error::other("storage crashed by fault plan")
}

/// What the fault gate decided for one mutating op.
enum Gate {
    /// Apply the op fully.
    Full,
    /// Apply the op's crash-partial effect, then report an error; the
    /// payload is the op number (used to derive deterministic tear sizes).
    Crash(u64),
    /// Apply nothing, report an error, keep running.
    Fail(u64),
}

/// In-memory fault-injecting [`Storage`]. See the module docs. Cloning
/// shares the underlying state — keep a clone as the inspection handle
/// after handing the original to a service as `Arc<dyn Storage>`.
#[derive(Debug, Clone)]
pub struct MemStorage {
    state: Arc<Mutex<State>>,
}

impl Default for MemStorage {
    fn default() -> Self {
        MemStorage::new()
    }
}

impl MemStorage {
    /// Fault-free in-memory storage.
    pub fn new() -> Self {
        MemStorage::with_plan(FaultPlan::default())
    }

    /// In-memory storage executing `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        MemStorage {
            state: Arc::new(Mutex::new(State {
                inodes: BTreeMap::new(),
                volatile_ns: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                pending: Vec::new(),
                next_ino: 1,
                ops: 0,
                crashed: false,
                crash_op: 0,
                plan,
            })),
        }
    }

    /// Number of mutating ops executed so far (including the crashing op).
    pub fn ops_executed(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Whether the fault plan's crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// The storage as a fresh, fault-free [`MemStorage`] holding exactly
    /// the state that survives a crash right now: durable directory
    /// entries only, each file truncated to its synced prefix plus a
    /// deterministic slice of its unsynced tail (or emptied, if the name
    /// was clobbered by a truncating `create`).
    pub fn crashed_view(&self) -> MemStorage {
        let st = self.state.lock().unwrap();
        let mut inodes = BTreeMap::new();
        let mut volatile_ns = BTreeMap::new();
        let mut durable_ns = BTreeMap::new();
        let mut next_ino = 1u64;
        for (path, entry) in &st.durable_ns {
            let content = if entry.clobbered {
                Vec::new()
            } else {
                match st.inodes.get(&entry.ino) {
                    Some(inode) => {
                        let synced = inode.durable_len.min(inode.volatile.len());
                        let tail = inode.volatile.len() - synced;
                        let leak = (mix(st.crash_op, entry.ino) % (tail as u64 + 1)) as usize;
                        inode.volatile[..synced + leak].to_vec()
                    }
                    None => Vec::new(),
                }
            };
            let ino = next_ino;
            next_ino += 1;
            let durable_len = content.len();
            inodes.insert(
                ino,
                Inode {
                    volatile: content,
                    durable_len,
                },
            );
            volatile_ns.insert(path.clone(), ino);
            durable_ns.insert(
                path.clone(),
                DurableEntry {
                    ino,
                    clobbered: false,
                },
            );
        }
        MemStorage {
            state: Arc::new(Mutex::new(State {
                inodes,
                volatile_ns,
                durable_ns,
                pending: Vec::new(),
                next_ino,
                ops: 0,
                crashed: false,
                crash_op: 0,
                plan: FaultPlan::default(),
            })),
        }
    }

    /// Flip one bit of the file at `path`, in both the volatile and
    /// durable images. Test helper for corruption-detection coverage.
    pub fn corrupt(&self, path: &Path, byte: usize) {
        let mut st = self.state.lock().unwrap();
        let ino = *st
            .volatile_ns
            .get(path)
            .unwrap_or_else(|| panic!("corrupt: no file at {}", path.display()));
        let inode = st.inodes.get_mut(&ino).unwrap();
        assert!(byte < inode.volatile.len(), "corrupt: byte out of range");
        inode.volatile[byte] ^= 0x40;
    }

    /// Every live file path, sorted. Test helper.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.state
            .lock()
            .unwrap()
            .volatile_ns
            .keys()
            .cloned()
            .collect()
    }
}

impl State {
    fn gate(&mut self) -> io::Result<Gate> {
        if self.crashed {
            return Err(crashed_err());
        }
        let op = self.ops;
        self.ops += 1;
        if self.plan.crash_at_op == Some(op) {
            self.crashed = true;
            self.crash_op = op;
            return Ok(Gate::Crash(op));
        }
        if self.plan.fail_at_op == Some(op) {
            return Ok(Gate::Fail(op));
        }
        Ok(Gate::Full)
    }
}

struct MemFile {
    state: Arc<Mutex<State>>,
    ino: u64,
}

impl StorageFile for MemFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.gate()? {
            Gate::Full => {
                let ino = self.ino;
                if let Some(inode) = st.inodes.get_mut(&ino) {
                    inode.volatile.extend_from_slice(buf);
                }
                Ok(())
            }
            Gate::Crash(op) => {
                // Short write: a deterministic prefix lands before the crash.
                let short = (mix(op, self.ino) % (buf.len() as u64 + 1)) as usize;
                let ino = self.ino;
                if let Some(inode) = st.inodes.get_mut(&ino) {
                    inode.volatile.extend_from_slice(&buf[..short]);
                }
                Err(injected_err(op, "short write then crash"))
            }
            Gate::Fail(op) => Err(injected_err(op, "failed write")),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.gate()? {
            Gate::Full => {
                let ino = self.ino;
                if let Some(inode) = st.inodes.get_mut(&ino) {
                    inode.durable_len = inode.volatile.len();
                }
                Ok(())
            }
            Gate::Crash(op) => Err(injected_err(op, "crash during fsync")),
            Gate::Fail(op) => Err(injected_err(op, "failed fsync")),
        }
    }
}

impl Storage for MemStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut st = self.state.lock().unwrap();
        let gate = st.gate()?;
        // The truncate of an existing durable name can hit the disk at any
        // moment — model it as clobbering the old durable contents even
        // when the create itself crashes.
        if let Some(entry) = st.durable_ns.get_mut(&path.to_path_buf()) {
            entry.clobbered = true;
        }
        match gate {
            Gate::Full => {
                let ino = st.next_ino;
                st.next_ino += 1;
                st.inodes.insert(
                    ino,
                    Inode {
                        volatile: Vec::new(),
                        durable_len: 0,
                    },
                );
                st.volatile_ns.insert(path.to_path_buf(), ino);
                st.pending.push(PendingOp::Create {
                    path: path.to_path_buf(),
                    ino,
                });
                Ok(Box::new(MemFile {
                    state: Arc::clone(&self.state),
                    ino,
                }))
            }
            Gate::Crash(op) => Err(injected_err(op, "crash during create")),
            Gate::Fail(op) => Err(injected_err(op, "failed create")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(crashed_err());
        }
        let ino = st
            .volatile_ns
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(st.inodes[ino].volatile.clone())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.gate()? {
            Gate::Full => {
                let ino = st
                    .volatile_ns
                    .remove(from)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source"))?;
                st.volatile_ns.insert(to.to_path_buf(), ino);
                st.pending.push(PendingOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                });
                Ok(())
            }
            Gate::Crash(op) => Err(injected_err(op, "crash during rename")),
            Gate::Fail(op) => Err(injected_err(op, "failed rename")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.gate()? {
            Gate::Full => {
                st.volatile_ns
                    .remove(path)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "remove target"))?;
                st.pending.push(PendingOp::Remove {
                    path: path.to_path_buf(),
                });
                Ok(())
            }
            Gate::Crash(op) => Err(injected_err(op, "crash during remove")),
            Gate::Fail(op) => Err(injected_err(op, "failed remove")),
        }
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        // Directories are implicit in this model, but the call still
        // passes the fault gate so crash points line up with real runs.
        let mut st = self.state.lock().unwrap();
        match st.gate()? {
            Gate::Full => Ok(()),
            Gate::Crash(op) => Err(injected_err(op, "crash during create_dir")),
            Gate::Fail(op) => Err(injected_err(op, "failed create_dir")),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let gate = st.gate()?;
        let matching: Vec<usize> = st
            .pending
            .iter()
            .enumerate()
            .filter(|(_, op)| op.dir() == path)
            .map(|(i, _)| i)
            .collect();
        let applied = match gate {
            Gate::Full => matching.len(),
            // A crashing fsync may have persisted a prefix of the pending
            // entry updates before failing.
            Gate::Crash(op) => (mix(op, 0x5D1E) % (matching.len() as u64 + 1)) as usize,
            Gate::Fail(_) => 0,
        };
        let mut durable_ns = std::mem::take(&mut st.durable_ns);
        for &i in matching.iter().take(applied) {
            st.pending[i].apply(&mut durable_ns);
        }
        st.durable_ns = durable_ns;
        // Remove applied ops (descending index so positions stay valid).
        for &i in matching.iter().take(applied).rev() {
            st.pending.remove(i);
        }
        match gate {
            Gate::Full => Ok(()),
            Gate::Crash(op) => Err(injected_err(op, "crash during dir fsync")),
            Gate::Fail(op) => Err(injected_err(op, "failed dir fsync")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(crashed_err());
        }
        let mut names: Vec<String> = st
            .volatile_ns
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock().unwrap();
        !st.crashed && st.volatile_ns.contains_key(path)
    }

    fn size(&self, path: &Path) -> io::Result<u64> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(crashed_err());
        }
        let ino = st
            .volatile_ns
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(st.inodes[ino].volatile.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::write_atomic;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    /// Fully durable write: create, write, sync file, sync dir.
    fn put(storage: &MemStorage, path: &str, bytes: &[u8]) {
        let path = p(path);
        let mut f = storage.create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync().unwrap();
        drop(f);
        storage
            .sync_dir(path.parent().unwrap_or_else(|| Path::new("")))
            .unwrap();
    }

    #[test]
    fn durable_write_survives_crash() {
        let storage = MemStorage::new();
        put(&storage, "/d/a.bin", b"payload");
        let after = storage.crashed_view();
        assert_eq!(after.read(&p("/d/a.bin")).unwrap(), b"payload");
    }

    #[test]
    fn unsynced_file_name_is_lost() {
        let storage = MemStorage::new();
        let mut f = storage.create(&p("/d/a.bin")).unwrap();
        f.write_all(b"payload").unwrap();
        f.sync().unwrap(); // file synced, but the directory entry is not
        drop(f);
        let after = storage.crashed_view();
        assert!(!after.exists(&p("/d/a.bin")));
    }

    #[test]
    fn recreate_over_durable_name_clobbers_on_crash() {
        let storage = MemStorage::new();
        put(&storage, "/d/a.bin", b"durable|");
        let mut f = storage.create(&p("/d/a.bin")).unwrap();
        f.write_all(b"x").unwrap();
        drop(f);
        let after = storage.crashed_view();
        assert_eq!(after.read(&p("/d/a.bin")).unwrap(), b"");
    }

    #[test]
    fn torn_tail_is_a_prefix_of_unsynced_bytes() {
        let storage = MemStorage::new();
        put(&storage, "/d/a.bin", b"synced");
        // Re-open pattern is append-only via a fresh temp file in real
        // code; here exercise an inode with a synced prefix + unsynced tail.
        let path = p("/d/b.bin");
        let mut f = storage.create(&path).unwrap();
        f.write_all(b"AAAA").unwrap();
        f.sync().unwrap();
        f.write_all(b"BBBBBBBB").unwrap(); // never synced
        drop(f);
        storage.sync_dir(&p("/d")).unwrap();
        let after = storage.crashed_view();
        let got = after.read(&path).unwrap();
        assert!(got.len() >= 4 && got.len() <= 12, "len {}", got.len());
        assert_eq!(&got[..4], b"AAAA");
        assert!(got[4..].iter().all(|&b| b == b'B'));
    }

    #[test]
    fn rename_is_atomic_and_needs_dir_sync() {
        let storage = MemStorage::new();
        put(&storage, "/d/target", b"old");
        let mut f = storage.create(&p("/d/target.tmp")).unwrap();
        f.write_all(b"new").unwrap();
        f.sync().unwrap();
        drop(f);
        storage
            .rename(&p("/d/target.tmp"), &p("/d/target"))
            .unwrap();
        // No sync_dir: crash keeps the OLD contents under the old name.
        let after = storage.crashed_view();
        assert_eq!(after.read(&p("/d/target")).unwrap(), b"old");
        // Now sync the dir: crash keeps the NEW contents.
        storage.sync_dir(&p("/d")).unwrap();
        let after = storage.crashed_view();
        assert_eq!(after.read(&p("/d/target")).unwrap(), b"new");
        assert!(!after.exists(&p("/d/target.tmp")));
    }

    #[test]
    fn write_atomic_never_tears_under_any_crash_point() {
        // write_atomic over an existing file must leave either old or new
        // contents at every crash point — never empty, never a hybrid.
        // Setup (put) consumes ops 0..=3, so fault from op 4 onward.
        for crash_at in 4..32 {
            let storage = MemStorage::with_plan(FaultPlan::crash_at(crash_at));
            put(&storage, "/d/m.bin", b"oldoldold");
            let _ = write_atomic(&storage, &p("/d/m.bin"), b"newnewnewnew");
            if !storage.crashed() {
                break;
            }
            let after = storage.crashed_view();
            let got = after.read(&p("/d/m.bin")).unwrap();
            assert!(
                got == b"oldoldold" || got == b"newnewnewnew",
                "crash_at {crash_at}: got {:?}",
                String::from_utf8_lossy(&got)
            );
        }
    }

    /// `put` variant that tolerates plans by running before the fault window.
    fn put_unfaulted(storage: &MemStorage, path: &str, bytes: &[u8]) {
        // The setup itself consumes ops; if the plan crashes during setup
        // the assertions above still hold (old contents absent entirely is
        // impossible because setup either completed or the test breaks out).
        let path = p(path);
        let mut f = match storage.create(&path) {
            Ok(f) => f,
            Err(_) => return,
        };
        if f.write_all(bytes).is_err() {
            return;
        }
        if f.sync().is_err() {
            return;
        }
        drop(f);
        let _ = storage.sync_dir(path.parent().unwrap_or_else(|| Path::new("")));
    }

    #[test]
    fn in_place_overwrite_is_punished() {
        // The anti-pattern write_atomic exists to prevent: create directly
        // over the target. Some crash point must yield an empty file.
        let mut saw_empty = false;
        for crash_at in 4..12 {
            let storage = MemStorage::with_plan(FaultPlan::crash_at(crash_at));
            put_unfaulted(&storage, "/d/m.bin", b"old");
            let res = (|| -> io::Result<()> {
                let mut f = storage.create(&p("/d/m.bin"))?;
                f.write_all(b"new")?;
                f.sync()?;
                Ok(())
            })();
            if res.is_ok() && !storage.crashed() {
                continue;
            }
            let after = storage.crashed_view();
            if after.exists(&p("/d/m.bin")) && after.read(&p("/d/m.bin")).unwrap().is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty, "no crash point exposed the truncate clobber");
    }

    #[test]
    fn transient_failure_keeps_running() {
        let storage = MemStorage::with_plan(FaultPlan::fail_at(1));
        let mut f = storage.create(&p("/d/a.bin")).unwrap(); // op 0
        assert!(f.write_all(b"x").is_err()); // op 1 fails, no effect
        f.write_all(b"y").unwrap(); // op 2 proceeds
        f.sync().unwrap();
        drop(f);
        storage.sync_dir(&p("/d")).unwrap();
        assert_eq!(storage.read(&p("/d/a.bin")).unwrap(), b"y");
        assert!(!storage.crashed());
    }

    #[test]
    fn ops_after_crash_all_fail() {
        let storage = MemStorage::with_plan(FaultPlan::crash_at(0));
        assert!(storage.create(&p("/d/a.bin")).is_err());
        assert!(storage.crashed());
        assert!(storage.create(&p("/d/b.bin")).is_err());
        assert!(storage.rename(&p("/x"), &p("/y")).is_err());
        assert!(storage.read(&p("/d/a.bin")).is_err());
    }

    #[test]
    fn crashed_view_is_deterministic() {
        let build = || {
            let storage = MemStorage::with_plan(FaultPlan::crash_at(9));
            for i in 0..8 {
                put_unfaulted(&storage, &format!("/d/f{i}"), &[i as u8; 64]);
            }
            let after = storage.crashed_view();
            let mut dump = Vec::new();
            for path in after.paths() {
                dump.push((path.clone(), after.read(&path).unwrap()));
            }
            dump
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn remove_needs_dir_sync_to_be_durable() {
        let storage = MemStorage::new();
        put(&storage, "/d/a.bin", b"z");
        storage.remove(&p("/d/a.bin")).unwrap();
        assert!(!storage.exists(&p("/d/a.bin")));
        // Not yet synced: the file survives a crash.
        let after = storage.crashed_view();
        assert_eq!(after.read(&p("/d/a.bin")).unwrap(), b"z");
        storage.sync_dir(&p("/d")).unwrap();
        let after = storage.crashed_view();
        assert!(!after.exists(&p("/d/a.bin")));
    }
}
