//! The storage abstraction all durability I/O goes through.
//!
//! Production code uses [`OsStorage`] (plain `std::fs` plus real `fsync`);
//! tests swap in [`MemStorage`](crate::fault::MemStorage) to inject faults
//! deterministically. The trait is deliberately narrow: only the
//! operations whose durability semantics matter (create, append, sync,
//! rename, remove, directory sync) plus the read-side operations recovery
//! needs.

use std::fmt::Debug;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// An open, append-only file handle obtained from a [`Storage`].
pub trait StorageFile: Send {
    /// Append `buf` in its entirety.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush written bytes to durable media (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// File-system operations durability code is allowed to perform.
///
/// Contract notes implementations must honour:
///
/// - `create` truncates; the new length-zero state may become durable at
///   any time, so callers must never `create` over a file whose previous
///   contents they still need (write a sibling temp file and `rename`).
/// - `rename` is atomic with respect to crashes (the destination name
///   refers to either the old or the new file, never a partial one), but
///   the *rename itself* is only durable after `sync_dir` on the parent.
/// - Newly created files are only findable after a crash once `sync_dir`
///   has been called on their parent directory.
pub trait Storage: Send + Sync + Debug {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Read a file's full contents.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Make directory-entry changes under `path` (creates, renames,
    /// removes) durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// List the file names (not full paths) directly under `dir`, sorted.
    /// Returns an empty list if the directory does not exist.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Size in bytes of the file at `path`.
    fn size(&self, path: &Path) -> io::Result<u64>;
}

/// Write `bytes` to `path` atomically: sibling temp file, fsync the file,
/// rename over `path`, fsync the parent directory.
///
/// This is the one safe way to replace a file in place through a
/// [`Storage`]; a crash at any point leaves either the old contents or the
/// new contents at `path`, never a truncated hybrid.
pub fn write_atomic(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = storage.create(&tmp)?;
    file.write_all(bytes)?;
    file.sync()?;
    drop(file);
    storage.rename(&tmp, path)?;
    storage.sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    Ok(())
}

/// Production [`Storage`] backed by `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsStorage;

struct OsFile(fs::File);

impl StorageFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Storage for OsStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(OsFile(fs::File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    #[cfg(unix)]
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        // Directories cannot be opened for fsync on this platform; entry
        // durability is best-effort.
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn size(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "av-durable-os-{tag}-{}",
            std::process::id() as u64 ^ (tag.as_ptr() as u64)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn os_storage_roundtrip() {
        let dir = temp_dir("roundtrip");
        let storage = OsStorage;
        let path = dir.join("a.bin");
        let mut f = storage.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.write_all(b" world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(storage.exists(&path));
        assert_eq!(storage.read(&path).unwrap(), b"hello world");
        assert_eq!(storage.size(&path).unwrap(), 11);
        assert_eq!(storage.list(&dir).unwrap(), vec!["a.bin".to_string()]);

        let moved = dir.join("b.bin");
        storage.rename(&path, &moved).unwrap();
        storage.sync_dir(&dir).unwrap();
        assert!(!storage.exists(&path));
        assert_eq!(storage.read(&moved).unwrap(), b"hello world");
        storage.remove(&moved).unwrap();
        assert_eq!(storage.list(&dir).unwrap(), Vec::<String>::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let dir = temp_dir("atomic");
        let storage = OsStorage;
        let path = dir.join("m.bin");
        write_atomic(&storage, &path, b"one").unwrap();
        write_atomic(&storage, &path, b"two").unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"two");
        // No temp residue.
        assert_eq!(storage.list(&dir).unwrap(), vec!["m.bin".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_missing_dir_is_empty() {
        let storage = OsStorage;
        let listed = storage
            .list(Path::new("/definitely/not/a/real/dir"))
            .unwrap();
        assert!(listed.is_empty());
    }
}
