//! The JSONL request/response protocol spoken by `av-serve`.
//!
//! One request per line, one response per line. Every request is an object
//! with an `"op"` field; every response carries `"ok"` (and `"error"` on
//! failure), so clients never have to guess. Example session:
//!
//! ```text
//! → {"op":"ingest","columns":[{"name":"c1","values":["10.0.0.1","10.0.0.2"]}]}
//! ← {"ok":true,"columns_added":1,"total_columns":1,...}
//! → {"op":"infer","rule":"ips","values":["10.0.0.1","192.168.0.9"]}
//! ← {"ok":true,"rule":"ips","describe":"pattern <digit>+.<digit>+...",...}
//! → {"op":"validate","rule":"ips","values":["not-an-ip"]}
//! ← {"ok":true,"flagged":true,"nonconforming":1,...}
//! ```

use crate::engine::{BatchItem, ValidationService};
use crate::json::{parse, Json};
use av_core::{AnyRule, ValidationReport, Variant};

/// Outcome of handling one request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The JSON response line (no trailing newline).
    pub response: String,
    /// True when the request asked the service to shut down.
    pub shutdown: bool,
}

/// A response before serialization: the JSON tree plus the shutdown flag.
/// Serve loops render it through [`handle_line_into`] so one output buffer
/// is reused across every response of a connection.
struct Reply {
    json: Json,
    shutdown: bool,
}

fn ok(fields: Vec<(&'static str, Json)>) -> Reply {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Reply {
        json: Json::obj(all),
        shutdown: false,
    }
}

fn fail(message: impl Into<String>) -> Reply {
    Reply {
        json: Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str(message.into())),
        ]),
        shutdown: false,
    }
}

/// Render a bare protocol-error line into a caller-owned buffer. Serve
/// loops use this for transport-level failures (oversized or undecodable
/// request frames) that never reach [`handle_line_into`], so those
/// responses share the exact `{"ok":false,"error":…}` shape of every
/// other failure.
pub(crate) fn render_error_into(message: &str, out: &mut String) {
    fail(message).json.dump_into(out);
}

fn report_json(r: &ValidationReport) -> Vec<(&'static str, Json)> {
    vec![
        ("checked", Json::Num(r.checked as f64)),
        ("nonconforming", Json::Num(r.nonconforming as f64)),
        ("nonconforming_frac", Json::Num(r.nonconforming_frac)),
        ("p_value", Json::Num(r.p_value)),
        ("flagged", Json::Bool(r.flagged)),
    ]
}

/// Borrow a `&str` array straight out of the parsed request — validation
/// paths never copy values (the satellite fix for the old per-item
/// `to_string()` churn in `validate_batch`).
fn str_array<'a>(v: &'a Json, field: &str) -> Result<Vec<&'a str>, String> {
    v.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {field:?}"))?
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| format!("{field:?} must contain only strings"))
        })
        .collect()
}

/// Owned variant for ingestion, where columns must outlive the request.
fn string_array(v: &Json, field: &str) -> Result<Vec<String>, String> {
    str_array(v, field).map(|vals| vals.into_iter().map(str::to_string).collect())
}

fn parse_variant(v: &Json) -> Result<Option<Variant>, String> {
    match v.get("variant").and_then(Json::as_str) {
        None => Ok(None),
        Some("auto") => Ok(None),
        Some("fmdv") => Ok(Some(Variant::Fmdv)),
        Some("v") | Some("fmdv-v") => Ok(Some(Variant::FmdvV)),
        Some("h") | Some("fmdv-h") => Ok(Some(Variant::FmdvH)),
        Some("vh") | Some("fmdv-vh") => Ok(Some(Variant::FmdvVH)),
        Some("cmdv") => Ok(Some(Variant::Cmdv)),
        Some(other) => Err(format!("unknown variant {other:?}")),
    }
}

fn rule_kind(rule: &AnyRule) -> &'static str {
    match rule {
        AnyRule::Pattern(_) => "pattern",
        AnyRule::Numeric(_) => "numeric",
        AnyRule::Dictionary(_) => "dictionary",
    }
}

/// Handle one JSONL request line against the service, returning an owned
/// response — the one-shot convenience API for embedded clients and tests.
/// It is a thin wrapper over [`handle_line_into`], which serve loops call
/// directly with a per-connection buffer; any framing change lands in one
/// place.
pub fn handle_line(service: &ValidationService, line: &str) -> Handled {
    let mut response = String::new();
    let shutdown = handle_line_into(service, line, &mut response);
    Handled { response, shutdown }
}

/// Handle one JSONL request line, serializing the response into a
/// caller-owned buffer (cleared first); returns the shutdown flag. Serve
/// loops call this with one long-lived buffer per connection, so the
/// response serializer allocates nothing per line at steady state.
pub fn handle_line_into(service: &ValidationService, line: &str, out: &mut String) -> bool {
    let reply = dispatch(service, line);
    reply.json.dump_into(out);
    reply.shutdown
}

fn dispatch(service: &ValidationService, line: &str) -> Reply {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return fail(format!("bad request json: {e}")),
    };
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return fail("missing \"op\" field"),
    };
    match op {
        "ping" => ok(vec![("pong", Json::Bool(true))]),
        "ingest" => handle_ingest(service, &req),
        "infer" => handle_infer(service, &req),
        "infer_baseline" => handle_infer_baseline(service, &req),
        "validate" => handle_validate(service, &req),
        "validate_batch" => handle_validate_batch(service, &req),
        "compare" => handle_compare(service, &req),
        "catalog" => handle_catalog(service),
        "rule" => handle_rule(service, &req),
        "delete_rule" => handle_delete(service, &req),
        "persist" => match service.persist() {
            Ok(()) => ok(vec![("persisted", Json::Bool(true))]),
            Err(e) => fail(e.to_string()),
        },
        "stats" => handle_stats(service),
        "shutdown" => {
            service.request_shutdown();
            let mut h = ok(vec![("bye", Json::Bool(true))]);
            h.shutdown = true;
            h
        }
        other => fail(format!("unknown op {other:?}")),
    }
}

fn handle_ingest(service: &ValidationService, req: &Json) -> Reply {
    let cols = match req.get("columns").and_then(Json::as_arr) {
        Some(c) => c,
        None => return fail("missing array field \"columns\""),
    };
    let mut columns = Vec::with_capacity(cols.len());
    for (i, c) in cols.iter().enumerate() {
        let name = c
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("ingest-{i}"));
        match string_array(c, "values") {
            Ok(values) => columns.push(crate::engine::owned_column(&name, values)),
            Err(e) => return fail(format!("column {i}: {e}")),
        }
    }
    match service.ingest(&columns) {
        Ok(r) => ok(vec![
            ("columns_added", Json::Num(r.columns_added as f64)),
            ("delta_patterns", Json::Num(r.delta_patterns as f64)),
            ("touched_shards", Json::Num(r.touched_shards as f64)),
            ("total_columns", Json::Num(r.total_columns as f64)),
            ("total_patterns", Json::Num(r.total_patterns as f64)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_infer(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let variant = match parse_variant(req) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.infer_rule(name, &values, variant) {
        Ok(entry) => ok(vec![
            ("rule", Json::str(entry.name)),
            ("kind", Json::str(rule_kind(&entry.rule))),
            ("variant", Json::str(entry.variant)),
            ("describe", Json::str(entry.rule.describe())),
            ("wire", Json::str(entry.rule.to_wire())),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_validate(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.validate(name, &values) {
        Ok(report) => ok(report_json(&report)),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_infer_baseline(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let method = match req.get("method").and_then(Json::as_str) {
        Some(m) => m,
        None => return fail("missing string field \"method\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.infer_baseline(name, method, &values) {
        Ok(describe) => ok(vec![
            ("rule", Json::str(name)),
            ("method", Json::str(method)),
            ("describe", Json::str(describe)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_compare(service: &ValidationService, req: &Json) -> Reply {
    let left = match req.get("a").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"a\""),
    };
    let right = match req.get("b").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"b\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.compare(left, right, &values) {
        Ok((ra, rb)) => ok(vec![
            ("a", Json::obj(report_json(&ra))),
            ("b", Json::obj(report_json(&rb))),
            ("agree", Json::Bool(ra.flagged == rb.flagged)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_validate_batch(service: &ValidationService, req: &Json) -> Reply {
    let raw = match req.get("items").and_then(Json::as_arr) {
        Some(items) => items,
        None => return fail("missing array field \"items\""),
    };
    let mut items = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let rule = match item.get("rule").and_then(Json::as_str) {
            Some(r) => r,
            None => return fail(format!("item {i}: missing string field \"rule\"")),
        };
        match str_array(item, "values") {
            Ok(values) => items.push(BatchItem { rule, values }),
            Err(e) => return fail(format!("item {i}: {e}")),
        }
    }
    let results: Vec<Json> = service
        .validate_batch(&items)
        .into_iter()
        .map(|r| match r {
            Ok(report) => {
                let mut fields = vec![("ok", Json::Bool(true))];
                fields.extend(report_json(&report));
                Json::obj(fields)
            }
            Err(e) => Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::str(e.to_string())),
            ]),
        })
        .collect();
    ok(vec![("results", Json::Arr(results))])
}

fn handle_catalog(service: &ValidationService) -> Reply {
    let rules: Vec<Json> = service
        .catalog_entries()
        .into_iter()
        .map(|e| {
            Json::obj([
                ("rule", Json::str(e.name)),
                ("kind", Json::str(rule_kind(&e.rule))),
                ("variant", Json::str(e.variant)),
                ("created_unix", Json::Num(e.created_unix as f64)),
                ("describe", Json::str(e.rule.describe())),
            ])
        })
        .collect();
    let baselines: Vec<Json> = service
        .baseline_rules()
        .into_iter()
        .map(|(name, describe)| {
            Json::obj([("rule", Json::str(name)), ("describe", Json::str(describe))])
        })
        .collect();
    ok(vec![
        ("count", Json::Num(rules.len() as f64)),
        ("rules", Json::Arr(rules)),
        ("baselines", Json::Arr(baselines)),
    ])
}

fn handle_rule(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("name").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"name\""),
    };
    match service.rule(name) {
        Ok(e) => ok(vec![
            ("rule", Json::str(e.name)),
            ("kind", Json::str(rule_kind(&e.rule))),
            ("variant", Json::str(e.variant)),
            ("created_unix", Json::Num(e.created_unix as f64)),
            ("describe", Json::str(e.rule.describe())),
            ("wire", Json::str(e.rule.to_wire())),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_delete(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("name").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"name\""),
    };
    match service.delete_rule(name) {
        Ok(()) => ok(vec![("deleted", Json::str(name))]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_stats(service: &ValidationService) -> Reply {
    let s = service.stats();
    let index = service.snapshot();
    ok(vec![
        ("columns_ingested", Json::Num(s.columns_ingested as f64)),
        ("ingest_batches", Json::Num(s.ingest_batches as f64)),
        ("rules_inferred", Json::Num(s.rules_inferred as f64)),
        ("validations", Json::Num(s.validations as f64)),
        ("flagged", Json::Num(s.flagged as f64)),
        ("connection_errors", Json::Num(s.connection_errors as f64)),
        ("index_patterns", Json::Num(index.len() as f64)),
        ("index_columns", Json::Num(index.num_columns as f64)),
        ("index_shards", Json::Num(index.shard_count() as f64)),
        (
            "catalog_rules",
            Json::Num(service.catalog_entries().len() as f64),
        ),
    ])
}

/// Did a response line report success? (Convenience for clients/tests.)
pub fn response_ok(line: &str) -> bool {
    parse(line)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;

    fn service_with_corpus() -> ValidationService {
        let service = ValidationService::new(ServiceConfig::default());
        let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 19);
        let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
        service.ingest(&columns).unwrap();
        service
    }

    fn dates(month: u32) -> String {
        let values: Vec<String> = (1..=28)
            .map(|d| format!("\"2019-{month:02}-{d:02}\""))
            .collect();
        format!("[{}]", values.join(","))
    }

    #[test]
    fn full_protocol_session() {
        let service = service_with_corpus();
        let h = handle_line(&service, r#"{"op":"ping"}"#);
        assert!(response_ok(&h.response));

        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"dates","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"validate","rule":"dates","values":{}}}"#,
                dates(4)
            ),
        );
        assert!(response_ok(&h.response));
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("flagged").unwrap().as_bool(), Some(false));

        let h = handle_line(
            &service,
            r#"{"op":"validate","rule":"dates","values":["x","y","z"]}"#,
        );
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("flagged").unwrap().as_bool(), Some(true));

        let h = handle_line(&service, r#"{"op":"catalog"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("count").unwrap().as_usize(), Some(1));

        let h = handle_line(&service, r#"{"op":"stats"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("validations").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("flagged").unwrap().as_usize(), Some(1));

        let h = handle_line(&service, r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
        assert!(service.is_shutdown());
    }

    #[test]
    fn batch_op_mixes_ok_and_errors() {
        let service = service_with_corpus();
        handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"d","values":{}}}"#, dates(2)),
        );
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"validate_batch","items":[{{"rule":"d","values":{}}},{{"rule":"missing","values":[]}}]}}"#,
                dates(5)
            ),
        );
        assert!(response_ok(&h.response));
        let v = parse(&h.response).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(results[1].get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn baseline_and_compare_ops() {
        let service = service_with_corpus();
        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"d","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"infer_baseline","rule":"g","method":"grok","values":{}}}"#,
                dates(3)
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert!(v
            .get("describe")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("grok:"));

        // Both rules (FMDV catalog + grok baseline) validate and agree.
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"compare","a":"d","b":"g","values":{}}}"#,
                dates(4)
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("agree").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("a").unwrap().get("flagged").unwrap().as_bool(),
            Some(false)
        );

        // The catalog op lists session baselines separately.
        let h = handle_line(&service, r#"{"op":"catalog"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("count").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("baselines").unwrap().as_arr().unwrap().len(), 1);

        // Unknown methods fail cleanly.
        let h = handle_line(
            &service,
            r#"{"op":"infer_baseline","rule":"x","method":"banana","values":["1"]}"#,
        );
        assert!(!response_ok(&h.response));
    }

    #[test]
    fn malformed_requests_fail_cleanly() {
        let service = ValidationService::new(ServiceConfig::default());
        for bad in [
            "not json",
            "{}",
            r#"{"op":"nope"}"#,
            r#"{"op":"validate"}"#,
            r#"{"op":"validate","rule":"r"}"#,
            r#"{"op":"validate","rule":"r","values":[1,2]}"#,
            r#"{"op":"infer","rule":"r","values":["a"],"variant":"banana"}"#,
            r#"{"op":"ingest"}"#,
        ] {
            let h = handle_line(&service, bad);
            assert!(!response_ok(&h.response), "{bad} should fail");
            assert!(!h.shutdown);
        }
    }

    #[test]
    fn ingest_via_protocol_grows_the_index() {
        let service = ValidationService::new(ServiceConfig::default());
        let h = handle_line(
            &service,
            r#"{"op":"ingest","columns":[{"name":"ips","values":["10.0.0.1","10.0.0.2","172.16.9.1"]},{"values":["a-1","b-2"]}]}"#,
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("columns_added").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("total_columns").unwrap().as_usize(), Some(2));
        assert!(v.get("total_patterns").unwrap().as_usize().unwrap() > 0);
    }
}
