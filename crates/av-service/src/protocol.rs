//! The JSONL request/response protocol spoken by `av-serve`.
//!
//! One request per line, one response per line. Every request is an object
//! with an `"op"` field; every response carries `"ok"` (and `"error"` on
//! failure), so clients never have to guess. Example session:
//!
//! ```text
//! → {"op":"ingest","columns":[{"name":"c1","values":["10.0.0.1","10.0.0.2"]}]}
//! ← {"ok":true,"columns_added":1,"total_columns":1,...}
//! → {"op":"infer","rule":"ips","values":["10.0.0.1","192.168.0.9"]}
//! ← {"ok":true,"rule":"ips","describe":"pattern <digit>+.<digit>+...",...}
//! → {"op":"validate","rule":"ips","values":["not-an-ip"]}
//! ← {"ok":true,"flagged":true,"nonconforming":1,...}
//! ```
//!
//! ## Observability ops
//!
//! **`explain`** asks *why* a single value fails a rule: the failing byte
//! span (char-boundary aligned), what the rule expected there, the prefix
//! that did match, and the nearest other catalog rule the value conforms
//! to (ranked by token-program edit distance — a column-swap detector):
//!
//! ```text
//! → {"op":"explain","rule":"dates","value":"Pending"}
//! ← {"ok":true,"rule":"dates","conforms":false,"failed_at":0,"span":[0,1],
//!    "expected":"exactly 4 digit character(s)","matched_prefix":"",
//!    "reason":"mismatch at byte 0: ...","suggestion":{"rule":"status","distance":7}}
//! ```
//!
//! **`classify`** runs values against the **whole** rule catalog at once —
//! one scan of each value through the catalog automaton (`av-match`'s
//! lazily-determinized NFA union) instead of one pass per rule — and
//! returns every conforming rule ranked most-specific-first, plus the top
//! pick. Send `"values"` for a batch, or `"value"` for a single probe:
//!
//! ```text
//! → {"op":"classify","values":["2019-03-14","Pending","!!!"]}
//! ← {"ok":true,"catalog_generation":3,"results":[
//!    {"value":"2019-03-14","rules":["dates"],"best":"dates"},
//!    {"value":"Pending","rules":["status"],"best":"status"},
//!    {"value":"!!!","rules":[]}]}
//! ```
//!
//! **`metrics`** dumps the full telemetry registry: per-rule lifetime and
//! sliding-window conformance counters with alert flags and recent failure
//! exemplars, plus per-op request/error counters and latency histograms:
//!
//! ```text
//! → {"op":"metrics"}
//! ← {"ok":true,"index_generation":2,"window_millis":30000,
//!    "rules":[{"rule":"dates","validations":3,"flagged":1,"alert":false,
//!              "window":{"validations":3,"flagged":1,"flag_rate":0.333,...},
//!              "exemplars":[{"value":"user-0","reason":"mismatch at byte 0: ...",...}]}],
//!    "ops":[{"op":"validate","requests":3,"errors":0,"mean_micros":412.3,...}],
//!    "overload":{"connections_rejected":0,"requests_shed":0,"stalls_shed":0}}
//! ```
//!
//! ## Overload responses
//!
//! The TCP serve loop applies admission control and backpressure (see
//! [`crate::serve_listener`]). Work it refuses is answered with an error
//! frame carrying `"overloaded":true`, so clients can tell "backed off,
//! retry later" apart from "your request was malformed":
//!
//! ```text
//! ← {"ok":false,"error":"service at max_connections (10000); connection rejected","overloaded":true}
//! ← {"ok":false,"error":"pipeline full (128 frames queued); request shed","overloaded":true}
//! ```
//!
//! Every shed is counted: `stats` reports `connections_rejected` (accepts
//! refused at the admission gate), `requests_shed` (pipelined frames
//! answered `overloaded`), and `stalls_shed` (connections dropped after
//! making zero write progress for the stall deadline); `metrics` carries
//! the same three counters under `"overload"`.
//!
//! **`watch`** turns the connection into a telemetry stream: after the
//! acknowledgement, the server emits one JSONL frame of per-rule window
//! stats every `interval_ms` until `frames` frames were sent (forever when
//! omitted), the client disconnects, or the service shuts down. Frames are
//! built from owned snapshots — no service lock is held while a frame is
//! written to a slow client:
//!
//! ```text
//! → {"op":"watch","interval_ms":500,"frames":2,"rules":["dates"]}
//! ← {"ok":true,"watching":true,"interval_ms":500,"frames":2}
//! ← {"frame":0,"elapsed_ms":500,"rules":[{"rule":"dates","window_validations":3,
//!     "window_flagged":1,"flag_rate":0.3333,"alert":false,...}]}
//! ← {"frame":1,"elapsed_ms":1000,"rules":[...]}
//! ```
//!
//! ## Durability state
//!
//! When the service runs in durable mode (`av-serve --durable`, or
//! [`crate::ServiceConfig::durable`]), `persist`, `stats` and `metrics`
//! responses carry a `"durability"` object. For `persist` it describes
//! the incremental checkpoint that was just written; for the read ops it
//! is the live WAL/checkpoint state:
//!
//! ```text
//! → {"op":"persist"}
//! ← {"ok":true,"persisted":true,"data_dir":"state/","durability":{
//!    "checkpoint_generation":3,"wal_segments":1,"wal_bytes":0,
//!    "records_since_checkpoint":0,"replayed_records":2,
//!    "truncated_tail_bytes":0,"quarantined_files":0,"skipped_records":0,
//!    "checkpoints_completed":1,"checkpoint_failures":0}}
//! ```
//!
//! `replayed_records` / `truncated_tail_bytes` / `quarantined_files`
//! describe what the last recovery had to do (how many WAL records were
//! replayed past the checkpoint, whether a torn final frame was dropped,
//! whether any corrupt shard file was set aside into `quarantine/`);
//! `records_since_checkpoint` is the WAL tail the *next* recovery would
//! replay; `checkpoint_failures` counts auto-checkpoints that failed
//! after their trigger op was already safely logged.

use crate::engine::{BatchItem, ValidationService};
use crate::json::{parse, Json};
use av_core::{AnyRule, Explanation, ValidationReport, Variant};
use std::time::Duration;

/// Outcome of handling one request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The JSON response line (no trailing newline).
    pub response: String,
    /// True when the request asked the service to shut down.
    pub shutdown: bool,
}

/// What a serve loop must do after writing the response line.
#[derive(Debug, Clone, PartialEq)]
pub struct LineOutcome {
    /// True when the request asked the service to shut down.
    pub shutdown: bool,
    /// `Some` when the request was an accepted `watch` op: the loop should
    /// stream telemetry frames with these parameters after the ack.
    pub watch: Option<WatchParams>,
}

/// Parameters of an accepted `watch` op.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchParams {
    /// Delay between frames.
    pub interval: Duration,
    /// Stop after this many frames (`None`: stream until disconnect or
    /// shutdown).
    pub frames: Option<u64>,
    /// Restrict frames to these rules (`None`: all rules with telemetry).
    pub rules: Option<Vec<String>>,
}

/// A response before serialization: the JSON tree plus what the serve loop
/// should do next. Serve loops render it through [`handle_line_into`] so
/// one output buffer is reused across every response of a connection.
struct Reply {
    json: Json,
    ok: bool,
    shutdown: bool,
    watch: Option<WatchParams>,
}

fn ok(fields: Vec<(&'static str, Json)>) -> Reply {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Reply {
        json: Json::obj(all),
        ok: true,
        shutdown: false,
        watch: None,
    }
}

fn fail(message: impl Into<String>) -> Reply {
    Reply {
        json: Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str(message.into())),
        ]),
        ok: false,
        shutdown: false,
        watch: None,
    }
}

/// Render a bare protocol-error line into a caller-owned buffer. Serve
/// loops use this for transport-level failures (oversized or undecodable
/// request frames) that never reach [`handle_line_into`], so those
/// responses share the exact `{"ok":false,"error":…}` shape of every
/// other failure.
pub(crate) fn render_error_into(message: &str, out: &mut String) {
    fail(message).json.dump_into(out);
}

/// Render an overload-shed error line: the ordinary failure shape plus an
/// `"overloaded":true` marker so clients can tell "retry later" apart
/// from "your request was wrong". The serve loop sends it when admission
/// control rejects a connection, when a pipeline overflows its cap, or
/// when the run queue is full:
///
/// ```text
/// {"ok":false,"error":"service at max_connections (2); connection rejected","overloaded":true}
/// ```
pub(crate) fn render_overloaded_into(message: &str, out: &mut String) {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str(message.to_string())),
        ("overloaded", Json::Bool(true)),
    ])
    .dump_into(out);
}

fn report_json(r: &ValidationReport) -> Vec<(&'static str, Json)> {
    vec![
        ("checked", Json::Num(r.checked as f64)),
        ("nonconforming", Json::Num(r.nonconforming as f64)),
        ("nonconforming_frac", Json::Num(r.nonconforming_frac)),
        ("p_value", Json::Num(r.p_value)),
        ("flagged", Json::Bool(r.flagged)),
    ]
}

/// Borrow a `&str` array straight out of the parsed request — validation
/// paths never copy values (the satellite fix for the old per-item
/// `to_string()` churn in `validate_batch`).
fn str_array<'a>(v: &'a Json, field: &str) -> Result<Vec<&'a str>, String> {
    v.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {field:?}"))?
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| format!("{field:?} must contain only strings"))
        })
        .collect()
}

/// Owned variant for ingestion, where columns must outlive the request.
fn string_array(v: &Json, field: &str) -> Result<Vec<String>, String> {
    str_array(v, field).map(|vals| vals.into_iter().map(str::to_string).collect())
}

fn parse_variant(v: &Json) -> Result<Option<Variant>, String> {
    match v.get("variant").and_then(Json::as_str) {
        None => Ok(None),
        Some("auto") => Ok(None),
        Some("fmdv") => Ok(Some(Variant::Fmdv)),
        Some("v") | Some("fmdv-v") => Ok(Some(Variant::FmdvV)),
        Some("h") | Some("fmdv-h") => Ok(Some(Variant::FmdvH)),
        Some("vh") | Some("fmdv-vh") => Ok(Some(Variant::FmdvVH)),
        Some("cmdv") => Ok(Some(Variant::Cmdv)),
        Some(other) => Err(format!("unknown variant {other:?}")),
    }
}

fn rule_kind(rule: &AnyRule) -> &'static str {
    match rule {
        AnyRule::Pattern(_) => "pattern",
        AnyRule::Numeric(_) => "numeric",
        AnyRule::Dictionary(_) => "dictionary",
    }
}

/// Handle one JSONL request line against the service, returning an owned
/// response — the one-shot convenience API for embedded clients and tests.
/// It is a thin wrapper over [`handle_line_into`], which serve loops call
/// directly with a per-connection buffer; any framing change lands in one
/// place. (A `watch` op handled here produces only the acknowledgement —
/// streaming frames is the serve loops' job.)
pub fn handle_line(service: &ValidationService, line: &str) -> Handled {
    let mut response = String::new();
    let outcome = handle_line_into(service, line, &mut response);
    Handled {
        response,
        shutdown: outcome.shutdown,
    }
}

/// Handle one JSONL request line, serializing the response into a
/// caller-owned buffer (cleared first). Serve loops call this with one
/// long-lived buffer per connection, so the response serializer allocates
/// nothing per line at steady state. Every dispatch is folded into the
/// per-op telemetry (request count, error count, handling latency).
pub fn handle_line_into(service: &ValidationService, line: &str, out: &mut String) -> LineOutcome {
    let start = std::time::Instant::now();
    let (op, reply) = dispatch(service, line);
    service.telemetry().record_op(op, start.elapsed(), reply.ok);
    reply.json.dump_into(out);
    LineOutcome {
        shutdown: reply.shutdown,
        watch: reply.watch,
    }
}

fn dispatch(service: &ValidationService, line: &str) -> (&'static str, Reply) {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return ("invalid", fail(format!("bad request json: {e}"))),
    };
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return ("invalid", fail("missing \"op\" field")),
    };
    match op {
        "ping" => ("ping", ok(vec![("pong", Json::Bool(true))])),
        "ingest" => ("ingest", handle_ingest(service, &req)),
        "infer" => ("infer", handle_infer(service, &req)),
        "infer_baseline" => ("infer_baseline", handle_infer_baseline(service, &req)),
        "validate" => ("validate", handle_validate(service, &req)),
        "validate_batch" => ("validate_batch", handle_validate_batch(service, &req)),
        "compare" => ("compare", handle_compare(service, &req)),
        "catalog" => ("catalog", handle_catalog(service)),
        "rule" => ("rule", handle_rule(service, &req)),
        "delete_rule" => ("delete_rule", handle_delete(service, &req)),
        "classify" => ("classify", handle_classify(service, &req)),
        "explain" => ("explain", handle_explain(service, &req)),
        "metrics" => ("metrics", handle_metrics(service)),
        "watch" => ("watch", handle_watch(&req)),
        "persist" => (
            "persist",
            match service.persist() {
                Ok(()) => {
                    let mut fields = vec![("persisted", Json::Bool(true))];
                    if let Some(d) = service.durability() {
                        fields.push(("durability", durability_json(&d)));
                    }
                    ok(fields)
                }
                Err(e) => fail(e.to_string()),
            },
        ),
        "stats" => ("stats", handle_stats(service)),
        "shutdown" => {
            service.request_shutdown();
            let mut h = ok(vec![("bye", Json::Bool(true))]);
            h.shutdown = true;
            ("shutdown", h)
        }
        other => ("unknown", fail(format!("unknown op {other:?}"))),
    }
}

fn handle_ingest(service: &ValidationService, req: &Json) -> Reply {
    let cols = match req.get("columns").and_then(Json::as_arr) {
        Some(c) => c,
        None => return fail("missing array field \"columns\""),
    };
    let mut columns = Vec::with_capacity(cols.len());
    for (i, c) in cols.iter().enumerate() {
        let name = c
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("ingest-{i}"));
        match string_array(c, "values") {
            Ok(values) => columns.push(crate::engine::owned_column(&name, values)),
            Err(e) => return fail(format!("column {i}: {e}")),
        }
    }
    match service.ingest(&columns) {
        Ok(r) => ok(vec![
            ("columns_added", Json::Num(r.columns_added as f64)),
            ("delta_patterns", Json::Num(r.delta_patterns as f64)),
            ("touched_shards", Json::Num(r.touched_shards as f64)),
            ("total_columns", Json::Num(r.total_columns as f64)),
            ("total_patterns", Json::Num(r.total_patterns as f64)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_infer(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let variant = match parse_variant(req) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.infer_rule(name, &values, variant) {
        Ok(entry) => ok(vec![
            ("rule", Json::str(entry.name)),
            ("kind", Json::str(rule_kind(&entry.rule))),
            ("variant", Json::str(entry.variant)),
            ("describe", Json::str(entry.rule.describe())),
            ("wire", Json::str(entry.rule.to_wire())),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_validate(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.validate(name, &values) {
        Ok(report) => ok(report_json(&report)),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_infer_baseline(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let method = match req.get("method").and_then(Json::as_str) {
        Some(m) => m,
        None => return fail("missing string field \"method\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.infer_baseline(name, method, &values) {
        Ok(describe) => ok(vec![
            ("rule", Json::str(name)),
            ("method", Json::str(method)),
            ("describe", Json::str(describe)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_compare(service: &ValidationService, req: &Json) -> Reply {
    let left = match req.get("a").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"a\""),
    };
    let right = match req.get("b").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"b\""),
    };
    let values = match str_array(req, "values") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match service.compare(left, right, &values) {
        Ok((ra, rb)) => ok(vec![
            ("a", Json::obj(report_json(&ra))),
            ("b", Json::obj(report_json(&rb))),
            ("agree", Json::Bool(ra.flagged == rb.flagged)),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_validate_batch(service: &ValidationService, req: &Json) -> Reply {
    let raw = match req.get("items").and_then(Json::as_arr) {
        Some(items) => items,
        None => return fail("missing array field \"items\""),
    };
    let mut items = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let rule = match item.get("rule").and_then(Json::as_str) {
            Some(r) => r,
            None => return fail(format!("item {i}: missing string field \"rule\"")),
        };
        match str_array(item, "values") {
            Ok(values) => items.push(BatchItem { rule, values }),
            Err(e) => return fail(format!("item {i}: {e}")),
        }
    }
    let results: Vec<Json> = service
        .validate_batch(&items)
        .into_iter()
        .map(|r| match r {
            Ok(report) => {
                let mut fields = vec![("ok", Json::Bool(true))];
                fields.extend(report_json(&report));
                Json::obj(fields)
            }
            Err(e) => Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::str(e.to_string())),
            ]),
        })
        .collect();
    ok(vec![("results", Json::Arr(results))])
}

fn handle_catalog(service: &ValidationService) -> Reply {
    let rules: Vec<Json> = service
        .catalog_entries()
        .into_iter()
        .map(|e| {
            Json::obj([
                ("rule", Json::str(e.name)),
                ("kind", Json::str(rule_kind(&e.rule))),
                ("variant", Json::str(e.variant)),
                ("created_unix", Json::Num(e.created_unix as f64)),
                ("describe", Json::str(e.rule.describe())),
            ])
        })
        .collect();
    let baselines: Vec<Json> = service
        .baseline_rules()
        .into_iter()
        .map(|(name, describe)| {
            Json::obj([("rule", Json::str(name)), ("describe", Json::str(describe))])
        })
        .collect();
    ok(vec![
        ("count", Json::Num(rules.len() as f64)),
        ("rules", Json::Arr(rules)),
        ("baselines", Json::Arr(baselines)),
    ])
}

fn handle_rule(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("name").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"name\""),
    };
    match service.rule(name) {
        Ok(e) => ok(vec![
            ("rule", Json::str(e.name)),
            ("kind", Json::str(rule_kind(&e.rule))),
            ("variant", Json::str(e.variant)),
            ("created_unix", Json::Num(e.created_unix as f64)),
            ("describe", Json::str(e.rule.describe())),
            ("wire", Json::str(e.rule.to_wire())),
        ]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_delete(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("name").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"name\""),
    };
    match service.delete_rule(name) {
        Ok(()) => ok(vec![("deleted", Json::str(name))]),
        Err(e) => fail(e.to_string()),
    }
}

fn handle_classify(service: &ValidationService, req: &Json) -> Reply {
    // A batch of "values", or a single "value" for interactive probing.
    let values: Vec<&str> = if req.get("values").is_some() {
        match str_array(req, "values") {
            Ok(v) => v,
            Err(e) => return fail(e),
        }
    } else {
        match req.get("value").and_then(Json::as_str) {
            Some(v) => vec![v],
            None => return fail("missing array field \"values\" (or string field \"value\")"),
        }
    };
    let results: Vec<Json> = service
        .classify_batch(&values)
        .into_iter()
        .zip(&values)
        .map(|(outcome, value)| {
            let mut fields = vec![
                ("value", Json::str(*value)),
                (
                    "rules",
                    Json::Arr(outcome.matches.into_iter().map(Json::str).collect()),
                ),
            ];
            if let Some(best) = outcome.best {
                fields.push(("best", Json::str(best)));
            }
            Json::obj(fields)
        })
        .collect();
    ok(vec![
        (
            "catalog_generation",
            Json::Num(service.classifier_generation() as f64),
        ),
        ("results", Json::Arr(results)),
    ])
}

fn explanation_fields(e: Explanation, fields: &mut Vec<(&'static str, Json)>) {
    fields.push(("reason", Json::str(e.reason)));
    if let Some(at) = e.failed_at {
        fields.push(("failed_at", Json::Num(at as f64)));
    }
    if let Some((start, end)) = e.span {
        fields.push((
            "span",
            Json::Arr(vec![Json::Num(start as f64), Json::Num(end as f64)]),
        ));
    }
    if let Some(expected) = e.expected {
        fields.push(("expected", Json::str(expected)));
    }
    if let Some(prefix) = e.matched_prefix {
        fields.push(("matched_prefix", Json::str(prefix)));
    }
}

fn handle_explain(service: &ValidationService, req: &Json) -> Reply {
    let name = match req.get("rule").and_then(Json::as_str) {
        Some(n) => n,
        None => return fail("missing string field \"rule\""),
    };
    let value = match req.get("value").and_then(Json::as_str) {
        Some(v) => v,
        None => return fail("missing string field \"value\""),
    };
    match service.explain(name, value) {
        Ok(outcome) => {
            let mut fields = vec![
                ("rule", Json::str(name)),
                ("value", Json::str(value)),
                ("conforms", Json::Bool(outcome.conforms)),
                ("describe", Json::str(outcome.describe)),
            ];
            if let Some(e) = outcome.explanation {
                explanation_fields(e, &mut fields);
            }
            if let Some((rule, distance)) = outcome.suggestion {
                fields.push((
                    "suggestion",
                    Json::obj([
                        ("rule", Json::str(rule)),
                        ("distance", Json::Num(distance as f64)),
                    ]),
                ));
            }
            ok(fields)
        }
        Err(e) => fail(e.to_string()),
    }
}

fn window_json(w: &crate::telemetry::WindowSnapshot) -> Json {
    Json::obj([
        ("validations", Json::Num(w.validations as f64)),
        ("flagged", Json::Num(w.flagged as f64)),
        ("checked", Json::Num(w.checked as f64)),
        ("nonconforming", Json::Num(w.nonconforming as f64)),
        ("flag_rate", Json::Num(w.flag_rate())),
    ])
}

fn handle_metrics(service: &ValidationService) -> Reply {
    // Snapshot everything first; serialization (and the serve loop's
    // socket write) then runs with no service lock held.
    let telemetry = service.telemetry();
    let rules: Vec<Json> = telemetry
        .rule_snapshots()
        .into_iter()
        .map(|r| {
            let exemplars: Vec<Json> = r
                .exemplars
                .into_iter()
                .map(|x| {
                    let mut fields = vec![
                        ("value", Json::str(x.value)),
                        ("reason", Json::str(x.reason)),
                    ];
                    if let Some(at) = x.failed_at {
                        fields.push(("failed_at", Json::Num(at as f64)));
                    }
                    if let Some((start, end)) = x.span {
                        fields.push((
                            "span",
                            Json::Arr(vec![Json::Num(start as f64), Json::Num(end as f64)]),
                        ));
                    }
                    if let Some(expected) = x.expected {
                        fields.push(("expected", Json::str(expected)));
                    }
                    Json::obj(fields)
                })
                .collect();
            Json::obj([
                ("rule", Json::str(r.rule)),
                ("validations", Json::Num(r.validations as f64)),
                ("flagged", Json::Num(r.flagged as f64)),
                ("checked", Json::Num(r.checked as f64)),
                ("nonconforming", Json::Num(r.nonconforming as f64)),
                ("window", window_json(&r.window)),
                ("alert", Json::Bool(r.alert)),
                ("exemplars", Json::Arr(exemplars)),
            ])
        })
        .collect();
    let ops: Vec<Json> = telemetry
        .op_snapshots()
        .into_iter()
        .map(|o| {
            Json::obj([
                ("op", Json::str(o.op)),
                ("requests", Json::Num(o.requests as f64)),
                ("errors", Json::Num(o.errors as f64)),
                ("latency_count", Json::Num(o.latency.count as f64)),
                (
                    "latency_total_micros",
                    Json::Num(o.latency.total_micros as f64),
                ),
                ("mean_micros", Json::Num(o.latency.mean_micros())),
                (
                    "latency_buckets",
                    Json::Arr(
                        o.latency
                            .buckets
                            .iter()
                            .map(|b| Json::Num(*b as f64))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let overload = {
        let s = service.stats();
        Json::obj([
            (
                "connections_rejected",
                Json::Num(s.connections_rejected as f64),
            ),
            ("requests_shed", Json::Num(s.requests_shed as f64)),
            ("stalls_shed", Json::Num(s.stalls_shed as f64)),
        ])
    };
    let mut fields = vec![
        ("rules", Json::Arr(rules)),
        ("ops", Json::Arr(ops)),
        (
            "index_generation",
            Json::Num(service.index_generation() as f64),
        ),
        ("window_millis", Json::Num(telemetry.window_millis() as f64)),
        ("overload", overload),
    ];
    if let Some(d) = service.durability() {
        fields.push(("durability", durability_json(&d)));
    }
    ok(fields)
}

/// Serialize a [`crate::DurabilitySnapshot`] for `persist` / `stats` /
/// `metrics` responses.
fn durability_json(d: &crate::DurabilitySnapshot) -> Json {
    Json::obj([
        (
            "checkpoint_generation",
            Json::Num(d.checkpoint_generation as f64),
        ),
        ("wal_segments", Json::Num(d.wal_segments as f64)),
        ("wal_bytes", Json::Num(d.wal_bytes as f64)),
        (
            "records_since_checkpoint",
            Json::Num(d.records_since_checkpoint as f64),
        ),
        ("replayed_records", Json::Num(d.replayed_records as f64)),
        (
            "truncated_tail_bytes",
            Json::Num(d.truncated_tail_bytes as f64),
        ),
        ("quarantined_files", Json::Num(d.quarantined_files as f64)),
        ("skipped_records", Json::Num(d.skipped_records as f64)),
        (
            "checkpoints_completed",
            Json::Num(d.checkpoints_completed as f64),
        ),
        (
            "checkpoint_failures",
            Json::Num(d.checkpoint_failures as f64),
        ),
    ])
}

fn handle_watch(req: &Json) -> Reply {
    let interval_ms = match req.get("interval_ms") {
        None => 1_000,
        Some(v) => match v.as_usize() {
            Some(ms) if ms >= 10 => ms as u64,
            _ => return fail("\"interval_ms\" must be an integer >= 10"),
        },
    };
    let frames = match req.get("frames") {
        None => None,
        Some(v) => match v.as_usize() {
            Some(n) if n >= 1 => Some(n as u64),
            _ => return fail("\"frames\" must be an integer >= 1"),
        },
    };
    let rules = match req.get("rules") {
        None => None,
        Some(_) => match str_array(req, "rules") {
            Ok(names) => Some(names.into_iter().map(str::to_string).collect()),
            Err(e) => return fail(e),
        },
    };
    let mut fields = vec![
        ("watching", Json::Bool(true)),
        ("interval_ms", Json::Num(interval_ms as f64)),
    ];
    if let Some(n) = frames {
        fields.push(("frames", Json::Num(n as f64)));
    }
    let mut reply = ok(fields);
    reply.watch = Some(WatchParams {
        interval: Duration::from_millis(interval_ms),
        frames,
        rules,
    });
    reply
}

/// Render one `watch` telemetry frame into `out` (cleared first). The
/// telemetry is snapshotted into owned values before serialization, so the
/// caller writes the buffer to its transport with no service lock held —
/// a stalled watch client can never block validation or inference.
pub(crate) fn render_watch_frame(
    service: &ValidationService,
    params: &WatchParams,
    frame: u64,
    elapsed: Duration,
    out: &mut String,
) {
    let snapshots = service.telemetry().rule_snapshots();
    let rules: Vec<Json> = snapshots
        .into_iter()
        .filter(|r| match &params.rules {
            Some(wanted) => wanted.iter().any(|w| w == &r.rule),
            None => true,
        })
        .map(|r| {
            Json::obj([
                ("rule", Json::str(r.rule)),
                ("validations", Json::Num(r.validations as f64)),
                ("flagged", Json::Num(r.flagged as f64)),
                ("window_validations", Json::Num(r.window.validations as f64)),
                ("window_flagged", Json::Num(r.window.flagged as f64)),
                ("window_checked", Json::Num(r.window.checked as f64)),
                (
                    "window_nonconforming",
                    Json::Num(r.window.nonconforming as f64),
                ),
                ("flag_rate", Json::Num(r.window.flag_rate())),
                ("alert", Json::Bool(r.alert)),
            ])
        })
        .collect();
    Json::obj([
        ("frame", Json::Num(frame as f64)),
        ("elapsed_ms", Json::Num(elapsed.as_millis() as f64)),
        (
            "index_generation",
            Json::Num(service.index_generation() as f64),
        ),
        ("rules", Json::Arr(rules)),
    ])
    .dump_into(out);
}

fn handle_stats(service: &ValidationService) -> Reply {
    let s = service.stats();
    let index = service.snapshot();
    let ops = Json::Obj(
        service
            .telemetry()
            .op_snapshots()
            .into_iter()
            .map(|o| {
                (
                    o.op,
                    Json::obj([
                        ("requests", Json::Num(o.requests as f64)),
                        ("errors", Json::Num(o.errors as f64)),
                    ]),
                )
            })
            .collect(),
    );
    let mut fields = vec![
        ("columns_ingested", Json::Num(s.columns_ingested as f64)),
        ("ingest_batches", Json::Num(s.ingest_batches as f64)),
        ("rules_inferred", Json::Num(s.rules_inferred as f64)),
        ("validations", Json::Num(s.validations as f64)),
        ("flagged", Json::Num(s.flagged as f64)),
        ("classifications", Json::Num(s.classifications as f64)),
        ("connection_errors", Json::Num(s.connection_errors as f64)),
        (
            "connections_rejected",
            Json::Num(s.connections_rejected as f64),
        ),
        ("requests_shed", Json::Num(s.requests_shed as f64)),
        ("stalls_shed", Json::Num(s.stalls_shed as f64)),
        ("index_patterns", Json::Num(index.len() as f64)),
        ("index_columns", Json::Num(index.num_columns as f64)),
        ("index_shards", Json::Num(index.shard_count() as f64)),
        (
            "index_generation",
            Json::Num(service.index_generation() as f64),
        ),
        ("ops", ops),
        (
            "catalog_rules",
            Json::Num(service.catalog_entries().len() as f64),
        ),
        (
            "catalog_generation",
            Json::Num(service.classifier_generation() as f64),
        ),
    ];
    if let Some(d) = service.durability() {
        fields.push(("durability", durability_json(&d)));
    }
    ok(fields)
}

/// Did a response line report success? (Convenience for clients/tests.)
pub fn response_ok(line: &str) -> bool {
    parse(line)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;

    fn service_with_corpus() -> ValidationService {
        let service = ValidationService::new(ServiceConfig::default());
        let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 19);
        let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
        service.ingest(&columns).unwrap();
        service
    }

    fn dates(month: u32) -> String {
        let values: Vec<String> = (1..=28)
            .map(|d| format!("\"2019-{month:02}-{d:02}\""))
            .collect();
        format!("[{}]", values.join(","))
    }

    #[test]
    fn full_protocol_session() {
        let service = service_with_corpus();
        let h = handle_line(&service, r#"{"op":"ping"}"#);
        assert!(response_ok(&h.response));

        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"dates","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"validate","rule":"dates","values":{}}}"#,
                dates(4)
            ),
        );
        assert!(response_ok(&h.response));
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("flagged").unwrap().as_bool(), Some(false));

        let h = handle_line(
            &service,
            r#"{"op":"validate","rule":"dates","values":["x","y","z"]}"#,
        );
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("flagged").unwrap().as_bool(), Some(true));

        let h = handle_line(&service, r#"{"op":"catalog"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("count").unwrap().as_usize(), Some(1));

        let h = handle_line(&service, r#"{"op":"stats"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("validations").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("flagged").unwrap().as_usize(), Some(1));

        let h = handle_line(&service, r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
        assert!(service.is_shutdown());
    }

    #[test]
    fn batch_op_mixes_ok_and_errors() {
        let service = service_with_corpus();
        handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"d","values":{}}}"#, dates(2)),
        );
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"validate_batch","items":[{{"rule":"d","values":{}}},{{"rule":"missing","values":[]}}]}}"#,
                dates(5)
            ),
        );
        assert!(response_ok(&h.response));
        let v = parse(&h.response).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(results[1].get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn baseline_and_compare_ops() {
        let service = service_with_corpus();
        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"d","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"infer_baseline","rule":"g","method":"grok","values":{}}}"#,
                dates(3)
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert!(v
            .get("describe")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("grok:"));

        // Both rules (FMDV catalog + grok baseline) validate and agree.
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"compare","a":"d","b":"g","values":{}}}"#,
                dates(4)
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("agree").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("a").unwrap().get("flagged").unwrap().as_bool(),
            Some(false)
        );

        // The catalog op lists session baselines separately.
        let h = handle_line(&service, r#"{"op":"catalog"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("count").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("baselines").unwrap().as_arr().unwrap().len(), 1);

        // Unknown methods fail cleanly.
        let h = handle_line(
            &service,
            r#"{"op":"infer_baseline","rule":"x","method":"banana","values":["1"]}"#,
        );
        assert!(!response_ok(&h.response));
    }

    #[test]
    fn malformed_requests_fail_cleanly() {
        let service = ValidationService::new(ServiceConfig::default());
        for bad in [
            "not json",
            "{}",
            r#"{"op":"nope"}"#,
            r#"{"op":"validate"}"#,
            r#"{"op":"validate","rule":"r"}"#,
            r#"{"op":"validate","rule":"r","values":[1,2]}"#,
            r#"{"op":"infer","rule":"r","values":["a"],"variant":"banana"}"#,
            r#"{"op":"ingest"}"#,
        ] {
            let h = handle_line(&service, bad);
            assert!(!response_ok(&h.response), "{bad} should fail");
            assert!(!h.shutdown);
        }
    }

    #[test]
    fn explain_op_reports_span_and_suggestion() {
        let service = service_with_corpus();
        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"dates","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let statuses: Vec<String> = (0..60)
            .map(|i| format!("{:?}", ["Delivered", "Pending", "Rejected"][i % 3]))
            .collect();
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"infer","rule":"status","values":[{}]}}"#,
                statuses.join(",")
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        // Conforming: no failure fields.
        let h = handle_line(
            &service,
            r#"{"op":"explain","rule":"dates","value":"2019-03-14"}"#,
        );
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("conforms").unwrap().as_bool(), Some(true));
        assert!(v.get("reason").is_none() && v.get("suggestion").is_none());

        // A status value in the dates feed: positional detail plus the
        // column-swap suggestion.
        let h = handle_line(
            &service,
            r#"{"op":"explain","rule":"dates","value":"Pending"}"#,
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("conforms").unwrap().as_bool(), Some(false));
        assert!(v.get("reason").is_some());
        assert!(v.get("failed_at").is_some());
        assert!(v.get("span").unwrap().as_arr().unwrap().len() == 2);
        assert_eq!(
            v.get("suggestion").unwrap().get("rule").unwrap().as_str(),
            Some("status")
        );

        // Missing fields and unknown rules fail cleanly.
        for bad in [
            r#"{"op":"explain","rule":"dates"}"#,
            r#"{"op":"explain","value":"x"}"#,
            r#"{"op":"explain","rule":"missing","value":"x"}"#,
        ] {
            assert!(!response_ok(&handle_line(&service, bad).response));
        }
    }

    #[test]
    fn classify_op_names_every_conforming_rule() {
        let service = service_with_corpus();
        let h = handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"dates","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let statuses: Vec<String> = (0..60)
            .map(|i| format!("{:?}", ["Delivered", "Pending", "Rejected"][i % 3]))
            .collect();
        let h = handle_line(
            &service,
            &format!(
                r#"{{"op":"infer","rule":"status","values":[{}]}}"#,
                statuses.join(",")
            ),
        );
        assert!(response_ok(&h.response), "{}", h.response);

        // A batch: per-value match lists in input order, best first.
        let h = handle_line(
            &service,
            r#"{"op":"classify","values":["2019-03-14","Pending","!!!"]}"#,
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert!(v.get("catalog_generation").unwrap().as_usize().unwrap() >= 2);
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("best").unwrap().as_str(), Some("dates"));
        assert_eq!(results[1].get("best").unwrap().as_str(), Some("status"));
        assert!(results[2].get("best").is_none());
        assert!(results[2]
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());

        // Single-value form.
        let h = handle_line(&service, r#"{"op":"classify","value":"Rejected"}"#);
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("value").unwrap().as_str(), Some("Rejected"));
        assert_eq!(results[0].get("best").unwrap().as_str(), Some("status"));

        // The op feeds the shared telemetry like every other dispatch,
        // and the stats op carries the classification counter.
        let h = handle_line(&service, r#"{"op":"stats"}"#);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("classifications").unwrap().as_usize(), Some(4));
        let ops = v.get("ops").unwrap();
        assert_eq!(
            ops.get("classify")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(2)
        );

        // Missing fields fail cleanly.
        assert!(!response_ok(
            &handle_line(&service, r#"{"op":"classify"}"#).response
        ));
        assert!(!response_ok(
            &handle_line(&service, r#"{"op":"classify","values":[1]}"#).response
        ));
    }

    #[test]
    fn metrics_and_stats_expose_telemetry() {
        let service = service_with_corpus();
        handle_line(
            &service,
            &format!(r#"{{"op":"infer","rule":"d","values":{}}}"#, dates(2)),
        );
        let h = handle_line(
            &service,
            &format!(r#"{{"op":"validate","rule":"d","values":{}}}"#, dates(3)),
        );
        assert!(response_ok(&h.response));
        let h = handle_line(
            &service,
            r#"{"op":"validate","rule":"d","values":["x","y","z"]}"#,
        );
        assert!(response_ok(&h.response));
        // One failing op for the error counter.
        handle_line(&service, r#"{"op":"validate","rule":"nope","values":[]}"#);

        let h = handle_line(&service, r#"{"op":"metrics"}"#);
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        let rules = v.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), 1);
        let rule = &rules[0];
        assert_eq!(rule.get("rule").unwrap().as_str(), Some("d"));
        assert_eq!(rule.get("validations").unwrap().as_usize(), Some(2));
        assert_eq!(rule.get("flagged").unwrap().as_usize(), Some(1));
        let window = rule.get("window").unwrap();
        assert_eq!(window.get("validations").unwrap().as_usize(), Some(2));
        assert_eq!(window.get("flag_rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(rule.get("alert").unwrap().as_bool(), Some(true));
        let exemplars = rule.get("exemplars").unwrap().as_arr().unwrap();
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].get("value").unwrap().as_str(), Some("x"));
        assert!(exemplars[0].get("reason").is_some());

        // Per-op counters: 3 validate dispatches, 1 of them an error.
        let ops = v.get("ops").unwrap().as_arr().unwrap();
        let validate = ops
            .iter()
            .find(|o| o.get("op").unwrap().as_str() == Some("validate"))
            .expect("validate op counted");
        assert_eq!(validate.get("requests").unwrap().as_usize(), Some(3));
        assert_eq!(validate.get("errors").unwrap().as_usize(), Some(1));
        assert_eq!(validate.get("latency_count").unwrap().as_usize(), Some(3));
        assert!(v.get("index_generation").unwrap().as_usize().unwrap() >= 1);

        // The stats op carries the per-op counters and index generation too.
        let h = handle_line(&service, r#"{"op":"stats"}"#);
        let v = parse(&h.response).unwrap();
        assert!(v.get("index_generation").unwrap().as_usize().unwrap() >= 1);
        let ops = v.get("ops").unwrap();
        assert_eq!(
            ops.get("validate")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(3)
        );
        assert_eq!(
            ops.get("metrics")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(1)
        );
    }

    #[test]
    fn watch_op_acknowledges_and_hands_params_to_the_serve_loop() {
        let service = ValidationService::new(ServiceConfig::default());
        let mut out = String::new();
        let outcome = handle_line_into(
            &service,
            r#"{"op":"watch","interval_ms":50,"frames":3,"rules":["d"]}"#,
            &mut out,
        );
        assert!(response_ok(&out), "{out}");
        let v = parse(&out).unwrap();
        assert_eq!(v.get("watching").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("interval_ms").unwrap().as_usize(), Some(50));
        let watch = outcome.watch.expect("watch params");
        assert_eq!(watch.interval, Duration::from_millis(50));
        assert_eq!(watch.frames, Some(3));
        assert_eq!(watch.rules.as_deref(), Some(&["d".to_string()][..]));
        assert!(!outcome.shutdown);

        // Defaults: 1 s interval, unbounded frames, all rules.
        let outcome = handle_line_into(&service, r#"{"op":"watch"}"#, &mut out);
        let watch = outcome.watch.expect("watch params");
        assert_eq!(watch.interval, Duration::from_millis(1000));
        assert_eq!(watch.frames, None);
        assert_eq!(watch.rules, None);

        // Invalid parameters are rejected and do not start a stream.
        for bad in [
            r#"{"op":"watch","interval_ms":1}"#,
            r#"{"op":"watch","frames":0}"#,
            r#"{"op":"watch","rules":[1]}"#,
        ] {
            let outcome = handle_line_into(&service, bad, &mut out);
            assert!(!response_ok(&out), "{bad} should fail");
            assert!(outcome.watch.is_none());
        }
    }

    #[test]
    fn ingest_via_protocol_grows_the_index() {
        let service = ValidationService::new(ServiceConfig::default());
        let h = handle_line(
            &service,
            r#"{"op":"ingest","columns":[{"name":"ips","values":["10.0.0.1","10.0.0.2","172.16.9.1"]},{"values":["a-1","b-2"]}]}"#,
        );
        assert!(response_ok(&h.response), "{}", h.response);
        let v = parse(&h.response).unwrap();
        assert_eq!(v.get("columns_added").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("total_columns").unwrap().as_usize(), Some(2));
        assert!(v.get("total_patterns").unwrap().as_usize().unwrap() > 0);
    }
}
