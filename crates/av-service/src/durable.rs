//! Crash-safe durability for the validation service: WAL record encoding,
//! incremental checkpoints, and recovery.
//!
//! ## What is logged
//!
//! Every acknowledged mutating operation appends one CRC-framed record to
//! the write-ahead log *before* the service applies it:
//!
//! | type byte | op            | payload                                   |
//! |-----------|---------------|-------------------------------------------|
//! | `1`       | `ingest`      | the profiled [`IndexDelta`] (AVDL bytes)  |
//! | `2`       | `infer`       | the catalog entry's on-disk line (UTF-8)  |
//! | `3`       | `delete_rule` | the rule name (UTF-8)                     |
//!
//! Logging the *delta* (not the raw columns) makes replay cheap and exact:
//! merging a replayed delta is bit-identical to re-merging the original,
//! because `av-index`'s fixed-point accumulators are associative. Logging
//! the catalog *line* makes a replayed rule byte-identical to a
//! checkpointed one.
//!
//! ## Checkpoints
//!
//! A checkpoint drains in-flight ingests, pins a WAL watermark `W` under
//! the log lock, rotates the log, and snapshots the index epoch and
//! catalog text — so the snapshot holds exactly the operations with LSN
//! ≤ `W`. It then writes **only the shards whose `Arc` changed since the
//! previous checkpoint** (untouched shards are pointer-shared across
//! merges, so the previous generation's files are re-referenced), writes
//! the catalog, and commits by atomically publishing a generation-numbered
//! [`Manifest`]. Only after the manifest is durable are covered WAL
//! segments removed and unreferenced files of older generations collected.
//!
//! ## Recovery
//!
//! `recover` loads the newest manifest that verifies, checks every shard
//! file against its manifest CRC — **quarantining** (not refusing to start
//! on) corrupt files — then replays WAL records above the manifest's
//! watermark, truncating the torn tail. The result equals the state after
//! some prefix of the acknowledged operation history, and that prefix
//! covers every operation acknowledged before the crash. Replay cost is
//! O(records since the last checkpoint), never a corpus rebuild.

use crate::catalog::{self, CatalogEntry, RuleCatalog};
use crate::lockorder;
use av_durable::{
    crc32, DurableError, Manifest, ShardFileEntry, Storage, Wal, WalConfig, WalReplay,
};
use av_index::{IndexDelta, IndexShard, PatternIndex};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Subdirectory of the data directory holding WAL segments.
pub(crate) const WAL_DIR: &str = "wal";
/// Subdirectory corrupt checkpoint files are moved into.
pub(crate) const QUARANTINE_DIR: &str = "quarantine";

const REC_DELTA: u8 = 1;
const REC_INFER: u8 = 2;
const REC_DELETE: u8 = 3;

/// Durability knobs for [`ServiceConfig`](crate::ServiceConfig).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Log every mutating op to a WAL and checkpoint incrementally.
    /// Requires a data directory; off by default.
    pub enabled: bool,
    /// WAL segment rotation threshold, in bytes.
    pub wal_segment_bytes: u64,
    /// Automatically checkpoint after this many logged records
    /// (`0` disables auto-checkpointing; `persist` still checkpoints).
    pub checkpoint_every_records: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: false,
            wal_segment_bytes: 8 << 20,
            checkpoint_every_records: 1024,
        }
    }
}

/// A point-in-time view of the durability subsystem, surfaced by the
/// `persist`, `stats`, and `metrics` protocol ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilitySnapshot {
    /// Generation of the last durable checkpoint (0 before the first).
    pub checkpoint_generation: u64,
    /// Live WAL segment files.
    pub wal_segments: usize,
    /// Total bytes across live WAL segments.
    pub wal_bytes: u64,
    /// Records logged since the last completed checkpoint.
    pub records_since_checkpoint: u64,
    /// WAL records replayed during recovery at open.
    pub replayed_records: u64,
    /// Bytes discarded as torn or unprovable WAL tail during recovery.
    pub truncated_tail_bytes: u64,
    /// Checkpoint files (shards or catalog) quarantined during recovery.
    pub quarantined_files: u64,
    /// Replayed records skipped as inapplicable (e.g. a delta logged
    /// under a different τ than the recovered index).
    pub skipped_records: u64,
    /// Checkpoints completed over the service lifetime.
    pub checkpoints_completed: u64,
    /// Checkpoint attempts that failed (state stays consistent; the WAL
    /// keeps covering the un-checkpointed records).
    pub checkpoint_failures: u64,
}

/// One decoded WAL record.
pub(crate) enum WalRecord {
    /// An ingested index delta.
    Delta(IndexDelta),
    /// A cataloged rule, as its catalog line.
    Infer(CatalogEntry),
    /// A catalog rule deletion.
    Delete(String),
}

pub(crate) fn encode_delta(delta: &IndexDelta) -> Vec<u8> {
    let body = delta.to_bytes();
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(REC_DELTA);
    out.extend_from_slice(&body);
    out
}

pub(crate) fn encode_infer(entry_line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + entry_line.len());
    out.push(REC_INFER);
    out.extend_from_slice(entry_line.as_bytes());
    out
}

pub(crate) fn encode_delete(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + name.len());
    out.push(REC_DELETE);
    out.extend_from_slice(name.as_bytes());
    out
}

/// Decode a WAL payload. Payloads are CRC-verified by the WAL layer, so a
/// decode failure means version skew, not bit rot; the caller skips and
/// counts it.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| "empty WAL record".to_string())?;
    match tag {
        REC_DELTA => IndexDelta::from_bytes(body)
            .map(WalRecord::Delta)
            .map_err(|e| format!("bad delta record: {e}")),
        REC_INFER => {
            let line = std::str::from_utf8(body).map_err(|_| "infer record not UTF-8")?;
            catalog::parse_entry(line)
                .map(WalRecord::Infer)
                .map_err(|e| format!("bad infer record: {e}"))
        }
        REC_DELETE => String::from_utf8(body.to_vec())
            .map(WalRecord::Delete)
            .map_err(|_| "delete record not UTF-8".to_string()),
        other => Err(format!("unknown WAL record type {other}")),
    }
}

/// What the previous checkpoint durably holds, used to write only changed
/// shards at the next one.
pub(crate) struct CheckpointBase {
    /// Last durable generation (0 before any checkpoint).
    pub generation: u64,
    /// The index epoch the base files encode. `None` forces a full shard
    /// rewrite (fresh service, or a recovery that resharded the image).
    pub index: Option<Arc<PatternIndex>>,
    /// Per-shard file entries of the base manifest; `None` for a shard
    /// with no reusable file (e.g. quarantined during recovery).
    pub files: Vec<Option<ShardFileEntry>>,
    /// File names the previous generation references (manifest included):
    /// the garbage collector keeps these plus the new generation's files,
    /// so a recovery that falls back one generation still finds its files.
    pub retained: BTreeSet<String>,
}

/// Shared durability state owned by the service in durable mode.
pub(crate) struct DurableState {
    pub storage: Arc<dyn Storage>,
    pub dir: PathBuf,
    pub cfg: DurabilityConfig,
    /// The WAL. This mutex is the op-ordering lock and is always the
    /// **outermost** lock of any mutating path: append under it, then
    /// apply (catalog ops apply while still holding it; ingests register
    /// in `in_flight` and merge after releasing it).
    pub wal: Mutex<Wal>,
    /// LSNs appended but not yet merged into the index. Checkpoints drain
    /// this (under the WAL lock, so no new LSNs can appear) before
    /// snapshotting, guaranteeing the snapshot covers the watermark.
    pub in_flight: Mutex<BTreeSet<u64>>,
    pub in_flight_cv: Condvar,
    /// Serializes checkpoints and holds what the last one wrote.
    pub ckpt: Mutex<CheckpointBase>,
    pub records_since_checkpoint: AtomicU64,
    pub replayed_records: AtomicU64,
    pub truncated_tail_bytes: AtomicU64,
    pub quarantined_files: AtomicU64,
    pub skipped_records: AtomicU64,
    pub checkpoints_completed: AtomicU64,
    pub checkpoint_failures: AtomicU64,
    pub last_generation: AtomicU64,
}

impl std::fmt::Debug for DurableState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableState")
            .field("dir", &self.dir)
            .field("generation", &self.last_generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl DurableState {
    /// Point-in-time counters plus WAL shape (briefly takes the WAL lock).
    pub fn snapshot(&self) -> DurabilitySnapshot {
        let (wal_segments, wal_bytes) = {
            let (_wal_rank, wal) = (
                lockorder::rank_guard(lockorder::WAL),
                self.wal.lock().expect("wal lock poisoned"),
            );
            (wal.segment_count(), wal.total_bytes())
        };
        DurabilitySnapshot {
            checkpoint_generation: self.last_generation.load(Ordering::Relaxed),
            wal_segments,
            wal_bytes,
            records_since_checkpoint: self.records_since_checkpoint.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            truncated_tail_bytes: self.truncated_tail_bytes.load(Ordering::Relaxed),
            quarantined_files: self.quarantined_files.load(Ordering::Relaxed),
            skipped_records: self.skipped_records.load(Ordering::Relaxed),
            checkpoints_completed: self.checkpoints_completed.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
        }
    }
}

fn shard_file_name(shard: usize, generation: u64) -> String {
    format!("shard-{shard:04x}-g{generation:016x}.avsh")
}

fn catalog_file_name(generation: u64) -> String {
    format!("catalog-g{generation:016x}.avcat")
}

/// Is `name` a file this module generates (and may therefore collect)?
fn is_generated_file(name: &str) -> bool {
    name.ends_with(".tmp")
        || (name.starts_with("shard-") && name.ends_with(".avsh"))
        || (name.starts_with("catalog-g") && name.ends_with(".avcat"))
        || Manifest::parse_file_name(name).is_some()
}

/// Write `bytes` to a *fresh* generation-unique file name: plain create +
/// write + fsync (no rename dance needed — nothing existing is replaced,
/// and the file only becomes reachable once the manifest referencing it
/// commits).
fn write_fresh(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let mut file = storage.create(path)?;
    file.write_all(bytes)?;
    file.sync()?;
    Ok(())
}

/// Move a corrupt checkpoint file into the quarantine subdirectory
/// (best-effort: quarantine failure must never block recovery).
fn quarantine(storage: &dyn Storage, dir: &Path, name: &str) {
    let qdir = dir.join(QUARANTINE_DIR);
    if storage.create_dir_all(&qdir).is_err() {
        return;
    }
    let _ = storage.rename(&dir.join(name), &qdir.join(name));
    let _ = storage.sync_dir(dir);
    let _ = storage.sync_dir(&qdir);
}

/// Everything [`recover`] reconstructs. The engine installs `image`,
/// applies `records` in order, then builds the live [`DurableState`].
pub(crate) struct Recovery {
    /// The checkpoint (or legacy `index.avix`) index image, if any.
    pub image: Option<PatternIndex>,
    /// True when `image` came from a checkpoint manifest whose shard
    /// layout is intact — its files may seed the next checkpoint's base.
    pub image_from_checkpoint: bool,
    /// The recovered catalog, *before* WAL replay.
    pub catalog: RuleCatalog,
    /// Decoded WAL records above the manifest watermark, in LSN order.
    pub records: Vec<WalRecord>,
    /// The WAL, opened for appending after the replayed records.
    pub wal: Wal,
    /// Base-manifest bookkeeping for the next checkpoint.
    pub base_generation: u64,
    pub base_files: Vec<Option<ShardFileEntry>>,
    pub retained: BTreeSet<String>,
    /// Counters for the durability snapshot.
    pub replayed_records: u64,
    pub truncated_tail_bytes: u64,
    pub quarantined_files: u64,
    pub skipped_records: u64,
}

/// Recover durable state from `dir`: newest valid manifest → per-file CRC
/// verification with quarantine → WAL replay with torn-tail truncation.
/// Falls back to legacy `index.avix` + `rules.avcat` images (plus full
/// WAL replay) when no manifest exists.
pub(crate) fn recover(
    storage: &Arc<dyn Storage>,
    dir: &Path,
    cfg: &DurabilityConfig,
) -> Result<Recovery, DurableError> {
    storage.create_dir_all(dir)?;
    let wal_dir = dir.join(WAL_DIR);
    storage.create_dir_all(&wal_dir)?;

    let mut quarantined = 0u64;
    let mut image = None;
    let mut image_from_checkpoint = false;
    let mut catalog = RuleCatalog::new();
    let mut base_generation = 0;
    let mut base_files = Vec::new();
    let mut retained = BTreeSet::new();
    let mut last_lsn = 0;

    if let Some((manifest, _skipped)) = Manifest::load_newest(storage.as_ref(), dir)? {
        let shard_count = 1usize << manifest.shard_bits;
        let mut shards = vec![IndexShard::default(); shard_count];
        base_files = vec![None; shard_count];
        for entry in &manifest.shards {
            let idx = entry.shard as usize;
            if idx >= shard_count {
                continue; // manifest CRC passed, so this cannot happen; be safe anyway
            }
            let verified = storage
                .read(&dir.join(&entry.file))
                .ok()
                .filter(|data| data.len() as u64 == entry.bytes && crc32(data) == entry.crc)
                .and_then(|data| {
                    IndexShard::from_section_bytes(&data, idx, manifest.shard_bits).ok()
                });
            match verified {
                Some(shard) => {
                    shards[idx] = shard;
                    base_files[idx] = Some(entry.clone());
                }
                None => {
                    // Quarantine instead of refusing to start: the shard
                    // restarts empty and WAL replay repopulates what it
                    // covers. The manifest entry is dropped from the base
                    // so the next checkpoint rewrites this shard.
                    quarantine(storage.as_ref(), dir, &entry.file);
                    quarantined += 1;
                }
            }
        }
        image = Some(
            PatternIndex::from_shards(
                shards,
                manifest.shard_bits,
                manifest.num_columns,
                manifest.tau as usize,
            )
            .map_err(|e| DurableError::Corrupt {
                file: Manifest::file_name(manifest.generation),
                offset: 0,
                detail: format!("manifest shard layout rejected: {e}"),
            })?,
        );
        image_from_checkpoint = true;
        if !manifest.catalog_file.is_empty() {
            let verified = storage
                .read(&dir.join(&manifest.catalog_file))
                .ok()
                .filter(|data| {
                    data.len() as u64 == manifest.catalog_bytes
                        && crc32(data) == manifest.catalog_crc
                })
                .and_then(|data| String::from_utf8(data).ok())
                .and_then(|text| RuleCatalog::from_text(&text).ok());
            match verified {
                Some(cat) => catalog = cat,
                None => {
                    quarantine(storage.as_ref(), dir, &manifest.catalog_file);
                    quarantined += 1;
                }
            }
        }
        base_generation = manifest.generation;
        last_lsn = manifest.last_lsn;
        retained.insert(Manifest::file_name(manifest.generation));
        if !manifest.catalog_file.is_empty() {
            retained.insert(manifest.catalog_file.clone());
        }
        for entry in &manifest.shards {
            retained.insert(entry.file.clone());
        }
    } else {
        // Pre-durability layout: a frozen `index.avix` + `rules.avcat`
        // pair. Load it as the base image; the WAL (if any) replays in
        // full on top.
        let index_path = dir.join(crate::engine::INDEX_FILE);
        if storage.exists(&index_path) {
            let data = storage.read(&index_path)?;
            image = Some(
                PatternIndex::from_bytes(&data).map_err(|e| DurableError::Corrupt {
                    file: crate::engine::INDEX_FILE.to_string(),
                    offset: 0,
                    detail: e.to_string(),
                })?,
            );
        }
        let catalog_path = dir.join(crate::engine::CATALOG_FILE);
        if storage.exists(&catalog_path) {
            let data = storage.read(&catalog_path)?;
            let text = String::from_utf8(data).map_err(|_| DurableError::Corrupt {
                file: crate::engine::CATALOG_FILE.to_string(),
                offset: 0,
                detail: "catalog is not UTF-8".to_string(),
            })?;
            catalog = RuleCatalog::from_text(&text).map_err(|e| DurableError::Corrupt {
                file: crate::engine::CATALOG_FILE.to_string(),
                offset: 0,
                detail: e.to_string(),
            })?;
        }
    }

    let replay: WalReplay = Wal::replay(storage.as_ref(), &wal_dir, last_lsn)?;
    let mut skipped = 0u64;
    let mut records = Vec::with_capacity(replay.records.len());
    let mut max_lsn = last_lsn;
    for (lsn, payload) in &replay.records {
        max_lsn = *lsn;
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(_) => skipped += 1,
        }
    }
    let wal = Wal::create(
        Arc::clone(storage),
        wal_dir,
        WalConfig {
            segment_bytes: cfg.wal_segment_bytes,
        },
        max_lsn + 1,
    )?;

    Ok(Recovery {
        image,
        image_from_checkpoint,
        catalog,
        records,
        wal,
        base_generation,
        base_files,
        retained,
        replayed_records: replay.records.len() as u64,
        truncated_tail_bytes: replay.truncated_tail_bytes,
        quarantined_files: quarantined,
        skipped_records: skipped,
    })
}

/// Write one incremental checkpoint: `index` and `catalog_text` must be a
/// consistent cut at WAL watermark `watermark` (the engine snapshots them
/// under the WAL lock with in-flight ingests drained). `base` (locked by
/// the caller) tells which shard files can be re-referenced unchanged.
///
/// Returns the new generation. On success the base is advanced, covered
/// WAL segments are removed, and unreferenced files of generations older
/// than the previous one are collected — both best-effort, because the
/// manifest commit has already made the checkpoint durable.
pub(crate) fn write_checkpoint(
    state: &DurableState,
    base: &mut CheckpointBase,
    index: &Arc<PatternIndex>,
    catalog_text: &str,
    watermark: u64,
) -> Result<u64, DurableError> {
    let storage = state.storage.as_ref();
    let dir = &state.dir;
    let generation = base.generation + 1;

    let reusable = base
        .index
        .as_ref()
        .filter(|b| {
            b.shard_count() == index.shard_count() && base.files.len() == index.shard_count()
        })
        .map(|b| b.shards());
    let mut shard_entries = Vec::with_capacity(index.shard_count());
    for (i, shard) in index.shards().iter().enumerate() {
        let reused = reusable
            .filter(|bs| Arc::ptr_eq(&bs[i], shard))
            .and_then(|_| base.files[i].clone());
        let entry = match reused {
            Some(entry) => entry,
            None => {
                let bytes = shard.section_bytes();
                let file = shard_file_name(i, generation);
                write_fresh(storage, &dir.join(&file), &bytes)?;
                ShardFileEntry {
                    shard: i as u32,
                    file,
                    crc: crc32(&bytes),
                    bytes: bytes.len() as u64,
                }
            }
        };
        shard_entries.push(entry);
    }

    let catalog_file = catalog_file_name(generation);
    write_fresh(storage, &dir.join(&catalog_file), catalog_text.as_bytes())?;
    // One directory sync makes every fresh file findable before the
    // manifest that references them can commit.
    storage.sync_dir(dir)?;

    let manifest = Manifest {
        generation,
        last_lsn: watermark,
        num_columns: index.num_columns,
        tau: index.tau as u64,
        shard_bits: index.shard_bits(),
        catalog_file: catalog_file.clone(),
        catalog_crc: crc32(catalog_text.as_bytes()),
        catalog_bytes: catalog_text.len() as u64,
        shards: shard_entries.clone(),
    };
    manifest.write(storage, dir)?; // the commit point

    let mut new_retained = BTreeSet::new();
    new_retained.insert(Manifest::file_name(generation));
    new_retained.insert(catalog_file);
    for entry in &shard_entries {
        new_retained.insert(entry.file.clone());
    }

    // Everything below is post-commit cleanup: failures leave garbage,
    // never inconsistency, so they must not fail the checkpoint.
    {
        let (_wal_rank, mut wal) = (
            lockorder::rank_guard(lockorder::WAL),
            state.wal.lock().expect("wal lock poisoned"),
        );
        let _ = wal.remove_through(watermark);
    }
    // Keep the new generation plus the previous one (recovery may fall
    // back a generation if the newest manifest is damaged); collect
    // everything older.
    if let Ok(names) = storage.list(dir) {
        let mut removed = false;
        for name in names {
            if is_generated_file(&name)
                && !new_retained.contains(&name)
                && !base.retained.contains(&name)
            {
                let _ = storage.remove(&dir.join(&name));
                removed = true;
            }
        }
        if removed {
            let _ = storage.sync_dir(dir);
        }
    }

    base.generation = generation;
    base.index = Some(Arc::clone(index));
    base.files = shard_entries.into_iter().map(Some).collect();
    base.retained = new_retained;
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_encoding_roundtrips() {
        use av_core::{AnyRule, DictionaryRule, FmdvConfig};
        let train: Vec<String> = (0..60).map(|i| ["a", "b", "c"][i % 3].into()).collect();
        let entry = CatalogEntry {
            name: "r".to_string(),
            rule: AnyRule::Dictionary(
                DictionaryRule::infer(&train, &FmdvConfig::default(), 0.2).unwrap(),
            ),
            variant: "auto".to_string(),
            created_unix: 7,
        };
        let line = catalog::entry_line(&entry);
        match decode_record(&encode_infer(&line)) {
            Ok(WalRecord::Infer(e)) => {
                assert_eq!(e.name, "r");
                assert_eq!(e.created_unix, 7);
                assert!(e.rule.conforms("b"));
            }
            other => panic!("expected infer record, got {:?}", other.err()),
        }
        match decode_record(&encode_delete("gone")) {
            Ok(WalRecord::Delete(n)) => assert_eq!(n, "gone"),
            other => panic!("expected delete record, got {:?}", other.err()),
        }
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99, 1, 2]).is_err());
    }

    #[test]
    fn generated_file_name_filter() {
        assert!(is_generated_file(&shard_file_name(3, 9)));
        assert!(is_generated_file(&catalog_file_name(9)));
        assert!(is_generated_file(&Manifest::file_name(9)));
        assert!(is_generated_file("anything.tmp"));
        assert!(!is_generated_file("index.avix"));
        assert!(!is_generated_file("rules.avcat"));
        assert!(!is_generated_file("wal-0000000000000001.avwal"));
    }
}
