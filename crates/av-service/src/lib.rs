//! # av-service — the long-running Auto-Validate service
//!
//! The paper deploys Auto-Validate as a production service: patterns are
//! mined offline from the data lake, and recurring pipeline feeds are
//! validated against cataloged rules on every run. This crate is that
//! deployment shape for the rest of the workspace:
//!
//! * **Shared live index** — readers take wait-free `Arc<PatternIndex>`
//!   **epoch** snapshots from an [`av_index::ShardedIndex`]; nothing
//!   blocks while rules are inferred or columns are validated, and a
//!   snapshot taken during an ingest is never torn — it is exactly the
//!   pre- or post-ingest index.
//! * **Incremental ingestion, O(touched shards)** — new corpus columns
//!   are profiled into an [`av_index::IndexDelta`] that splits into
//!   per-shard sub-deltas; the merge clones and republishes only the
//!   fingerprint shards the delta touches, so ingest cost tracks the
//!   delta, not the lake, and ingests on disjoint shards commit
//!   concurrently. Statistics stay bit-for-bit identical to a full
//!   rebuild (`av-index`'s fixed-point accumulators make the merge
//!   exact).
//! * **Persistent rule catalog** — rules are inferred once (FMDV and its
//!   fallbacks), named, serialized to `rules.avcat`, and reloaded on
//!   restart, so a service restart never re-infers or loses a rule.
//! * **Concurrent batch validation** — a worker pool fans a batch of
//!   columns across threads; reports are deterministic and identical to
//!   sequential runs.
//! * **One dispatch path** — the engine validates exclusively through
//!   `dyn av_core::Validator` streaming sessions over borrowed `&str`
//!   values, so FMDV catalog rules and session-scoped baseline rules
//!   (`infer_baseline` op: TFDV, Grok, PWheel, …) serve identically and
//!   can be A/B-compared live (`compare` op).
//! * **Crash-safe durable mode** — with [`ServiceConfig::durable`],
//!   every mutating op is CRC-framed, write-ahead logged and fsynced
//!   before it is acknowledged; `persist` writes an **incremental
//!   checkpoint** (only index shards touched since the last one are
//!   rewritten) and [`ValidationService::open`] recovers checkpoint +
//!   WAL tail in O(records since checkpoint) — a kill at any instant
//!   loses no acknowledged op. Corrupt shard files are quarantined,
//!   not fatal. See [`durable`] and the fault-injection matrix in
//!   `tests/crash_recovery.rs`.
//! * **JSONL protocol** — `av-serve` (in the root crate's `src/bin`)
//!   drives all of this over stdin/stdout or TCP; see [`protocol`].
//!
//! ## Quick start
//!
//! ```
//! use av_service::{ServiceConfig, ValidationService};
//! use av_corpus::{generate_lake, LakeProfile};
//!
//! let service = ValidationService::new(ServiceConfig::default());
//! // Ingest an initial corpus (here synthetic; in production, your lake).
//! let lake = generate_lake(&LakeProfile::tiny(), 42);
//! let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
//! service.ingest(&columns).unwrap();
//!
//! // Infer and catalog a named rule, then validate a future feed.
//! let march: Vec<String> = (1..=28).map(|d| format!("2019-03-{d:02}")).collect();
//! service.infer_rule("feeds/date", &march, None).unwrap();
//! let april: Vec<String> = (1..=28).map(|d| format!("2019-04-{d:02}")).collect();
//! assert!(!service.validate("feeds/date", &april).unwrap().flagged);
//! let drifted: Vec<String> = (0..28).map(|i| format!("user-{i}")).collect();
//! assert!(service.validate("feeds/date", &drifted).unwrap().flagged);
//! ```

pub mod catalog;
pub mod durable;
pub mod engine;
pub mod json;
pub(crate) mod lockorder;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use catalog::{CatalogEntry, CatalogError, RuleCatalog};
pub use durable::{DurabilityConfig, DurabilitySnapshot};
pub use engine::{
    owned_column, BatchItem, ClassifyOutcome, ExplainOutcome, IngestReport, ServiceConfig,
    ServiceError, ServiceStats, ValidationService, CATALOG_FILE, INDEX_FILE,
};
pub use protocol::{handle_line, response_ok, Handled, LineOutcome, WatchParams};
pub use server::{
    serve_lines, serve_listener, serve_stdin, serve_tcp, std_listener, FaultKind, FaultListener,
    FaultSocket, NetFaultPlan, NetListener, NetSocket, FAULT_WINDOW_OPS,
};
pub use telemetry::{
    FailureExemplar, OpSnapshot, RuleTelemetrySnapshot, ServiceTelemetry, TelemetryConfig,
    WindowSnapshot,
};

/// The service is shared across threads by construction; keep it that way.
#[allow(dead_code)]
fn assert_service_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ValidationService>();
    assert_send_sync::<CatalogEntry>();
    assert_send_sync::<RuleCatalog>();
}
