//! The persistent rule catalog: named validation rules inferred once,
//! serialized to disk, reloaded on restart — so a recurring pipeline's
//! rules survive service restarts and are never re-inferred per run.
//!
//! On-disk format: a text file, first line `AVCAT 3`, then one line per
//! rule combining catalog metadata with the rule's `av-core` wire form,
//! then a CRC-32 footer line over every preceding byte:
//!
//! ```text
//! AVCAT 3
//! name=<pct>;variant=<pct>;created=<unix secs>;kind=pattern;...
//! #crc32=9a0b1c2d
//! ```
//!
//! The footer turns silent bit rot into a load error that names the file
//! and the byte offset of the mismatch. `AVCAT 2` files (written before
//! the footer existed) still load; `AVCAT 1` files predate the
//! whitespace-tokenization change and are refused rather than
//! reinterpreted.
//!
//! Saves are atomic and durable (sibling temp file, `fsync`, rename,
//! parent-directory `fsync`), so a crash mid-save never corrupts the
//! previous catalog and a completed save survives power loss.

use av_core::{pct_decode, pct_encode, AnyRule};
use av_durable::{crc32, OsStorage, Storage};
use std::collections::BTreeMap;
use std::path::Path;

/// A named rule plus provenance metadata.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Unique rule name (pipeline feed id, column path, ...).
    pub name: String,
    /// The inferred rule.
    pub rule: AnyRule,
    /// Label of the inference variant that produced it ("FMDV-VH", "auto").
    pub variant: String,
    /// Unix seconds at inference time.
    pub created_unix: u64,
}

/// Errors from loading or saving a catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed catalog content.
    Format(String),
    /// The CRC-32 footer did not match the catalog bytes: the file was
    /// corrupted after it was written.
    Corrupt {
        /// The file that failed verification (empty when the catalog was
        /// parsed from in-memory text).
        file: String,
        /// Byte offset of the footer whose check failed.
        offset: u64,
        /// What mismatched.
        detail: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Format(m) => write!(f, "catalog format error: {m}"),
            CatalogError::Corrupt {
                file,
                offset,
                detail,
            } => {
                let file = if file.is_empty() { "<memory>" } else { file };
                write!(f, "catalog {file} corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

// v2: rules serialized before the whitespace-tokenization change (CR/LF as
// symbol runs) would silently change meaning if reloaded; the header bump
// turns that into a clean load error instead.
// v3: adds the CRC-32 footer line. v2 files (no footer) still load.
const HEADER: &str = "AVCAT 3";
const HEADER_V2: &str = "AVCAT 2";
const FOOTER_PREFIX: &str = "#crc32=";

/// An in-memory collection of named rules with disk persistence.
#[derive(Debug, Clone, Default)]
pub struct RuleCatalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl RuleCatalog {
    /// An empty catalog.
    pub fn new() -> RuleCatalog {
        RuleCatalog::default()
    }

    /// Insert (or replace) a rule; returns the previous entry if any.
    pub fn insert(&mut self, entry: CatalogEntry) -> Option<CatalogEntry> {
        self.entries.insert(entry.name.clone(), entry)
    }

    /// Look up a rule by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Remove a rule by name.
    pub fn remove(&mut self, name: &str) -> Option<CatalogEntry> {
        self.entries.remove(name)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }

    /// Serialize the whole catalog to its text form (AVCAT 3: header,
    /// one line per entry, CRC-32 footer over every preceding byte).
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in self.entries.values() {
            out.push_str(&entry_line(e));
            out.push('\n');
        }
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("{FOOTER_PREFIX}{crc:08x}\n"));
        out
    }

    /// Parse a catalog from its text form. Accepts AVCAT 3 (footer
    /// verified) and AVCAT 2 (no footer).
    pub fn from_text(text: &str) -> Result<RuleCatalog, CatalogError> {
        let mut lines = text.lines();
        let v3 = match lines.next() {
            Some(h) if h.trim() == HEADER => true,
            Some(h) if h.trim() == HEADER_V2 => false,
            other => {
                return Err(CatalogError::Format(format!(
                    "bad header {other:?}, expected {HEADER:?}"
                )))
            }
        };
        let body = if v3 {
            // The footer must be the last non-empty line; its CRC covers
            // every byte before the footer line itself.
            let trimmed = text.trim_end_matches(['\n', '\r']);
            let footer_start = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
            let footer = &trimmed[footer_start..];
            let stored = footer
                .strip_prefix(FOOTER_PREFIX)
                .and_then(|h| u32::from_str_radix(h.trim(), 16).ok())
                .ok_or_else(|| CatalogError::Corrupt {
                    file: String::new(),
                    offset: footer_start as u64,
                    detail: format!("missing {FOOTER_PREFIX:?} footer line"),
                })?;
            let computed = crc32(&text.as_bytes()[..footer_start]);
            if stored != computed {
                return Err(CatalogError::Corrupt {
                    file: String::new(),
                    offset: footer_start as u64,
                    detail: format!("crc32 mismatch: stored {stored:08x}, computed {computed:08x}"),
                });
            }
            &text[..footer_start]
        } else {
            text
        };
        let mut catalog = RuleCatalog::new();
        for (i, line) in body.lines().skip(1).enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let entry = parse_entry(line)
                .map_err(|m| CatalogError::Format(format!("line {}: {m}", i + 2)))?;
            catalog.insert(entry);
        }
        Ok(catalog)
    }

    /// Write the catalog through `storage` atomically and durably
    /// (see [`av_durable::write_atomic`]): sibling temp file, `fsync`,
    /// rename over `path`, parent-directory `fsync`.
    pub fn save_with(
        &self,
        storage: &dyn Storage,
        path: impl AsRef<Path>,
    ) -> Result<(), CatalogError> {
        av_durable::write_atomic(storage, path.as_ref(), self.to_text().as_bytes())?;
        Ok(())
    }

    /// [`save_with`](Self::save_with) against the real filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        self.save_with(&OsStorage, path)
    }

    /// Load a catalog through `storage`. Corruption errors name the file
    /// and the byte offset where verification failed.
    pub fn load_with(
        storage: &dyn Storage,
        path: impl AsRef<Path>,
    ) -> Result<RuleCatalog, CatalogError> {
        let path = path.as_ref();
        let bytes = storage.read(path)?;
        let text = String::from_utf8(bytes)
            .map_err(|e| CatalogError::Format(format!("catalog is not UTF-8: {e}")))?;
        RuleCatalog::from_text(&text).map_err(|e| name_file(e, &path.display().to_string()))
    }

    /// [`load_with`](Self::load_with) against the real filesystem.
    pub fn load(path: impl AsRef<Path>) -> Result<RuleCatalog, CatalogError> {
        Self::load_with(&OsStorage, path)
    }
}

/// Stamp a file name into a [`CatalogError::Corrupt`] raised while parsing
/// that file's text.
pub(crate) fn name_file(e: CatalogError, file_name: &str) -> CatalogError {
    match e {
        CatalogError::Corrupt { offset, detail, .. } => CatalogError::Corrupt {
            file: file_name.to_string(),
            offset,
            detail,
        },
        other => other,
    }
}

/// One catalog entry rendered as its on-disk line (no trailing newline).
/// This exact form is also the WAL payload of an `infer` record, so a
/// replayed rule is byte-identical to a checkpointed one.
pub(crate) fn entry_line(e: &CatalogEntry) -> String {
    format!(
        "name={};variant={};created={};{}",
        pct_encode(&e.name),
        pct_encode(&e.variant),
        e.created_unix,
        e.rule.to_wire(),
    )
}

pub(crate) fn parse_entry(line: &str) -> Result<CatalogEntry, String> {
    let decode = |v: &str| pct_decode(v).map_err(|e| e.to_string());
    let mut name = None;
    let mut variant = None;
    let mut created = None;
    for part in line.split(';') {
        match part.split_once('=') {
            Some(("name", v)) => name = Some(decode(v)?),
            Some(("variant", v)) => variant = Some(decode(v)?),
            Some(("created", v)) => {
                created = Some(v.parse::<u64>().map_err(|_| "bad created field")?)
            }
            _ => {}
        }
    }
    let rule = AnyRule::from_wire(line).map_err(|e| e.to_string())?;
    Ok(CatalogEntry {
        name: name.ok_or("missing name")?,
        rule,
        variant: variant.unwrap_or_else(|| "unknown".to_string()),
        created_unix: created.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::{DictionaryRule, FmdvConfig, ValidationRule};
    use av_pattern::parse as parse_pattern;
    use av_stats::HomogeneityTest;

    fn entry(name: &str, pattern: &str) -> CatalogEntry {
        CatalogEntry {
            name: name.to_string(),
            rule: AnyRule::Pattern(ValidationRule::new(
                parse_pattern(pattern).unwrap(),
                0.0125,
                400,
                0.003,
                77,
                HomogeneityTest::FisherExact,
                0.01,
            )),
            variant: "FMDV-VH".to_string(),
            created_unix: 1_753_600_000,
        }
    }

    #[test]
    fn text_roundtrip_preserves_entries() {
        let mut cat = RuleCatalog::new();
        cat.insert(entry(
            "feeds/sales.date",
            "<digit>{4}-<digit>{2}-<digit>{2}",
        ));
        cat.insert(entry("weird name; with=delims,", "<digit>+"));
        let dict_train: Vec<String> = (0..60).map(|i| ["a", "b", "c"][i % 3].into()).collect();
        cat.insert(CatalogEntry {
            name: "statuses".into(),
            rule: AnyRule::Dictionary(
                DictionaryRule::infer(&dict_train, &FmdvConfig::default(), 0.2).unwrap(),
            ),
            variant: "auto".into(),
            created_unix: 7,
        });

        let reloaded = RuleCatalog::from_text(&cat.to_text()).unwrap();
        assert_eq!(reloaded.len(), 3);
        let e = reloaded.get("feeds/sales.date").unwrap();
        assert_eq!(e.variant, "FMDV-VH");
        assert_eq!(e.created_unix, 1_753_600_000);
        assert!(e.rule.conforms("2026-07-27"));
        assert!(!e.rule.conforms("27/07/2026"));
        assert!(reloaded.get("weird name; with=delims,").is_some());
        assert!(reloaded.get("statuses").unwrap().rule.conforms("b"));
    }

    #[test]
    fn save_load_via_file() {
        let dir = std::env::temp_dir().join("av_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rules.avcat");
        let mut cat = RuleCatalog::new();
        cat.insert(entry("r1", "<num>"));
        cat.save(&path).unwrap();
        let loaded = RuleCatalog::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.get("r1").unwrap().rule.conforms("42"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(RuleCatalog::from_text("").is_err());
        assert!(RuleCatalog::from_text("NOT A CATALOG\n").is_err());
        assert!(RuleCatalog::from_text("AVCAT 2\ngarbage line\n").is_err());
        // Header alone is a valid empty catalog.
        assert!(RuleCatalog::from_text("AVCAT 2\n").unwrap().is_empty());
        // Pre-whitespace-change catalogs are refused, not reinterpreted.
        assert!(RuleCatalog::from_text("AVCAT 1\n").is_err());
    }

    #[test]
    fn corrupted_catalog_names_file_and_offset() {
        let mut cat = RuleCatalog::new();
        cat.insert(entry("r1", "<num>"));
        cat.insert(entry("r2", "<digit>{4}"));
        let text = cat.to_text();
        assert!(text.starts_with("AVCAT 3\n"), "{text}");
        assert!(text
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .starts_with("#crc32="));

        // Any body byte flip is caught by the footer.
        let mut bytes = text.clone().into_bytes();
        bytes[12] ^= 0x40;
        let corrupt = String::from_utf8(bytes).unwrap();
        match RuleCatalog::from_text(&corrupt) {
            Err(CatalogError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset as usize, text.rfind("#crc32=").unwrap());
                assert!(detail.contains("crc32 mismatch"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A truncated file (footer lost) is refused too.
        let footer_at = text.rfind("#crc32=").unwrap();
        assert!(matches!(
            RuleCatalog::from_text(&text[..footer_at]),
            Err(CatalogError::Corrupt { .. })
        ));

        // Loading from disk names the file in the error message.
        let dir = std::env::temp_dir().join(format!("av_catalog_crc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rules.avcat");
        std::fs::write(&path, &corrupt).unwrap();
        let err = RuleCatalog::load(&path).unwrap_err().to_string();
        assert!(err.contains("rules.avcat"), "{err}");
        assert!(err.contains("corrupt at byte"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_catalogs_without_footer_still_load() {
        let mut cat = RuleCatalog::new();
        cat.insert(entry("r1", "<num>"));
        // Render a v2 image by hand: v3 text minus the footer, with the
        // old header.
        let v3 = cat.to_text();
        let body_end = v3.rfind("#crc32=").unwrap();
        let v2 = format!("AVCAT 2\n{}", &v3["AVCAT 3\n".len()..body_end]);
        let loaded = RuleCatalog::from_text(&v2).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.get("r1").unwrap().rule.conforms("42"));
    }

    #[test]
    fn replace_and_remove() {
        let mut cat = RuleCatalog::new();
        assert!(cat.insert(entry("r", "<digit>+")).is_none());
        assert!(cat.insert(entry("r", "<letter>+")).is_some());
        assert_eq!(cat.len(), 1);
        assert!(cat.remove("r").is_some());
        assert!(cat.is_empty());
    }
}
