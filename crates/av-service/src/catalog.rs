//! The persistent rule catalog: named validation rules inferred once,
//! serialized to disk, reloaded on restart — so a recurring pipeline's
//! rules survive service restarts and are never re-inferred per run.
//!
//! On-disk format: a text file, first line `AVCAT 1`, then one line per
//! rule combining catalog metadata with the rule's `av-core` wire form:
//!
//! ```text
//! name=<pct>;variant=<pct>;created=<unix secs>;kind=pattern;...
//! ```
//!
//! Saves are atomic (write to a sibling temp file, then rename), so a
//! crash mid-save never corrupts the previous catalog.

use av_core::{pct_decode, pct_encode, AnyRule};
use std::collections::BTreeMap;
use std::path::Path;

/// A named rule plus provenance metadata.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Unique rule name (pipeline feed id, column path, ...).
    pub name: String,
    /// The inferred rule.
    pub rule: AnyRule,
    /// Label of the inference variant that produced it ("FMDV-VH", "auto").
    pub variant: String,
    /// Unix seconds at inference time.
    pub created_unix: u64,
}

/// Errors from loading or saving a catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed catalog content.
    Format(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Format(m) => write!(f, "catalog format error: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

// v2: rules serialized before the whitespace-tokenization change (CR/LF as
// symbol runs) would silently change meaning if reloaded; the header bump
// turns that into a clean load error instead.
const HEADER: &str = "AVCAT 2";

/// An in-memory collection of named rules with disk persistence.
#[derive(Debug, Clone, Default)]
pub struct RuleCatalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl RuleCatalog {
    /// An empty catalog.
    pub fn new() -> RuleCatalog {
        RuleCatalog::default()
    }

    /// Insert (or replace) a rule; returns the previous entry if any.
    pub fn insert(&mut self, entry: CatalogEntry) -> Option<CatalogEntry> {
        self.entries.insert(entry.name.clone(), entry)
    }

    /// Look up a rule by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Remove a rule by name.
    pub fn remove(&mut self, name: &str) -> Option<CatalogEntry> {
        self.entries.remove(name)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }

    /// Serialize the whole catalog to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in self.entries.values() {
            out.push_str(&format!(
                "name={};variant={};created={};{}\n",
                pct_encode(&e.name),
                pct_encode(&e.variant),
                e.created_unix,
                e.rule.to_wire(),
            ));
        }
        out
    }

    /// Parse a catalog from its text form.
    pub fn from_text(text: &str) -> Result<RuleCatalog, CatalogError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => {
                return Err(CatalogError::Format(format!(
                    "bad header {other:?}, expected {HEADER:?}"
                )))
            }
        }
        let mut catalog = RuleCatalog::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let entry = parse_entry(line)
                .map_err(|m| CatalogError::Format(format!("line {}: {m}", i + 2)))?;
            catalog.insert(entry);
        }
        Ok(catalog)
    }

    /// Atomically write the catalog to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a catalog from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<RuleCatalog, CatalogError> {
        let text = std::fs::read_to_string(path)?;
        RuleCatalog::from_text(&text)
    }
}

fn parse_entry(line: &str) -> Result<CatalogEntry, String> {
    let decode = |v: &str| pct_decode(v).map_err(|e| e.to_string());
    let mut name = None;
    let mut variant = None;
    let mut created = None;
    for part in line.split(';') {
        match part.split_once('=') {
            Some(("name", v)) => name = Some(decode(v)?),
            Some(("variant", v)) => variant = Some(decode(v)?),
            Some(("created", v)) => {
                created = Some(v.parse::<u64>().map_err(|_| "bad created field")?)
            }
            _ => {}
        }
    }
    let rule = AnyRule::from_wire(line).map_err(|e| e.to_string())?;
    Ok(CatalogEntry {
        name: name.ok_or("missing name")?,
        rule,
        variant: variant.unwrap_or_else(|| "unknown".to_string()),
        created_unix: created.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::{DictionaryRule, FmdvConfig, ValidationRule};
    use av_pattern::parse as parse_pattern;
    use av_stats::HomogeneityTest;

    fn entry(name: &str, pattern: &str) -> CatalogEntry {
        CatalogEntry {
            name: name.to_string(),
            rule: AnyRule::Pattern(ValidationRule::new(
                parse_pattern(pattern).unwrap(),
                0.0125,
                400,
                0.003,
                77,
                HomogeneityTest::FisherExact,
                0.01,
            )),
            variant: "FMDV-VH".to_string(),
            created_unix: 1_753_600_000,
        }
    }

    #[test]
    fn text_roundtrip_preserves_entries() {
        let mut cat = RuleCatalog::new();
        cat.insert(entry(
            "feeds/sales.date",
            "<digit>{4}-<digit>{2}-<digit>{2}",
        ));
        cat.insert(entry("weird name; with=delims,", "<digit>+"));
        let dict_train: Vec<String> = (0..60).map(|i| ["a", "b", "c"][i % 3].into()).collect();
        cat.insert(CatalogEntry {
            name: "statuses".into(),
            rule: AnyRule::Dictionary(
                DictionaryRule::infer(&dict_train, &FmdvConfig::default(), 0.2).unwrap(),
            ),
            variant: "auto".into(),
            created_unix: 7,
        });

        let reloaded = RuleCatalog::from_text(&cat.to_text()).unwrap();
        assert_eq!(reloaded.len(), 3);
        let e = reloaded.get("feeds/sales.date").unwrap();
        assert_eq!(e.variant, "FMDV-VH");
        assert_eq!(e.created_unix, 1_753_600_000);
        assert!(e.rule.conforms("2026-07-27"));
        assert!(!e.rule.conforms("27/07/2026"));
        assert!(reloaded.get("weird name; with=delims,").is_some());
        assert!(reloaded.get("statuses").unwrap().rule.conforms("b"));
    }

    #[test]
    fn save_load_via_file() {
        let dir = std::env::temp_dir().join("av_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rules.avcat");
        let mut cat = RuleCatalog::new();
        cat.insert(entry("r1", "<num>"));
        cat.save(&path).unwrap();
        let loaded = RuleCatalog::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.get("r1").unwrap().rule.conforms("42"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(RuleCatalog::from_text("").is_err());
        assert!(RuleCatalog::from_text("NOT A CATALOG\n").is_err());
        assert!(RuleCatalog::from_text("AVCAT 2\ngarbage line\n").is_err());
        // Header alone is a valid empty catalog.
        assert!(RuleCatalog::from_text("AVCAT 2\n").unwrap().is_empty());
        // Pre-whitespace-change catalogs are refused, not reinterpreted.
        assert!(RuleCatalog::from_text("AVCAT 1\n").is_err());
    }

    #[test]
    fn replace_and_remove() {
        let mut cat = RuleCatalog::new();
        assert!(cat.insert(entry("r", "<digit>+")).is_none());
        assert!(cat.insert(entry("r", "<letter>+")).is_some());
        assert_eq!(cat.len(), 1);
        assert!(cat.remove("r").is_some());
        assert!(cat.is_empty());
    }
}
