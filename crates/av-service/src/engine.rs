//! The long-running validation engine: a shared pattern index behind
//! copy-on-write snapshots, a persistent rule catalog, a concurrent batch
//! validation API, and incremental corpus ingestion.
//!
//! Concurrency model:
//!
//! * **Readers never block.** Every inference/validation takes an
//!   `Arc<PatternIndex>` snapshot (one `RwLock` read to clone the `Arc`).
//! * **Ingestion is copy-on-write.** New columns are profiled into an
//!   [`IndexDelta`] with no lock held (the expensive part), then a clone
//!   of the live index absorbs the delta and the `Arc` is swapped in one
//!   short write-lock. In-flight readers keep their old snapshot; there is
//!   no stop-the-world rebuild and no rescan of old columns.
//! * **Ingests serialize among themselves** (a dedicated mutex), so no
//!   delta can be lost to a concurrent clone-swap race.

use crate::catalog::{CatalogEntry, CatalogError, RuleCatalog};
use av_core::{AnyRule, AutoValidate, FmdvConfig, InferError, ValidationReport, Variant};
use av_corpus::Column;
use av_index::{DeltaError, IndexConfig, IndexDelta, PatternIndex, PersistError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// On-disk index file name inside the service data directory.
pub const INDEX_FILE: &str = "index.avix";
/// On-disk catalog file name inside the service data directory.
pub const CATALOG_FILE: &str = "rules.avcat";

/// Service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Index build/profile knobs (τ, per-column pattern caps, threads).
    pub index: IndexConfig,
    /// FMDV knobs. `None` re-scales the coverage floor `m` to the live
    /// corpus size at each inference ([`FmdvConfig::scaled_for_corpus`]).
    pub fmdv: Option<FmdvConfig>,
    /// Worker threads for batch validation (0 → available parallelism).
    pub workers: usize,
    /// Directory holding `index.avix` + `rules.avcat`; `None` disables
    /// persistence.
    pub data_dir: Option<PathBuf>,
}

impl ServiceConfig {
    /// Config persisting under `dir`.
    pub fn with_data_dir(dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            data_dir: Some(dir.into()),
            ..Default::default()
        }
    }
}

/// Errors surfaced by service operations.
#[derive(Debug)]
pub enum ServiceError {
    /// No rule with that name in the catalog.
    UnknownRule(String),
    /// Rule inference failed.
    Infer(InferError),
    /// An ingested delta could not merge (τ mismatch).
    Delta(DeltaError),
    /// Index (de)serialization failed.
    Index(PersistError),
    /// Catalog (de)serialization failed.
    Catalog(CatalogError),
    /// Persistence requested but the service has no data directory.
    NoDataDir,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownRule(n) => write!(f, "unknown rule {n:?}"),
            ServiceError::Infer(e) => write!(f, "inference failed: {e}"),
            ServiceError::Delta(e) => write!(f, "delta merge failed: {e}"),
            ServiceError::Index(e) => write!(f, "index persistence failed: {e}"),
            ServiceError::Catalog(e) => write!(f, "catalog persistence failed: {e}"),
            ServiceError::NoDataDir => write!(f, "service has no data directory configured"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<InferError> for ServiceError {
    fn from(e: InferError) -> Self {
        ServiceError::Infer(e)
    }
}

impl From<DeltaError> for ServiceError {
    fn from(e: DeltaError) -> Self {
        ServiceError::Delta(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Index(e)
    }
}

impl From<CatalogError> for ServiceError {
    fn from(e: CatalogError) -> Self {
        ServiceError::Catalog(e)
    }
}

/// What one ingest call changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Columns profiled in this batch.
    pub columns_added: u64,
    /// Distinct patterns contributed by the batch (pre-merge).
    pub delta_patterns: usize,
    /// Live corpus size after the merge.
    pub total_columns: u64,
    /// Live distinct-pattern count after the merge.
    pub total_patterns: usize,
}

/// One item of a validation batch: a catalog rule name plus the column
/// values to validate against it.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Catalog rule name.
    pub rule: String,
    /// Values of the incoming column.
    pub values: Vec<String>,
}

/// Monotonic operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Corpus columns ingested over the service lifetime.
    pub columns_ingested: u64,
    /// Ingest batches merged.
    pub ingest_batches: u64,
    /// Rules inferred.
    pub rules_inferred: u64,
    /// Columns validated.
    pub validations: u64,
    /// Validations that raised a flag.
    pub flagged: u64,
}

/// The shared, long-running validation service. All methods take `&self`;
/// wrap in an [`Arc`] and hand clones to as many threads as you like.
pub struct ValidationService {
    config: ServiceConfig,
    index: RwLock<Arc<PatternIndex>>,
    ingest_lock: Mutex<()>,
    catalog: RwLock<RuleCatalog>,
    shutdown: AtomicBool,
    columns_ingested: AtomicU64,
    ingest_batches: AtomicU64,
    rules_inferred: AtomicU64,
    validations: AtomicU64,
    flagged: AtomicU64,
}

impl ValidationService {
    /// A fresh service with an empty index and catalog.
    pub fn new(config: ServiceConfig) -> ValidationService {
        let empty = PatternIndex::build(&[], &config.index);
        ValidationService {
            index: RwLock::new(Arc::new(empty)),
            ingest_lock: Mutex::new(()),
            catalog: RwLock::new(RuleCatalog::new()),
            shutdown: AtomicBool::new(false),
            columns_ingested: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            rules_inferred: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            flagged: AtomicU64::new(0),
            config,
        }
    }

    /// Open a service, reloading any persisted index and catalog from the
    /// configured data directory. Missing files mean a cold start — not an
    /// error.
    pub fn open(config: ServiceConfig) -> Result<ValidationService, ServiceError> {
        let service = ValidationService::new(config);
        if let Some(dir) = service.config.data_dir.clone() {
            let index_path = dir.join(INDEX_FILE);
            if index_path.exists() {
                let loaded = PatternIndex::load(&index_path)?;
                service
                    .columns_ingested
                    .store(loaded.num_columns, Ordering::Relaxed);
                *service.index.write().expect("index lock poisoned") = Arc::new(loaded);
            }
            let catalog_path = dir.join(CATALOG_FILE);
            if catalog_path.exists() {
                *service.catalog.write().expect("catalog lock poisoned") =
                    RuleCatalog::load(&catalog_path)?;
            }
        }
        Ok(service)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A wait-free snapshot of the live index. Snapshots are immutable;
    /// later ingests swap in a new index without disturbing holders.
    pub fn snapshot(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.index.read().expect("index lock poisoned"))
    }

    /// Profile `columns` and merge them into the live index (§2.4's
    /// offline scan, applied incrementally). Returns what changed.
    pub fn ingest(&self, columns: &[Column]) -> Result<IngestReport, ServiceError> {
        let refs: Vec<&Column> = columns.iter().collect();
        // Expensive profiling happens with no lock held.
        let delta = IndexDelta::profile(&refs, &self.config.index);
        let delta_patterns = delta.len();

        let _guard = self.ingest_lock.lock().expect("ingest lock poisoned");
        let mut next: PatternIndex = (*self.snapshot()).clone();
        next.merge_delta(delta)?;
        let report = IngestReport {
            columns_added: columns.len() as u64,
            delta_patterns,
            total_columns: next.num_columns,
            total_patterns: next.len(),
        };
        *self.index.write().expect("index lock poisoned") = Arc::new(next);
        self.columns_ingested
            .fetch_add(columns.len() as u64, Ordering::Relaxed);
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    fn fmdv_config(&self, index: &PatternIndex) -> FmdvConfig {
        self.config
            .fmdv
            .clone()
            .unwrap_or_else(|| FmdvConfig::scaled_for_corpus(index.num_columns))
    }

    /// Infer a rule from training values and store it in the catalog under
    /// `name`. `variant: None` uses the automatic fallback chain
    /// (pattern → numeric → dictionary); `Some(v)` forces one FMDV
    /// variant. Returns the stored entry.
    pub fn infer_rule(
        &self,
        name: &str,
        train: &[String],
        variant: Option<Variant>,
    ) -> Result<CatalogEntry, ServiceError> {
        let snapshot = self.snapshot();
        let engine = AutoValidate::new(&snapshot, self.fmdv_config(&snapshot));
        let (rule, label) = match variant {
            None => (engine.infer_auto(train)?, "auto".to_string()),
            Some(v) => (
                AnyRule::Pattern(engine.infer(train, v)?),
                v.label().to_string(),
            ),
        };
        let entry = CatalogEntry {
            name: name.to_string(),
            rule,
            variant: label,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        };
        self.catalog
            .write()
            .expect("catalog lock poisoned")
            .insert(entry.clone());
        self.rules_inferred.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Fetch a catalog entry by name.
    pub fn rule(&self, name: &str) -> Result<CatalogEntry, ServiceError> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownRule(name.to_string()))
    }

    /// Remove a rule from the catalog.
    pub fn delete_rule(&self, name: &str) -> Result<(), ServiceError> {
        self.catalog
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServiceError::UnknownRule(name.to_string()))
    }

    /// Names and descriptions of all cataloged rules.
    pub fn catalog_entries(&self) -> Vec<CatalogEntry> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Validate one column against a named rule (§4's recurring check).
    /// Runs under the catalog read lock (shared, so batch workers still
    /// overlap) instead of cloning the entry — a dictionary rule's whole
    /// vocabulary would otherwise be copied per validation.
    pub fn validate(
        &self,
        rule: &str,
        values: &[String],
    ) -> Result<ValidationReport, ServiceError> {
        let report = {
            let catalog = self.catalog.read().expect("catalog lock poisoned");
            let entry = catalog
                .get(rule)
                .ok_or_else(|| ServiceError::UnknownRule(rule.to_string()))?;
            entry.rule.validate(values)
        };
        self.validations.fetch_add(1, Ordering::Relaxed);
        if report.flagged {
            self.flagged.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Validate a batch of columns concurrently across the worker pool.
    ///
    /// Results come back in input order, and each equals exactly what the
    /// sequential [`ValidationService::validate`] would produce: items are
    /// independent and rules are immutable snapshots, so fan-out changes
    /// only wall-clock time, never reports.
    pub fn validate_batch(
        &self,
        items: &[BatchItem],
    ) -> Vec<Result<ValidationReport, ServiceError>> {
        let workers = if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
        .min(items.len().max(1));

        if workers <= 1 {
            return items
                .iter()
                .map(|item| self.validate(&item.rule, &item.values))
                .collect();
        }

        // Dynamic work-stealing over an atomic cursor: workers drain items
        // at their own pace, then results are restitched in input order.
        let cursor = AtomicU64::new(0);
        let mut indexed: Vec<(usize, Result<ValidationReport, ServiceError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                                if i >= items.len() {
                                    break;
                                }
                                local.push((i, self.validate(&items[i].rule, &items[i].values)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Persist the live index and catalog to the data directory.
    pub fn persist(&self) -> Result<(), ServiceError> {
        let dir = self
            .config
            .data_dir
            .as_ref()
            .ok_or(ServiceError::NoDataDir)?;
        std::fs::create_dir_all(dir).map_err(|e| ServiceError::Catalog(CatalogError::Io(e)))?;
        self.snapshot().save(dir.join(INDEX_FILE))?;
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .save(dir.join(CATALOG_FILE))?;
        Ok(())
    }

    /// Path of the persisted index, when a data directory is configured.
    pub fn index_path(&self) -> Option<PathBuf> {
        self.config.data_dir.as_ref().map(|d| d.join(INDEX_FILE))
    }

    /// Current operation counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            columns_ingested: self.columns_ingested.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            rules_inferred: self.rules_inferred.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            flagged: self.flagged.load(Ordering::Relaxed),
        }
    }

    /// Ask every serve loop to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Helper for tests and examples: make an owned [`Column`] out of a name
/// and values.
pub fn owned_column(name: &str, values: Vec<String>) -> Column {
    Column {
        name: name.to_string(),
        values,
        meta: av_corpus::ColumnMeta::machine("service-ingest", None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, LakeProfile};

    fn lake_columns(seed: u64) -> Vec<Column> {
        let lake = generate_lake(&LakeProfile::tiny(), seed);
        lake.columns().cloned().collect()
    }

    fn date_values(month: u32) -> Vec<String> {
        (1..=28)
            .map(|d| format!("2019-{month:02}-{d:02}"))
            .collect()
    }

    #[test]
    fn ingest_then_infer_then_validate() {
        let service = ValidationService::new(ServiceConfig::default());
        let report = service.ingest(&lake_columns(11)).unwrap();
        assert!(report.total_patterns > 100);
        assert_eq!(report.columns_added, report.total_columns);

        let entry = service.infer_rule("dates", &date_values(3), None).unwrap();
        assert!(entry.rule.conforms("2019-04-01"));
        let ok = service.validate("dates", &date_values(4)).unwrap();
        assert!(!ok.flagged);
        let drifted: Vec<String> = (0..50).map(|i| format!("user-{i}")).collect();
        let bad = service.validate("dates", &drifted).unwrap();
        assert!(bad.flagged);

        let stats = service.stats();
        assert_eq!(stats.validations, 2);
        assert_eq!(stats.flagged, 1);
        assert_eq!(stats.rules_inferred, 1);
    }

    #[test]
    fn incremental_ingest_equals_bulk_ingest() {
        let all = lake_columns(23);
        let (a, b) = all.split_at(all.len() / 2);

        let bulk = ValidationService::new(ServiceConfig::default());
        bulk.ingest(&all).unwrap();
        let incremental = ValidationService::new(ServiceConfig::default());
        incremental.ingest(a).unwrap();
        incremental.ingest(b).unwrap();

        let bi = bulk.snapshot();
        let ii = incremental.snapshot();
        assert_eq!(bi.num_columns, ii.num_columns);
        assert_eq!(bi.len(), ii.len());
        let imap: std::collections::HashMap<u64, av_index::PatternStats> = ii.entries().collect();
        for (k, s) in bi.entries() {
            let t = imap.get(&k).expect("same pattern set");
            assert_eq!(s.fpr.to_bits(), t.fpr.to_bits());
            assert_eq!(s.cov, t.cov);
        }
    }

    #[test]
    fn snapshots_survive_later_ingests() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(3)).unwrap();
        let old = service.snapshot();
        let old_columns = old.num_columns;
        service.ingest(&lake_columns(4)).unwrap();
        assert_eq!(old.num_columns, old_columns, "old snapshot is immutable");
        assert!(service.snapshot().num_columns > old_columns);
    }

    #[test]
    fn unknown_rule_errors() {
        let service = ValidationService::new(ServiceConfig::default());
        assert!(matches!(
            service.validate("nope", &[]),
            Err(ServiceError::UnknownRule(_))
        ));
        assert!(matches!(
            service.delete_rule("nope"),
            Err(ServiceError::UnknownRule(_))
        ));
    }

    #[test]
    fn batch_matches_sequential() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(7)).unwrap();
        service.infer_rule("dates", &date_values(3), None).unwrap();
        let items: Vec<BatchItem> = (0..32)
            .map(|i| BatchItem {
                rule: if i % 5 == 4 {
                    "missing".into()
                } else {
                    "dates".into()
                },
                values: if i % 2 == 0 {
                    date_values(1 + (i as u32 % 12))
                } else {
                    (0..40).map(|j| format!("drift-{i}-{j}")).collect()
                },
            })
            .collect();
        let sequential: Vec<_> = items
            .iter()
            .map(|it| service.validate(&it.rule, &it.values))
            .collect();
        let batched = service.validate_batch(&items);
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            match (b, s) {
                (Ok(br), Ok(sr)) => assert_eq!(br, sr),
                (Err(ServiceError::UnknownRule(x)), Err(ServiceError::UnknownRule(y))) => {
                    assert_eq!(x, y)
                }
                other => panic!("mismatched outcomes: {other:?}"),
            }
        }
    }

    #[test]
    fn persist_and_reopen_restores_rules_and_index() {
        let dir =
            std::env::temp_dir().join(format!("av_service_engine_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ServiceConfig::with_data_dir(&dir);

        let service = ValidationService::new(config.clone());
        service.ingest(&lake_columns(5)).unwrap();
        service.infer_rule("dates", &date_values(6), None).unwrap();
        let before = service.snapshot();
        service.persist().unwrap();

        let reopened = ValidationService::open(config).unwrap();
        let after = reopened.snapshot();
        assert_eq!(after.num_columns, before.num_columns);
        assert_eq!(after.len(), before.len());
        assert!(reopened.rule("dates").is_ok());
        let report = reopened.validate("dates", &date_values(7)).unwrap();
        assert!(!report.flagged);
        std::fs::remove_dir_all(&dir).ok();
    }
}
