//! The long-running validation engine: a shared pattern index behind
//! copy-on-write snapshots, a persistent rule catalog, a concurrent batch
//! validation API, and incremental corpus ingestion.
//!
//! Concurrency model:
//!
//! * **Readers never block.** Every inference/validation takes an
//!   `Arc<PatternIndex>` **epoch** snapshot from the [`ShardedIndex`]
//!   (one `RwLock` read to clone the `Arc`). An epoch is a vector of
//!   shard `Arc`s published atomically, so a snapshot taken during an
//!   ingest sees either the whole pre-ingest index or the whole
//!   post-ingest index — never a torn mixture.
//! * **Ingestion is copy-on-write at shard granularity.** New columns are
//!   profiled into an [`IndexDelta`] with no lock held (the expensive
//!   part); the delta then splits into per-shard sub-deltas and only the
//!   touched shards are cloned and republished — O(delta), not O(index).
//! * **Disjoint ingests commit concurrently.** Per-shard merge locks
//!   serialize only ingests whose deltas overlap; the final epoch swap is
//!   a few pointer copies under one brief write lock.

use crate::catalog::{self, CatalogEntry, CatalogError, RuleCatalog};
use crate::durable::{
    self, CheckpointBase, DurabilityConfig, DurabilitySnapshot, DurableState, WalRecord,
};
use crate::lockorder;
use crate::telemetry::{FailureExemplar, ServiceTelemetry, TelemetryConfig};
use av_baselines::baseline_by_name;
use av_core::{
    AnyRule, AutoValidate, CheckScratch, Explanation, FmdvConfig, InferError, RuleSet,
    ValidationReport, ValidationSession, Validator, Variant,
};
use av_corpus::Column;
use av_durable::{DurableError, OsStorage, Storage};
use av_index::{DeltaError, IndexConfig, IndexDelta, PatternIndex, PersistError, ShardedIndex};
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// On-disk index file name inside the service data directory.
pub const INDEX_FILE: &str = "index.avix";
/// On-disk catalog file name inside the service data directory.
pub const CATALOG_FILE: &str = "rules.avcat";

/// Default cap on one JSONL request line read from a TCP client (1 MiB).
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default admission cap on concurrently open TCP connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 10_000;

/// Default idle timeout for a TCP connection, in milliseconds (1 min).
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 60_000;

/// Default write-stall deadline, in milliseconds: how long a connection
/// may make zero progress draining buffered response bytes before it is
/// shed (10 s, the old aggregate write budget).
pub const DEFAULT_STALL_DEADLINE_MS: u64 = 10_000;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Index build/profile knobs (τ, per-column pattern caps, threads,
    /// shard count).
    pub index: IndexConfig,
    /// FMDV knobs. `None` re-scales the coverage floor `m` to the live
    /// corpus size at each inference ([`FmdvConfig::scaled_for_corpus`]).
    pub fmdv: Option<FmdvConfig>,
    /// Worker threads for batch validation (0 → available parallelism).
    pub workers: usize,
    /// Directory holding `index.avix` + `rules.avcat`; `None` disables
    /// persistence.
    pub data_dir: Option<PathBuf>,
    /// Largest JSONL request line a TCP connection may send, in bytes
    /// (default [`DEFAULT_MAX_REQUEST_BYTES`]). A client that streams more
    /// without a newline gets a protocol error and is disconnected instead
    /// of growing the server's line buffer without bound.
    pub max_request_bytes: usize,
    /// Admission cap on concurrently open TCP connections (default
    /// [`DEFAULT_MAX_CONNECTIONS`], 0 → unlimited). A connection accepted
    /// over the cap receives one JSONL `overloaded` error frame and is
    /// closed immediately; see `ServiceStats::connections_rejected`.
    pub max_connections: usize,
    /// Close a TCP connection with no request activity for this many
    /// milliseconds (default [`DEFAULT_IDLE_TIMEOUT_MS`], 0 → never).
    /// Slow-loris peers that trickle a frame without finishing it are
    /// bounded by the same clock; streaming `watch` connections are
    /// exempt while their stream is live.
    pub idle_timeout_ms: u64,
    /// Shed a TCP connection whose buffered response bytes make zero
    /// drain progress for this many milliseconds (default
    /// [`DEFAULT_STALL_DEADLINE_MS`], 0 → never). Replaces the old 10 s
    /// aggregate per-response write budget with a per-stall deadline.
    pub stall_deadline_ms: u64,
    /// Drift-telemetry knobs: sliding-window bucket width and the windowed
    /// flag-rate at which a rule's snapshot reports an alert.
    pub telemetry: TelemetryConfig,
    /// Crash-safe durability knobs (WAL + incremental checkpoints).
    /// Effective only with a data directory configured.
    pub durability: DurabilityConfig,
    /// The storage layer all durability I/O goes through. Production code
    /// keeps the default [`OsStorage`]; fault-injection tests swap in
    /// [`av_durable::MemStorage`] to crash the service at every I/O point.
    pub storage: Arc<dyn Storage>,
    /// Pin the `created` timestamp of inferred rules (seconds since the
    /// Unix epoch) instead of reading the wall clock — recovery harnesses
    /// use this so a replayed rule is byte-identical to the original.
    pub rule_clock_unix: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            index: IndexConfig::default(),
            fmdv: None,
            workers: 0,
            data_dir: None,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            stall_deadline_ms: DEFAULT_STALL_DEADLINE_MS,
            telemetry: TelemetryConfig::default(),
            durability: DurabilityConfig::default(),
            storage: Arc::new(OsStorage),
            rule_clock_unix: None,
        }
    }
}

impl ServiceConfig {
    /// Config persisting under `dir`.
    pub fn with_data_dir(dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            data_dir: Some(dir.into()),
            ..Default::default()
        }
    }

    /// Config persisting under `dir` with crash-safe durability enabled:
    /// every mutating op is write-ahead logged and checkpoints are
    /// incremental.
    pub fn durable(dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            data_dir: Some(dir.into()),
            durability: DurabilityConfig {
                enabled: true,
                ..DurabilityConfig::default()
            },
            ..Default::default()
        }
    }
}

/// Errors surfaced by service operations.
#[derive(Debug)]
pub enum ServiceError {
    /// No rule with that name in the catalog.
    UnknownRule(String),
    /// Rule inference failed.
    Infer(InferError),
    /// An ingested delta could not merge (τ mismatch).
    Delta(DeltaError),
    /// Index (de)serialization failed.
    Index(PersistError),
    /// Catalog (de)serialization failed.
    Catalog(CatalogError),
    /// Persistence requested but the service has no data directory.
    NoDataDir,
    /// No baseline method with that name ([`av_baselines::baseline_by_name`]).
    UnknownMethod(String),
    /// The baseline method declined to produce a rule for this column.
    MethodDeclined(String),
    /// A baseline rule may not take a name held by a catalog rule.
    NameTaken(String),
    /// Durability I/O failed (WAL append, checkpoint, or recovery). A
    /// poisoned WAL rejects mutating ops until a checkpoint rotates it.
    Durable(DurableError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownRule(n) => write!(f, "unknown rule {n:?}"),
            ServiceError::Infer(e) => write!(f, "inference failed: {e}"),
            ServiceError::Delta(e) => write!(f, "delta merge failed: {e}"),
            ServiceError::Index(e) => write!(f, "index persistence failed: {e}"),
            ServiceError::Catalog(e) => write!(f, "catalog persistence failed: {e}"),
            ServiceError::NoDataDir => write!(f, "service has no data directory configured"),
            ServiceError::UnknownMethod(m) => write!(f, "unknown baseline method {m:?}"),
            ServiceError::MethodDeclined(m) => {
                write!(f, "baseline {m:?} declined to infer a rule for this column")
            }
            ServiceError::NameTaken(n) => {
                write!(f, "rule name {n:?} is already held by a catalog rule")
            }
            ServiceError::Durable(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<InferError> for ServiceError {
    fn from(e: InferError) -> Self {
        ServiceError::Infer(e)
    }
}

impl From<DeltaError> for ServiceError {
    fn from(e: DeltaError) -> Self {
        ServiceError::Delta(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Index(e)
    }
}

impl From<CatalogError> for ServiceError {
    fn from(e: CatalogError) -> Self {
        ServiceError::Catalog(e)
    }
}

impl From<DurableError> for ServiceError {
    fn from(e: DurableError) -> Self {
        ServiceError::Durable(e)
    }
}

/// What one ingest call changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Columns profiled in this batch.
    pub columns_added: u64,
    /// Distinct patterns contributed by the batch (pre-merge).
    pub delta_patterns: usize,
    /// Index shards the delta touched — only these were cloned and
    /// republished; every other shard is shared with the previous epoch.
    pub touched_shards: usize,
    /// Live corpus size after the merge.
    pub total_columns: u64,
    /// Live distinct-pattern count after the merge.
    pub total_patterns: usize,
}

/// Why a value failed (or passed) a named rule, plus a repair hint — the
/// payload behind the protocol's `explain` op.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainOutcome {
    /// Did the value conform? (`true` means every other field is empty.)
    pub conforms: bool,
    /// The rule's self-description.
    pub describe: String,
    /// Positional failure detail from the rule's [`Validator::explain`]
    /// (None for conforming values, or rules with no detail to give).
    pub explanation: Option<Explanation>,
    /// The nearest *other* catalog rule the value does conform to, ranked
    /// by token-program edit distance from the failing rule — the "did the
    /// feed swap columns?" hint. `(rule name, distance)`.
    pub suggestion: Option<(String, usize)>,
}

/// One item of a validation batch: a rule name plus the column values to
/// validate against it. Fully borrowed — a protocol frame's parsed strings
/// (or any other buffer) are referenced, never copied per item.
#[derive(Debug, Clone)]
pub struct BatchItem<'a> {
    /// Catalog (or baseline) rule name.
    pub rule: &'a str,
    /// Values of the incoming column.
    pub values: Vec<&'a str>,
}

/// One value classified against the whole rule catalog in a single scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifyOutcome {
    /// Every rule the value conforms to, ranked most-specific-first
    /// (dictionaries, then patterns by estimated FPR, then numeric ranges,
    /// then session baselines; ties break on name).
    pub matches: Vec<String>,
    /// The top-ranked match, when any rule accepted the value.
    pub best: Option<String>,
}

/// Monotonic operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Corpus columns ingested over the service lifetime.
    pub columns_ingested: u64,
    /// Ingest batches merged.
    pub ingest_batches: u64,
    /// Rules inferred.
    pub rules_inferred: u64,
    /// Columns validated.
    pub validations: u64,
    /// Validations that raised a flag.
    pub flagged: u64,
    /// Values classified against the whole catalog.
    pub classifications: u64,
    /// TCP connection threads that ended with an I/O error or panic
    /// (oversized/undecodable frames, write timeouts to stalled clients,
    /// resets). The serve loop joins every reaped worker, so these are
    /// counted instead of vanishing with the thread handle.
    pub connection_errors: u64,
    /// Connections turned away at the door by admission control
    /// (`ServiceConfig::max_connections`): each got one `overloaded`
    /// error frame and was closed without being registered.
    pub connections_rejected: u64,
    /// Parsed request frames answered with an `overloaded` error because
    /// the run queue was full when they arrived.
    pub requests_shed: u64,
    /// Connections shed for making zero write-drain progress past
    /// `ServiceConfig::stall_deadline_ms` (peer stopped reading).
    pub stalls_shed: u64,
}

/// The shared, long-running validation service. All methods take `&self`;
/// wrap in an [`Arc`] and hand clones to as many threads as you like.
pub struct ValidationService {
    config: ServiceConfig,
    index: ShardedIndex,
    catalog: RwLock<RuleCatalog>,
    /// Baseline rules served behind `dyn Validator`. Session-scoped: the
    /// underlying predicates are closures and have no wire form, so they
    /// are not persisted with the catalog.
    baselines: RwLock<HashMap<String, Arc<dyn Validator>>>,
    /// The catalog automaton: every rule (catalog + session baselines)
    /// folded into one [`RuleSet`] so `classify` scans a value once
    /// instead of running N rules. Kept in sync by `infer_rule`,
    /// `infer_baseline` and `delete_rule`; the `Mutex` is always the
    /// **innermost** lock (taken after, never around, the catalog or
    /// baselines locks).
    classifier: Mutex<RuleSet>,
    /// Crash-safe durability state (WAL, in-flight ingest registry, and
    /// checkpoint base); `None` outside durable mode. The WAL mutex inside
    /// is the outermost lock of every durable mutating path.
    durable: Option<DurableState>,
    telemetry: ServiceTelemetry,
    shutdown: AtomicBool,
    /// Condvar paired with the `shutdown` flag so sleepers
    /// ([`ValidationService::wait_shutdown_timeout`]) wake the instant a
    /// shutdown lands instead of polling it at some cadence.
    shutdown_signal: (Mutex<()>, Condvar),
    /// Wake callbacks registered by live serve loops (each typically a
    /// poller `notify`). Fired once, then drained, on `request_shutdown`.
    shutdown_wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    columns_ingested: AtomicU64,
    ingest_batches: AtomicU64,
    rules_inferred: AtomicU64,
    validations: AtomicU64,
    flagged: AtomicU64,
    classifications: AtomicU64,
    connection_errors: AtomicU64,
    connections_rejected: AtomicU64,
    requests_shed: AtomicU64,
    stalls_shed: AtomicU64,
}

impl ValidationService {
    /// A fresh service with an empty index and catalog.
    pub fn new(config: ServiceConfig) -> ValidationService {
        let empty = PatternIndex::build(&[], &config.index);
        ValidationService {
            index: ShardedIndex::new(empty),
            catalog: RwLock::new(RuleCatalog::new()),
            baselines: RwLock::new(HashMap::new()),
            classifier: Mutex::new(RuleSet::new()),
            durable: None,
            telemetry: ServiceTelemetry::new(config.telemetry.clone()),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(()), Condvar::new()),
            shutdown_wakers: Mutex::new(Vec::new()),
            columns_ingested: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            rules_inferred: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            flagged: AtomicU64::new(0),
            classifications: AtomicU64::new(0),
            connection_errors: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            stalls_shed: AtomicU64::new(0),
            config,
        }
    }

    /// Open a service, reloading any persisted index and catalog from the
    /// configured data directory. Missing files mean a cold start — not an
    /// error. A v3 (single-shard) index image is resharded to the
    /// configured shard count on install.
    ///
    /// In durable mode this is crash **recovery**: the newest checkpoint
    /// manifest that verifies is loaded (corrupt shard files are
    /// quarantined, not fatal), then the write-ahead log is replayed above
    /// the checkpoint's watermark — O(records since the last checkpoint),
    /// never a corpus rebuild — so the recovered state equals a consistent
    /// prefix of the acknowledged operation history.
    pub fn open(config: ServiceConfig) -> Result<ValidationService, ServiceError> {
        if config.durability.enabled && config.data_dir.is_some() {
            return ValidationService::open_durable(config);
        }
        let service = ValidationService::new(config);
        if let Some(dir) = service.config.data_dir.clone() {
            let storage = Arc::clone(&service.config.storage);
            let index_path = dir.join(INDEX_FILE);
            if storage.exists(&index_path) {
                let loaded = PatternIndex::load_with(storage.as_ref(), &index_path)?;
                service
                    .columns_ingested
                    .store(loaded.num_columns, Ordering::Relaxed);
                service.index.install(loaded);
            }
            let catalog_path = dir.join(CATALOG_FILE);
            if storage.exists(&catalog_path) {
                let loaded = RuleCatalog::load_with(storage.as_ref(), &catalog_path)?;
                {
                    let (_classifier_rank, mut classifier) = (
                        lockorder::rank_guard(lockorder::CLASSIFIER),
                        service.classifier.lock().expect("classifier poisoned"),
                    );
                    for entry in loaded.iter() {
                        classifier.insert(&entry.name, entry.rule.clone());
                    }
                }
                *service.catalog.write().expect("catalog lock poisoned") = loaded;
            }
        }
        Ok(service)
    }

    /// The durable-mode open path: recover checkpoint + WAL into a fresh
    /// service and arm the durability state.
    fn open_durable(config: ServiceConfig) -> Result<ValidationService, ServiceError> {
        let dir = config.data_dir.clone().expect("checked by open");
        let storage = Arc::clone(&config.storage);
        let durability = config.durability.clone();
        let mut service = ValidationService::new(config);

        let rec = durable::recover(&storage, &dir, &durability)?;
        let image_from_checkpoint = rec.image_from_checkpoint;
        if let Some(image) = rec.image {
            service.index.install(image);
        }
        // The just-installed epoch is the next checkpoint's reuse base —
        // but only if it still encodes the manifest's shard files (install
        // reshards images whose shard count differs from the config's,
        // which invalidates the per-shard file mapping).
        let base_index = if image_from_checkpoint {
            let snap = service.index.snapshot();
            (snap.shard_count() == rec.base_files.len()).then_some(snap)
        } else {
            None
        };

        // Replay: apply each recovered record exactly as the live op
        // would. Deltas that no longer merge (τ changed between runs)
        // are skipped and counted, matching what the live op would have
        // been refused.
        let mut catalog = rec.catalog;
        let mut skipped = rec.skipped_records;
        for record in rec.records {
            match record {
                WalRecord::Delta(delta) => {
                    if service.index.merge_delta(delta).is_err() {
                        skipped += 1;
                    }
                }
                WalRecord::Infer(entry) => {
                    catalog.insert(entry);
                }
                WalRecord::Delete(name) => {
                    catalog.remove(&name);
                }
            }
        }
        service
            .columns_ingested
            .store(service.index.snapshot().num_columns, Ordering::Relaxed);
        {
            let (_classifier_rank, mut classifier) = (
                lockorder::rank_guard(lockorder::CLASSIFIER),
                service.classifier.lock().expect("classifier poisoned"),
            );
            for entry in catalog.iter() {
                classifier.insert(&entry.name, entry.rule.clone());
            }
        }
        *service.catalog.write().expect("catalog lock poisoned") = catalog;

        service.durable = Some(DurableState {
            storage,
            dir,
            cfg: durability,
            wal: Mutex::new(rec.wal),
            in_flight: Mutex::new(BTreeSet::new()),
            in_flight_cv: Condvar::new(),
            ckpt: Mutex::new(CheckpointBase {
                generation: rec.base_generation,
                index: base_index,
                files: rec.base_files,
                retained: rec.retained,
            }),
            records_since_checkpoint: AtomicU64::new(rec.replayed_records),
            replayed_records: AtomicU64::new(rec.replayed_records),
            truncated_tail_bytes: AtomicU64::new(rec.truncated_tail_bytes),
            quarantined_files: AtomicU64::new(rec.quarantined_files),
            skipped_records: AtomicU64::new(skipped),
            checkpoints_completed: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            last_generation: AtomicU64::new(rec.base_generation),
        });
        Ok(service)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A wait-free snapshot of the live index: the current epoch of shard
    /// `Arc`s. Snapshots are immutable and internally consistent — an
    /// ingest committing concurrently swaps in a whole new epoch, so a
    /// holder sees either the old or the new index, never a torn one.
    pub fn snapshot(&self) -> Arc<PatternIndex> {
        self.index.snapshot()
    }

    /// Profile `columns` and merge them into the live index (§2.4's
    /// offline scan, applied incrementally). Returns what changed.
    ///
    /// Profiling streams `(fingerprint, support, len)` triples straight
    /// into per-worker accumulators — columns are pulled off a dynamic
    /// work queue sized by `config.index.num_threads` / `queue_batch`, so
    /// one giant column cannot strand the other workers — and no pattern
    /// is materialized unless `keep_patterns` asks for display strings.
    ///
    /// The merge republishes **only the shards the delta touches**
    /// (O(delta), not O(index)); concurrent ingests whose deltas land on
    /// disjoint shards commit in parallel. The resulting index is
    /// bit-identical for every schedule.
    pub fn ingest(&self, columns: &[Column]) -> Result<IngestReport, ServiceError> {
        let refs: Vec<&Column> = columns.iter().collect();
        // Expensive profiling happens with no lock held.
        let delta = IndexDelta::profile(&refs, &self.config.index);
        // Durable mode logs the delta before merging it: the WAL append is
        // the durability point, the merge itself stays outside the WAL
        // lock (deltas commute, so checkpoint's in-flight drain is all the
        // ordering the merge needs).
        let logged = match &self.durable {
            Some(d) => {
                let payload = durable::encode_delta(&delta);
                let lsn = {
                    let (_wal_rank, mut wal) = (
                        lockorder::rank_guard(lockorder::WAL),
                        d.wal.lock().expect("wal lock poisoned"),
                    );
                    let lsn = wal.append(&payload)?;
                    d.in_flight
                        .lock()
                        .expect("in-flight lock poisoned")
                        .insert(lsn);
                    lsn
                };
                Some((d, lsn))
            }
            None => None,
        };
        let merged = self.index.merge_delta(delta);
        if let Some((d, lsn)) = logged {
            let (_in_flight_rank, mut in_flight) = (
                lockorder::rank_guard(lockorder::IN_FLIGHT),
                d.in_flight.lock().expect("in-flight lock poisoned"),
            );
            in_flight.remove(&lsn);
            drop(in_flight);
            d.in_flight_cv.notify_all();
        }
        let merge = merged?;
        let report = IngestReport {
            columns_added: columns.len() as u64,
            delta_patterns: merge.delta_patterns,
            touched_shards: merge.touched_shards,
            total_columns: merge.num_columns,
            total_patterns: merge.total_patterns,
        };
        self.columns_ingested
            .fetch_add(columns.len() as u64, Ordering::Relaxed);
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.note_durable_record();
        Ok(report)
    }

    fn fmdv_config(&self, index: &PatternIndex) -> FmdvConfig {
        self.config
            .fmdv
            .clone()
            .unwrap_or_else(|| FmdvConfig::scaled_for_corpus(index.num_columns))
    }

    /// Infer a rule from training values and store it in the catalog under
    /// `name`. `variant: None` uses the automatic fallback chain
    /// (pattern → numeric → dictionary); `Some(v)` forces one FMDV
    /// variant. Returns the stored entry.
    ///
    /// Rule names are one namespace: cataloging a name also evicts any
    /// session-scoped baseline rule under it (the catalog resolves first,
    /// so a left-behind baseline would be unreachable until `delete_rule`
    /// resurrected it unannounced).
    pub fn infer_rule<S: AsRef<str>>(
        &self,
        name: &str,
        train: &[S],
        variant: Option<Variant>,
    ) -> Result<CatalogEntry, ServiceError> {
        let snapshot = self.snapshot();
        let engine = AutoValidate::new(&snapshot, self.fmdv_config(&snapshot));
        let (rule, label) = match variant {
            None => (engine.infer_auto(train)?, "auto".to_string()),
            Some(v) => (
                AnyRule::Pattern(engine.infer(train, v)?),
                v.label().to_string(),
            ),
        };
        let entry = CatalogEntry {
            name: name.to_string(),
            rule,
            variant: label,
            created_unix: self.config.rule_clock_unix.unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0)
            }),
        };
        // Durable mode: log-then-apply under the WAL lock, so a checkpoint
        // can never truncate a logged record whose catalog effect is not
        // yet in the snapshot it wrote.
        if let Some(d) = &self.durable {
            let payload = durable::encode_infer(&catalog::entry_line(&entry));
            let (_wal_rank, mut wal) = (
                lockorder::rank_guard(lockorder::WAL),
                d.wal.lock().expect("wal lock poisoned"),
            );
            wal.append(&payload)?;
            self.catalog
                .write()
                .expect("catalog lock poisoned")
                .insert(entry.clone());
        } else {
            self.catalog
                .write()
                .expect("catalog lock poisoned")
                .insert(entry.clone());
        }
        self.baselines
            .write()
            .expect("baselines lock poisoned")
            .remove(name);
        // Insert replaces: if a baseline held the name its residual check
        // is evicted from the automaton along with the baseline itself.
        self.classifier
            .lock()
            .expect("classifier poisoned")
            .insert(name, entry.rule.clone());
        self.rules_inferred.fetch_add(1, Ordering::Relaxed);
        self.note_durable_record();
        Ok(entry)
    }

    /// Fetch a catalog entry by name.
    pub fn rule(&self, name: &str) -> Result<CatalogEntry, ServiceError> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownRule(name.to_string()))
    }

    /// Remove a rule (catalog first, then session-scoped baselines). The
    /// rule's telemetry goes with it, so a later rule under the same name
    /// starts from a clean slate.
    pub fn delete_rule(&self, name: &str) -> Result<(), ServiceError> {
        // Cataloged rules are the durable ones; session-scoped baselines
        // below are in-memory only and never logged. Log-then-apply under
        // the WAL lock (see `infer_rule`), but only once the entry is known
        // to exist — a delete of an unknown name must not consume an LSN.
        let removed_cataloged = if let Some(d) = &self.durable {
            let (_wal_rank, mut wal) = (
                lockorder::rank_guard(lockorder::WAL),
                d.wal.lock().expect("wal lock poisoned"),
            );
            let (_catalog_rank, mut catalog) = (
                lockorder::rank_guard(lockorder::CATALOG),
                self.catalog.write().expect("catalog lock poisoned"),
            );
            if catalog.get(name).is_some() {
                wal.append(&durable::encode_delete(name))?;
                catalog.remove(name);
                true
            } else {
                false
            }
        } else {
            self.catalog
                .write()
                .expect("catalog lock poisoned")
                .remove(name)
                .is_some()
        };
        if removed_cataloged {
            self.telemetry.forget_rule(name);
            self.classifier
                .lock()
                .expect("classifier poisoned")
                .remove(name);
            self.note_durable_record();
            return Ok(());
        }
        self.baselines
            .write()
            .expect("baselines lock poisoned")
            .remove(name)
            .map(|_| {
                self.telemetry.forget_rule(name);
                self.classifier
                    .lock()
                    .expect("classifier poisoned")
                    .remove(name);
            })
            .ok_or_else(|| ServiceError::UnknownRule(name.to_string()))
    }

    /// Names and descriptions of all cataloged rules.
    pub fn catalog_entries(&self) -> Vec<CatalogEntry> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Run `f` against the named rule as a `&dyn Validator` — catalog rules
    /// first, then session-scoped baseline rules. Catalog lookups run under
    /// the shared read lock (batch workers still overlap) instead of
    /// cloning the entry — a dictionary rule's whole vocabulary would
    /// otherwise be copied per validation.
    fn with_validator<R>(
        &self,
        name: &str,
        f: impl FnOnce(&dyn Validator) -> R,
    ) -> Result<R, ServiceError> {
        {
            let (_catalog_rank, catalog) = (
                lockorder::rank_guard(lockorder::CATALOG),
                self.catalog.read().expect("catalog lock poisoned"),
            );
            if let Some(entry) = catalog.get(name) {
                return Ok(f(&entry.rule));
            }
        }
        let baseline = {
            let (_baselines_rank, baselines) = (
                lockorder::rank_guard(lockorder::BASELINES),
                self.baselines.read().expect("baselines lock poisoned"),
            );
            baselines.get(name).cloned()
        };
        match baseline {
            Some(v) => Ok(f(v.as_ref())),
            None => Err(ServiceError::UnknownRule(name.to_string())),
        }
    }

    /// Infer a rule with a named baseline method (TFDV, Grok, PWheel, …)
    /// and serve it under `name` behind `dyn Validator`, next to the FMDV
    /// catalog rules — enabling live A/B comparisons over the protocol.
    /// Baseline rules are session-scoped (closures have no wire form) and
    /// are not persisted.
    ///
    /// Rule names are one namespace: a name already held by a catalog rule
    /// is rejected ([`ServiceError::NameTaken`]) — lookups resolve the
    /// catalog first, so accepting it would create an unreachable shadowed
    /// rule that silently resurfaced after `delete_rule`.
    pub fn infer_baseline<S: AsRef<str>>(
        &self,
        name: &str,
        method: &str,
        train: &[S],
    ) -> Result<String, ServiceError> {
        let validator =
            baseline_by_name(method).ok_or_else(|| ServiceError::UnknownMethod(method.into()))?;
        let refs: Vec<&str> = train.iter().map(|v| v.as_ref()).collect();
        let rule = validator
            .infer(&refs)
            .ok_or_else(|| ServiceError::MethodDeclined(method.into()))?;
        let description = rule.description.clone();
        // Lock order: catalog read inside baselines write is safe — no path
        // takes these locks in the opposite nesting.
        let (_baselines_rank, mut baselines) = (
            lockorder::rank_guard(lockorder::BASELINES),
            self.baselines.write().expect("baselines lock poisoned"),
        );
        if self
            .catalog
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .is_some()
        {
            return Err(ServiceError::NameTaken(name.to_string()));
        }
        let validator: Arc<dyn Validator> = Arc::new(rule);
        baselines.insert(name.to_string(), Arc::clone(&validator));
        drop(baselines);
        // Baselines are opaque `dyn Validator`s — they join the catalog
        // automaton as residual checks so `classify` stays total.
        self.classifier
            .lock()
            .expect("classifier poisoned")
            .insert_check(name, Box::new(move |v| validator.check(v).is_conform()));
        self.rules_inferred.fetch_add(1, Ordering::Relaxed);
        Ok(description)
    }

    /// Names and descriptions of the session-scoped baseline rules.
    pub fn baseline_rules(&self) -> Vec<(String, String)> {
        let (_baselines_rank, baselines) = (
            lockorder::rank_guard(lockorder::BASELINES),
            self.baselines.read().expect("baselines lock poisoned"),
        );
        let mut out: Vec<(String, String)> = baselines
            .iter()
            .map(|(name, v)| (name.clone(), v.describe()))
            .collect();
        out.sort();
        out
    }

    /// Validate one column against a named rule (§4's recurring check).
    /// Dispatches through `dyn Validator` as a streaming session, so FMDV
    /// rules and baseline rules are indistinguishable here — and no value
    /// is copied.
    pub fn validate<S: AsRef<str>>(
        &self,
        rule: &str,
        values: &[S],
    ) -> Result<ValidationReport, ServiceError> {
        self.validate_with_scratch(rule, values, &mut CheckScratch::new())
    }

    /// [`ValidationService::validate`] with caller-owned session scratch:
    /// the batch path hands each worker one scratch reused across all its
    /// items, so per-value matching state is never rebuilt.
    fn validate_with_scratch<S: AsRef<str>>(
        &self,
        rule: &str,
        values: &[S],
        scratch: &mut CheckScratch,
    ) -> Result<ValidationReport, ServiceError> {
        let (report, exemplar) = self.with_validator(rule, |validator| {
            let mut session = ValidationSession::with_scratch(validator, std::mem::take(scratch));
            for v in values {
                session.push(v.as_ref());
            }
            let (report, returned) = session.finish_with_scratch();
            *scratch = returned;
            // Cold path: only a flagged column pays for the exemplar
            // re-scan and the explanation's allocations.
            let exemplar = if report.flagged {
                values
                    .iter()
                    .map(AsRef::as_ref)
                    .find(|v| !validator.check(v).is_conform())
                    .map(|v| FailureExemplar::capture(validator, v))
            } else {
                None
            };
            (report, exemplar)
        })?;
        let slot = self.telemetry.rule(rule);
        slot.record(
            self.telemetry.epoch(),
            report.checked as u64,
            report.nonconforming as u64,
            report.flagged,
        );
        if let Some(exemplar) = exemplar {
            slot.push_exemplar(exemplar);
        }
        self.validations.fetch_add(1, Ordering::Relaxed);
        if report.flagged {
            self.flagged.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Explain one value against a named rule: conformance, positional
    /// failure detail, and — for catalog rules — the nearest *other*
    /// catalog rule the value conforms to (ranked by token-program edit
    /// distance, so a column swap points at the swapped-in column's rule).
    /// Session-scoped baseline rules explain through their `dyn Validator`
    /// vtable but get no suggestion: they have no compiled program to
    /// measure distance from.
    ///
    /// The suggestion shortlist comes from the catalog automaton: one
    /// `classify` scan yields exactly the conforming rules, so only those
    /// are distance-ranked — O(matches), not O(catalog) — with the same
    /// winner the full loop would pick.
    pub fn explain(&self, rule: &str, value: &str) -> Result<ExplainOutcome, ServiceError> {
        {
            let (_catalog_rank, catalog) = (
                lockorder::rank_guard(lockorder::CATALOG),
                self.catalog.read().expect("catalog lock poisoned"),
            );
            if let Some(entry) = catalog.get(rule) {
                let conforms = entry.rule.conforms(value);
                let (explanation, suggestion) = if conforms {
                    (None, None)
                } else {
                    (
                        Validator::explain(&entry.rule, value),
                        self.classifier
                            .lock()
                            .expect("classifier poisoned")
                            .nearest_conforming(value, &entry.rule, rule),
                    )
                };
                return Ok(ExplainOutcome {
                    conforms,
                    describe: entry.rule.describe(),
                    explanation,
                    suggestion,
                });
            }
        }
        let baseline = {
            let (_baselines_rank, baselines) = (
                lockorder::rank_guard(lockorder::BASELINES),
                self.baselines.read().expect("baselines lock poisoned"),
            );
            baselines.get(rule).cloned()
        };
        match baseline {
            Some(v) => {
                let conforms = v.check(value).is_conform();
                Ok(ExplainOutcome {
                    conforms,
                    describe: v.describe(),
                    explanation: if conforms { None } else { v.explain(value) },
                    suggestion: None,
                })
            }
            None => Err(ServiceError::UnknownRule(rule.to_string())),
        }
    }

    /// A/B-compare two named rules (either side may be an FMDV catalog rule
    /// or a baseline) on the same column. Both reports count toward the
    /// validation stats, exactly as two sequential `validate` calls would.
    pub fn compare<S: AsRef<str>>(
        &self,
        left: &str,
        right: &str,
        values: &[S],
    ) -> Result<(ValidationReport, ValidationReport), ServiceError> {
        let a = self.validate(left, values)?;
        let b = self.validate(right, values)?;
        Ok((a, b))
    }

    /// Classify one value against the **whole** rule catalog (catalog
    /// rules and session baselines alike) in a single scan of the value,
    /// returning every conforming rule ranked most-specific-first.
    pub fn classify_value(&self, value: &str) -> ClassifyOutcome {
        let (_classifier_rank, mut classifier) = (
            lockorder::rank_guard(lockorder::CLASSIFIER),
            self.classifier.lock().expect("classifier poisoned"),
        );
        let outcome = Self::classify_locked(&mut classifier, value);
        drop(classifier);
        self.classifications.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// Classify a batch of values, holding the automaton lock once for the
    /// whole batch so the lazy DFA's cache is hit back-to-back. Results
    /// come back in input order.
    pub fn classify_batch<S: AsRef<str>>(&self, values: &[S]) -> Vec<ClassifyOutcome> {
        let (_classifier_rank, mut classifier) = (
            lockorder::rank_guard(lockorder::CLASSIFIER),
            self.classifier.lock().expect("classifier poisoned"),
        );
        let out = values
            .iter()
            .map(|v| Self::classify_locked(&mut classifier, v.as_ref()))
            .collect();
        drop(classifier);
        self.classifications
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        out
    }

    fn classify_locked(classifier: &mut RuleSet, value: &str) -> ClassifyOutcome {
        let matches = classifier.classify(value);
        let best = matches.first().cloned();
        ClassifyOutcome { matches, best }
    }

    /// Update generation of the catalog automaton (bumped per rule
    /// insert/remove) — the cheap "did the rule set change?" signal,
    /// mirroring [`ValidationService::index_generation`].
    pub fn classifier_generation(&self) -> u64 {
        self.classifier
            .lock()
            .expect("classifier poisoned")
            .generation()
    }

    /// Validate a batch of columns concurrently across the worker pool.
    ///
    /// Results come back in input order, and each equals exactly what the
    /// sequential [`ValidationService::validate`] would produce: items are
    /// independent and rules are immutable snapshots, so fan-out changes
    /// only wall-clock time, never reports.
    pub fn validate_batch(
        &self,
        items: &[BatchItem<'_>],
    ) -> Vec<Result<ValidationReport, ServiceError>> {
        let workers = if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
        .min(items.len().max(1));

        if workers <= 1 {
            let mut scratch = CheckScratch::new();
            return items
                .iter()
                .map(|item| self.validate_with_scratch(item.rule, &item.values, &mut scratch))
                .collect();
        }

        // Dynamic work-stealing over an atomic cursor: workers drain items
        // at their own pace, then results are restitched in input order.
        // Each worker owns one session scratch for its whole run — the
        // compiled matcher's stack and memo grow to steady state once per
        // worker instead of once per value.
        let cursor = AtomicU64::new(0);
        let mut indexed: Vec<(usize, Result<ValidationReport, ServiceError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            let mut scratch = CheckScratch::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                                if i >= items.len() {
                                    break;
                                }
                                local.push((
                                    i,
                                    self.validate_with_scratch(
                                        items[i].rule,
                                        &items[i].values,
                                        &mut scratch,
                                    ),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Persist the live index and catalog to the data directory. In
    /// durable mode this writes an incremental checkpoint (only shards
    /// touched since the previous checkpoint are rewritten) and truncates
    /// the WAL behind it; otherwise it writes the full `index.avix` /
    /// `rules.avcat` pair atomically.
    pub fn persist(&self) -> Result<(), ServiceError> {
        if let Some(d) = &self.durable {
            self.checkpoint_durable(d).inspect_err(|_| {
                d.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            })?;
            return Ok(());
        }
        let dir = self
            .config
            .data_dir
            .as_ref()
            .ok_or(ServiceError::NoDataDir)?;
        let storage = Arc::clone(&self.config.storage);
        storage
            .create_dir_all(dir)
            .map_err(|e| ServiceError::Catalog(CatalogError::Io(e)))?;
        self.snapshot()
            .save_with(storage.as_ref(), dir.join(INDEX_FILE))?;
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .save_with(storage.as_ref(), dir.join(CATALOG_FILE))?;
        Ok(())
    }

    /// Write an incremental checkpoint: drain in-flight ingest merges,
    /// fence the WAL at a watermark, snapshot index + catalog, and hand
    /// the pair to the checkpoint writer. Holding the WAL lock across the
    /// snapshot is what makes the watermark exact — no op can acquire an
    /// LSN until the snapshot is taken, and every logged-but-unmerged
    /// delta is drained first.
    fn checkpoint_durable(&self, d: &DurableState) -> Result<u64, ServiceError> {
        let (_ckpt_rank, mut base) = (
            lockorder::rank_guard(lockorder::CKPT),
            d.ckpt.lock().expect("checkpoint lock poisoned"),
        );
        let (watermark, index, catalog_text) = {
            let (_wal_rank, mut wal) = (
                lockorder::rank_guard(lockorder::WAL),
                d.wal.lock().expect("wal lock poisoned"),
            );
            let (_in_flight_rank, mut in_flight) = (
                lockorder::rank_guard(lockorder::IN_FLIGHT),
                d.in_flight.lock().expect("in-flight lock poisoned"),
            );
            while !in_flight.is_empty() {
                in_flight = d
                    .in_flight_cv
                    .wait(in_flight)
                    .expect("in-flight lock poisoned");
            }
            drop(in_flight);
            let watermark = wal.next_lsn().saturating_sub(1);
            // Rotate so the segment holding pre-watermark records is
            // closed and can be removed once the manifest commits.
            wal.rotate()?;
            let catalog_text = self
                .catalog
                .read()
                .expect("catalog lock poisoned")
                .to_text();
            (watermark, self.snapshot(), catalog_text)
        };
        let generation = durable::write_checkpoint(d, &mut base, &index, &catalog_text, watermark)?;
        d.last_generation.store(generation, Ordering::Relaxed);
        d.checkpoints_completed.fetch_add(1, Ordering::Relaxed);
        d.records_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(generation)
    }

    /// Count a durable record and trigger an automatic checkpoint when the
    /// configured threshold is crossed. Checkpoint failures here are
    /// counted, not surfaced — the op that tripped the threshold already
    /// succeeded and its record is safely in the WAL.
    fn note_durable_record(&self) {
        let Some(d) = &self.durable else { return };
        let since = d.records_since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
        let every = d.cfg.checkpoint_every_records;
        if every > 0 && since >= every && self.checkpoint_durable(d).is_err() {
            d.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Durability counters (checkpoint generation, WAL footprint, recovery
    /// tallies), or `None` when the service runs without a WAL.
    pub fn durability(&self) -> Option<DurabilitySnapshot> {
        self.durable.as_ref().map(|d| d.snapshot())
    }

    /// Path of the persisted index, when a data directory is configured.
    pub fn index_path(&self) -> Option<PathBuf> {
        self.config.data_dir.as_ref().map(|d| d.join(INDEX_FILE))
    }

    /// Current operation counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            columns_ingested: self.columns_ingested.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            rules_inferred: self.rules_inferred.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            flagged: self.flagged.load(Ordering::Relaxed),
            classifications: self.classifications.load(Ordering::Relaxed),
            connection_errors: self.connection_errors.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            stalls_shed: self.stalls_shed.load(Ordering::Relaxed),
        }
    }

    /// The drift-telemetry registry: per-rule sliding-window conformance
    /// counters and per-op request counters.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// How many index epochs have been published (installs + delta
    /// merges) — a cheap "did the index change?" signal for monitoring.
    pub fn index_generation(&self) -> u64 {
        self.index.generation()
    }

    /// Record a TCP connection thread that ended in an I/O error or panic
    /// (called by the serve loop when joining reaped workers).
    pub(crate) fn record_connection_error(&self) {
        self.connection_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection turned away by admission control.
    pub(crate) fn record_connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` request frames answered with `overloaded` because the
    /// run queue was full.
    pub(crate) fn record_requests_shed(&self, n: u64) {
        self.requests_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a connection shed at the write-stall deadline.
    pub(crate) fn record_stall_shed(&self) {
        self.stalls_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Ask every serve loop to wind down: sets the flag, wakes every
    /// [`ValidationService::wait_shutdown_timeout`] sleeper, and fires
    /// (then drains) every registered serve-loop waker — so event loops
    /// blocked in `poll` and watch streams sleeping between frames all
    /// observe the request immediately rather than at a poll cadence.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cvar) = &self.shutdown_signal;
        drop(lock.lock().unwrap());
        cvar.notify_all();
        let wakers = std::mem::take(&mut *self.shutdown_wakers.lock().unwrap());
        for wake in wakers {
            wake();
        }
    }

    /// Register a callback fired once when shutdown is requested (serve
    /// loops pass their poller's `notify`). If shutdown already happened,
    /// the callback runs immediately on this thread.
    pub(crate) fn register_shutdown_waker(&self, wake: Box<dyn Fn() + Send + Sync>) {
        self.shutdown_wakers.lock().unwrap().push(wake);
        if self.is_shutdown() {
            // Raced with request_shutdown's drain: fire what we added.
            let wakers = std::mem::take(&mut *self.shutdown_wakers.lock().unwrap());
            for wake in wakers {
                wake();
            }
        }
    }

    /// Block up to `timeout` or until shutdown is requested, whichever
    /// comes first; returns [`ValidationService::is_shutdown`]. The wake
    /// is immediate (condvar), not polled — this is what keeps watch
    /// streams and pipe serve loops inside the sub-50 ms shutdown budget.
    pub fn wait_shutdown_timeout(&self, timeout: std::time::Duration) -> bool {
        if self.is_shutdown() {
            return true;
        }
        let (lock, cvar) = &self.shutdown_signal;
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = lock.lock().unwrap();
        while !self.is_shutdown() {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timed_out) = cvar.wait_timeout(guard, deadline - now).unwrap();
            guard = next;
            if timed_out.timed_out() {
                break;
            }
        }
        drop(guard);
        self.is_shutdown()
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Helper for tests and examples: make an owned [`Column`] out of a name
/// and values.
pub fn owned_column(name: &str, values: Vec<String>) -> Column {
    Column {
        name: name.to_string(),
        values,
        meta: av_corpus::ColumnMeta::machine("service-ingest", None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, LakeProfile};

    fn lake_columns(seed: u64) -> Vec<Column> {
        let lake = generate_lake(&LakeProfile::tiny(), seed);
        lake.columns().cloned().collect()
    }

    fn date_values(month: u32) -> Vec<String> {
        (1..=28)
            .map(|d| format!("2019-{month:02}-{d:02}"))
            .collect()
    }

    #[test]
    fn ingest_then_infer_then_validate() {
        let service = ValidationService::new(ServiceConfig::default());
        let report = service.ingest(&lake_columns(11)).unwrap();
        assert!(report.total_patterns > 100);
        assert_eq!(report.columns_added, report.total_columns);

        let entry = service.infer_rule("dates", &date_values(3), None).unwrap();
        assert!(entry.rule.conforms("2019-04-01"));
        let ok = service.validate("dates", &date_values(4)).unwrap();
        assert!(!ok.flagged);
        let drifted: Vec<String> = (0..50).map(|i| format!("user-{i}")).collect();
        let bad = service.validate("dates", &drifted).unwrap();
        assert!(bad.flagged);

        let stats = service.stats();
        assert_eq!(stats.validations, 2);
        assert_eq!(stats.flagged, 1);
        assert_eq!(stats.rules_inferred, 1);
    }

    #[test]
    fn incremental_ingest_equals_bulk_ingest() {
        let all = lake_columns(23);
        let (a, b) = all.split_at(all.len() / 2);

        let bulk = ValidationService::new(ServiceConfig::default());
        bulk.ingest(&all).unwrap();
        let incremental = ValidationService::new(ServiceConfig::default());
        incremental.ingest(a).unwrap();
        incremental.ingest(b).unwrap();

        let bi = bulk.snapshot();
        let ii = incremental.snapshot();
        assert_eq!(bi.num_columns, ii.num_columns);
        assert_eq!(bi.len(), ii.len());
        let imap: std::collections::HashMap<u64, av_index::PatternStats> = ii.entries().collect();
        for (k, s) in bi.entries() {
            let t = imap.get(&k).expect("same pattern set");
            assert_eq!(s.fpr.to_bits(), t.fpr.to_bits());
            assert_eq!(s.cov, t.cov);
        }
    }

    /// Ingest is O(touched-shards): a narrow second batch must republish
    /// only the shards its delta lands in, sharing every other shard's
    /// allocation with the snapshot taken before the ingest.
    #[test]
    fn small_ingest_republishes_only_touched_shards() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(11)).unwrap();
        let before = service.snapshot();

        let narrow = vec![owned_column(
            "narrow",
            (0..30).map(|_| "WORD".to_string()).collect(),
        )];
        let report = service.ingest(&narrow).unwrap();
        assert!(report.touched_shards >= 1);
        assert!(
            report.touched_shards < before.shard_count() / 2,
            "a one-shape column touched {} of {} shards",
            report.touched_shards,
            before.shard_count()
        );

        let after = service.snapshot();
        let mut shared = 0;
        for (a, b) in before.shards().iter().zip(after.shards().iter()) {
            if std::sync::Arc::ptr_eq(a, b) {
                shared += 1;
            }
        }
        assert_eq!(
            shared,
            before.shard_count() - report.touched_shards,
            "untouched shards must be pointer-shared across the ingest"
        );
    }

    #[test]
    fn snapshots_survive_later_ingests() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(3)).unwrap();
        let old = service.snapshot();
        let old_columns = old.num_columns;
        service.ingest(&lake_columns(4)).unwrap();
        assert_eq!(old.num_columns, old_columns, "old snapshot is immutable");
        assert!(service.snapshot().num_columns > old_columns);
    }

    #[test]
    fn unknown_rule_errors() {
        let service = ValidationService::new(ServiceConfig::default());
        assert!(matches!(
            service.validate("nope", &[] as &[&str]),
            Err(ServiceError::UnknownRule(_))
        ));
        assert!(matches!(
            service.delete_rule("nope"),
            Err(ServiceError::UnknownRule(_))
        ));
    }

    #[test]
    fn batch_matches_sequential() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(7)).unwrap();
        service.infer_rule("dates", &date_values(3), None).unwrap();
        let owned: Vec<(&str, Vec<String>)> = (0..32)
            .map(|i| {
                (
                    if i % 5 == 4 { "missing" } else { "dates" },
                    if i % 2 == 0 {
                        date_values(1 + (i as u32 % 12))
                    } else {
                        (0..40).map(|j| format!("drift-{i}-{j}")).collect()
                    },
                )
            })
            .collect();
        let items: Vec<BatchItem<'_>> = owned
            .iter()
            .map(|(rule, values)| BatchItem {
                rule,
                values: values.iter().map(String::as_str).collect(),
            })
            .collect();
        let sequential: Vec<_> = items
            .iter()
            .map(|it| service.validate(it.rule, &it.values))
            .collect();
        let batched = service.validate_batch(&items);
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            match (b, s) {
                (Ok(br), Ok(sr)) => assert_eq!(br, sr),
                (Err(ServiceError::UnknownRule(x)), Err(ServiceError::UnknownRule(y))) => {
                    assert_eq!(x, y)
                }
                other => panic!("mismatched outcomes: {other:?}"),
            }
        }
    }

    #[test]
    fn baseline_rules_dispatch_like_catalog_rules() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(9)).unwrap();
        service.infer_rule("dates", &date_values(3), None).unwrap();
        let desc = service
            .infer_baseline("dates-grok", "grok", &date_values(3))
            .unwrap();
        assert!(desc.starts_with("grok:"), "{desc}");
        // The baseline serves exactly like a catalog rule…
        assert!(
            !service
                .validate("dates-grok", &date_values(4))
                .unwrap()
                .flagged
        );
        let drifted: Vec<String> = (0..40).map(|i| format!("user-{i}")).collect();
        assert!(service.validate("dates-grok", &drifted).unwrap().flagged);
        // …and A/B comparison runs both sides on the same feed.
        let (a, b) = service
            .compare("dates", "dates-grok", &date_values(5))
            .unwrap();
        assert!(!a.flagged && !b.flagged);
        assert_eq!(service.baseline_rules().len(), 1);
        assert_eq!(service.stats().rules_inferred, 2);

        // Unknown methods and declining methods report distinct errors.
        assert!(matches!(
            service.infer_baseline("x", "nope", &date_values(1)),
            Err(ServiceError::UnknownMethod(_))
        ));
        let prose: Vec<String> = (0..10)
            .map(|i| format!("Quarterly Revenue Report {i}"))
            .collect();
        assert!(matches!(
            service.infer_baseline("x", "pwheel", &prose),
            Err(ServiceError::MethodDeclined(_))
        ));

        // Deletion covers baselines too.
        service.delete_rule("dates-grok").unwrap();
        assert!(matches!(
            service.validate("dates-grok", &[] as &[&str]),
            Err(ServiceError::UnknownRule(_))
        ));
    }

    #[test]
    fn rule_names_are_one_namespace() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(9)).unwrap();
        // A baseline may not shadow under a catalog rule's name…
        service.infer_rule("dates", &date_values(3), None).unwrap();
        assert!(matches!(
            service.infer_baseline("dates", "grok", &date_values(3)),
            Err(ServiceError::NameTaken(_))
        ));
        // …and cataloging a name evicts the baseline that held it, so a
        // later delete cannot resurrect a forgotten rule.
        service
            .infer_baseline("feed", "grok", &date_values(3))
            .unwrap();
        service.infer_rule("feed", &date_values(3), None).unwrap();
        assert!(service.baseline_rules().is_empty());
        service.delete_rule("feed").unwrap();
        assert!(matches!(
            service.validate("feed", &[] as &[&str]),
            Err(ServiceError::UnknownRule(_))
        ));
    }

    #[test]
    fn explain_names_the_span_and_suggests_the_swapped_column_rule() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(11)).unwrap();
        service.infer_rule("dates", &date_values(3), None).unwrap();
        let statuses: Vec<String> = (0..60)
            .map(|i| ["Delivered", "Pending", "Rejected"][i % 3].to_string())
            .collect();
        service.infer_rule("status", &statuses, None).unwrap();

        // Conforming value: no detail, no suggestion.
        let ok = service.explain("dates", "2019-03-14").unwrap();
        assert!(ok.conforms);
        assert!(ok.explanation.is_none() && ok.suggestion.is_none());

        // A status value in the dates feed: the failing span starts at
        // byte 0 and the suggestion points at the status rule.
        let swapped = service.explain("dates", "Pending").unwrap();
        assert!(!swapped.conforms);
        assert!(swapped.explanation.is_some());
        assert_eq!(swapped.suggestion.as_ref().unwrap().0, "status");

        // A value conforming to nothing gets detail but no suggestion.
        let orphan = service.explain("dates", "2019-03-!!").unwrap();
        let e = orphan.explanation.unwrap();
        assert_eq!(e.failed_at, Some(8));
        assert!(orphan.suggestion.is_none());

        assert!(matches!(
            service.explain("missing", "x"),
            Err(ServiceError::UnknownRule(_))
        ));
    }

    #[test]
    fn classify_scans_the_whole_catalog_and_tracks_updates() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(11)).unwrap();
        assert_eq!(service.classifier_generation(), 0);
        service.infer_rule("dates", &date_values(3), None).unwrap();
        let statuses: Vec<String> = (0..60)
            .map(|i| ["Delivered", "Pending", "Rejected"][i % 3].to_string())
            .collect();
        service.infer_rule("status", &statuses, None).unwrap();
        service
            .infer_baseline("grokked", "grok", &date_values(3))
            .unwrap();
        assert!(service.classifier_generation() >= 3);

        // One scan names every conforming rule; the catalog date rule and
        // the grok baseline both accept a date, and the FMDV rule (more
        // specific than an opaque check) ranks first.
        let date = service.classify_value("2019-07-14");
        assert_eq!(
            date.matches,
            vec!["dates".to_string(), "grokked".to_string()]
        );
        assert_eq!(date.best.as_deref(), Some("dates"));
        let status = service.classify_value("Pending");
        assert_eq!(status.matches, vec!["status".to_string()]);
        let nothing = service.classify_value("!!!");
        assert!(nothing.matches.is_empty() && nothing.best.is_none());

        // The batch path equals per-value calls, in input order.
        let batch = service.classify_batch(&["2019-07-14", "Pending", "!!!"]);
        assert_eq!(batch, vec![date.clone(), status, nothing]);

        // Deletes and baseline evictions keep the automaton in sync.
        let gen = service.classifier_generation();
        service.delete_rule("dates").unwrap();
        assert!(service.classifier_generation() > gen);
        assert_eq!(
            service.classify_value("2019-07-14").matches,
            vec!["grokked".to_string()]
        );
        service.delete_rule("grokked").unwrap();
        assert!(service.classify_value("2019-07-14").matches.is_empty());

        assert_eq!(service.stats().classifications, 8);
    }

    #[test]
    fn reopened_service_classifies_from_the_persisted_catalog() {
        let dir =
            std::env::temp_dir().join(format!("av_service_classify_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ServiceConfig::with_data_dir(&dir);

        let service = ValidationService::new(config.clone());
        service.ingest(&lake_columns(5)).unwrap();
        service.infer_rule("dates", &date_values(6), None).unwrap();
        service.persist().unwrap();

        let reopened = ValidationService::open(config).unwrap();
        assert_eq!(
            reopened.classify_value("2019-06-12").matches,
            vec!["dates".to_string()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_tracks_validations_and_captures_exemplars() {
        let service = ValidationService::new(ServiceConfig::default());
        service.ingest(&lake_columns(11)).unwrap();
        service.infer_rule("dates", &date_values(3), None).unwrap();
        service.validate("dates", &date_values(4)).unwrap();
        service.validate("dates", &date_values(5)).unwrap();
        let drifted: Vec<String> = (0..50).map(|i| format!("user-{i}")).collect();
        assert!(service.validate("dates", &drifted).unwrap().flagged);

        let snap = service.telemetry().rule_snapshot("dates").unwrap();
        assert_eq!(snap.validations, 3);
        assert_eq!(snap.flagged, 1);
        assert_eq!(snap.checked, 28 + 28 + 50);
        assert_eq!(snap.nonconforming, 50);
        assert_eq!(snap.window.validations, 3);
        assert_eq!(snap.window.flagged, 1);
        // The flagged validation captured its first non-conforming value,
        // with the explanation engine's positional detail.
        assert_eq!(snap.exemplars.len(), 1);
        assert_eq!(snap.exemplars[0].value, "user-0");
        assert!(snap.exemplars[0].failed_at.is_some());

        // Conforming validations never touch the exemplar ring.
        service.validate("dates", &date_values(6)).unwrap();
        let snap = service.telemetry().rule_snapshot("dates").unwrap();
        assert_eq!(snap.exemplars.len(), 1);

        // Deleting the rule drops its telemetry.
        service.delete_rule("dates").unwrap();
        assert!(service.telemetry().rule_snapshot("dates").is_none());
    }

    #[test]
    fn index_generation_advances_with_each_ingest() {
        let service = ValidationService::new(ServiceConfig::default());
        assert_eq!(service.index_generation(), 0);
        service.ingest(&lake_columns(3)).unwrap();
        assert_eq!(service.index_generation(), 1);
        service.ingest(&lake_columns(4)).unwrap();
        assert_eq!(service.index_generation(), 2);
    }

    #[test]
    fn persist_and_reopen_restores_rules_and_index() {
        let dir =
            std::env::temp_dir().join(format!("av_service_engine_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ServiceConfig::with_data_dir(&dir);

        let service = ValidationService::new(config.clone());
        service.ingest(&lake_columns(5)).unwrap();
        service.infer_rule("dates", &date_values(6), None).unwrap();
        let before = service.snapshot();
        service.persist().unwrap();

        let reopened = ValidationService::open(config).unwrap();
        let after = reopened.snapshot();
        assert_eq!(after.num_columns, before.num_columns);
        assert_eq!(after.len(), before.len());
        assert!(reopened.rule("dates").is_ok());
        let report = reopened.validate("dates", &date_values(7)).unwrap();
        assert!(!report.flagged);
        std::fs::remove_dir_all(&dir).ok();
    }
}
