//! Per-rule drift telemetry and per-op service metrics.
//!
//! Everything on the recording side is **lock-free on the hot path**: a
//! validation records into a handful of relaxed atomics (lifetime counters
//! plus one bucket of a sliding window), and a protocol op records into a
//! fixed-log-bucket latency histogram. The only mutex in the module guards
//! the bounded ring of *failure exemplars*, which is touched exclusively
//! when a validation was flagged — never on the conforming path.
//!
//! The sliding window is a ring of epoch-stamped buckets ([`SlidingWindow`]):
//! wall-clock time is divided into fixed-width epochs
//! (`TelemetryConfig::bucket_millis` each), epoch `e` always lands in
//! bucket `e % WINDOW_BUCKETS`, and a bucket is lazily re-leased — its
//! stale counts zeroed — by the first recorder of a new epoch. Reads sum
//! the buckets whose stamps still fall inside the window. There is no
//! background thread and no rotation lock; the price is a bounded smear at
//! epoch boundaries (a recorder racing the re-lease may attribute one
//! validation to the neighboring epoch). Within one epoch the counters are
//! exact under any concurrency, which is what the flag-rate alerting
//! consumes.
//!
//! Snapshots ([`RuleTelemetrySnapshot`], [`OpSnapshot`]) are plain owned
//! values: the `watch`/`metrics`/`stats` ops snapshot first and serialize
//! after, so no service lock is ever held while a response is written to a
//! possibly-stalled client.

use av_core::{Explanation, Validator};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Number of buckets in every per-rule sliding window. The covered span is
/// `WINDOW_BUCKETS × TelemetryConfig::bucket_millis`.
pub const WINDOW_BUCKETS: usize = 30;

/// Number of log₂ microsecond buckets in a latency histogram: bucket `i`
/// counts latencies in `[2^(i−1), 2^i)` µs (bucket 0 is `< 1` µs), so the
/// last bucket starts at ~4.2 s — far beyond any sane protocol op.
pub const LATENCY_BUCKETS: usize = 24;

/// Most recent failure exemplars retained per rule.
pub const EXEMPLAR_CAPACITY: usize = 8;

/// Telemetry knobs, embedded in `ServiceConfig`.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Width of one sliding-window epoch in milliseconds. The window spans
    /// [`WINDOW_BUCKETS`] epochs (30 s at the 1 s default).
    pub bucket_millis: u64,
    /// Windowed flag-rate at or above which a rule's snapshot reports
    /// `alert` (default 0.5: half the recent validations flagged).
    pub alert_flag_rate: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            bucket_millis: 1_000,
            alert_flag_rate: 0.5,
        }
    }
}

/// One epoch-stamped bucket of a sliding window.
#[derive(Debug, Default)]
struct Bucket {
    /// The epoch whose counts this bucket currently holds.
    epoch: AtomicU64,
    validations: AtomicU64,
    flagged: AtomicU64,
    checked: AtomicU64,
    nonconforming: AtomicU64,
}

/// A lock-free sliding window of conformance counters (see the module docs
/// for the leasing protocol and its boundary-smear caveat).
#[derive(Debug)]
pub struct SlidingWindow {
    buckets: [Bucket; WINDOW_BUCKETS],
}

/// Aggregated counts over the live span of a [`SlidingWindow`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Validations recorded inside the window.
    pub validations: u64,
    /// Of those, validations that raised a flag.
    pub flagged: u64,
    /// Values checked inside the window.
    pub checked: u64,
    /// Of those, values that did not conform.
    pub nonconforming: u64,
}

impl WindowSnapshot {
    /// Fraction of windowed validations that were flagged (0 when idle).
    pub fn flag_rate(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.flagged as f64 / self.validations as f64
        }
    }
}

impl Default for SlidingWindow {
    fn default() -> Self {
        SlidingWindow {
            buckets: std::array::from_fn(|_| Bucket::default()),
        }
    }
}

impl SlidingWindow {
    /// Record one validation into the bucket for `epoch`, re-leasing the
    /// bucket (zeroing counts that aged out of the window) when it still
    /// holds an older epoch's data.
    fn record(&self, epoch: u64, checked: u64, nonconforming: u64, flagged: bool) {
        let bucket = &self.buckets[(epoch % WINDOW_BUCKETS as u64) as usize];
        let held = bucket.epoch.load(Ordering::Acquire);
        if epoch > held
            && bucket
                .epoch
                .compare_exchange(held, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // The winner of the lease clears the expired counts. A recorder
            // racing this clear can lose its add to it — that count belonged
            // to a bucket boundary either way (the documented smear).
            bucket.validations.store(0, Ordering::Relaxed);
            bucket.flagged.store(0, Ordering::Relaxed);
            bucket.checked.store(0, Ordering::Relaxed);
            bucket.nonconforming.store(0, Ordering::Relaxed);
        }
        bucket.validations.fetch_add(1, Ordering::Relaxed);
        if flagged {
            bucket.flagged.fetch_add(1, Ordering::Relaxed);
        }
        bucket.checked.fetch_add(checked, Ordering::Relaxed);
        bucket
            .nonconforming
            .fetch_add(nonconforming, Ordering::Relaxed);
    }

    /// Sum every bucket whose epoch stamp is still inside the window
    /// ending at `now_epoch`.
    fn snapshot(&self, now_epoch: u64) -> WindowSnapshot {
        let oldest_live = now_epoch.saturating_sub(WINDOW_BUCKETS as u64 - 1);
        let mut out = WindowSnapshot::default();
        for bucket in &self.buckets {
            let epoch = bucket.epoch.load(Ordering::Acquire);
            if epoch < oldest_live || epoch > now_epoch {
                continue;
            }
            out.validations += bucket.validations.load(Ordering::Relaxed);
            out.flagged += bucket.flagged.load(Ordering::Relaxed);
            out.checked += bucket.checked.load(Ordering::Relaxed);
            out.nonconforming += bucket.nonconforming.load(Ordering::Relaxed);
        }
        out
    }
}

/// One captured non-conformance: the offending value plus whatever detail
/// the rule's [`Validator::explain`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureExemplar {
    /// The first non-conforming value of the flagged column.
    pub value: String,
    /// Human-readable failure reason.
    pub reason: String,
    /// Byte offset where matching failed, when the rule is positional.
    pub failed_at: Option<usize>,
    /// Failing byte span `[start, end)`, char-boundary aligned.
    pub span: Option<(usize, usize)>,
    /// What the rule required at the failure point.
    pub expected: Option<String>,
}

impl FailureExemplar {
    /// Capture an exemplar for `value` against `validator` — the cold
    /// path's allocation budget is unconstrained here.
    pub fn capture(validator: &dyn Validator, value: &str) -> FailureExemplar {
        match validator.explain(value) {
            Some(Explanation {
                reason,
                failed_at,
                span,
                expected,
                ..
            }) => FailureExemplar {
                value: value.to_string(),
                reason,
                failed_at,
                span,
                expected,
            },
            None => FailureExemplar {
                value: value.to_string(),
                reason: "does not conform (no further detail)".to_string(),
                failed_at: None,
                span: None,
                expected: None,
            },
        }
    }
}

/// Drift telemetry for one rule: lifetime counters, a sliding conformance
/// window, and a bounded ring of recent failure exemplars.
#[derive(Debug)]
pub struct RuleTelemetry {
    validations: AtomicU64,
    flagged: AtomicU64,
    checked: AtomicU64,
    nonconforming: AtomicU64,
    window: SlidingWindow,
    exemplars: Mutex<VecDeque<FailureExemplar>>,
}

/// Owned snapshot of one rule's telemetry (safe to serialize with no
/// service lock held).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleTelemetrySnapshot {
    /// Rule name.
    pub rule: String,
    /// Lifetime validations of this rule.
    pub validations: u64,
    /// Lifetime flagged validations.
    pub flagged: u64,
    /// Lifetime values checked.
    pub checked: u64,
    /// Lifetime non-conforming values.
    pub nonconforming: u64,
    /// Counts over the sliding window.
    pub window: WindowSnapshot,
    /// True when the windowed flag-rate reached the configured threshold.
    pub alert: bool,
    /// Most recent failure exemplars, oldest first.
    pub exemplars: Vec<FailureExemplar>,
}

impl RuleTelemetry {
    fn new() -> RuleTelemetry {
        RuleTelemetry {
            validations: AtomicU64::new(0),
            flagged: AtomicU64::new(0),
            checked: AtomicU64::new(0),
            nonconforming: AtomicU64::new(0),
            window: SlidingWindow::default(),
            exemplars: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one finished validation (epoch from the owning registry).
    pub fn record(&self, epoch: u64, checked: u64, nonconforming: u64, flagged: bool) {
        self.validations.fetch_add(1, Ordering::Relaxed);
        if flagged {
            self.flagged.fetch_add(1, Ordering::Relaxed);
        }
        self.checked.fetch_add(checked, Ordering::Relaxed);
        self.nonconforming
            .fetch_add(nonconforming, Ordering::Relaxed);
        self.window.record(epoch, checked, nonconforming, flagged);
    }

    /// Append a failure exemplar, evicting the oldest past
    /// [`EXEMPLAR_CAPACITY`]. Called only for flagged validations.
    pub fn push_exemplar(&self, exemplar: FailureExemplar) {
        let mut ring = self.exemplars.lock().expect("exemplar ring poisoned");
        if ring.len() == EXEMPLAR_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(exemplar);
    }

    fn snapshot(&self, rule: &str, now_epoch: u64, alert_flag_rate: f64) -> RuleTelemetrySnapshot {
        let window = self.window.snapshot(now_epoch);
        RuleTelemetrySnapshot {
            rule: rule.to_string(),
            validations: self.validations.load(Ordering::Relaxed),
            flagged: self.flagged.load(Ordering::Relaxed),
            checked: self.checked.load(Ordering::Relaxed),
            nonconforming: self.nonconforming.load(Ordering::Relaxed),
            alert: window.validations > 0 && window.flag_rate() >= alert_flag_rate,
            window,
            exemplars: self
                .exemplars
                .lock()
                .expect("exemplar ring poisoned")
                .iter()
                .cloned()
                .collect(),
        }
    }
}

/// A fixed-log-bucket latency histogram: lock-free recording into
/// [`LATENCY_BUCKETS`] power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

/// Owned snapshot of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed latencies, in microseconds.
    pub total_micros: u64,
    /// Per-bucket counts; bucket `i` covers `[2^(i−1), 2^i)` µs.
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Mean latency in microseconds (0 when no observations).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }
}

impl LatencyHistogram {
    /// Which bucket a latency falls into.
    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Request/error counters plus a latency histogram for one protocol op.
#[derive(Debug, Default)]
pub struct OpTelemetry {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

/// Owned snapshot of one op's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSnapshot {
    /// Protocol op name (`"validate"`, `"ingest"`, …; `"invalid"` for
    /// requests that never resolved to an op).
    pub op: String,
    /// Requests dispatched.
    pub requests: u64,
    /// Requests that returned `"ok": false`.
    pub errors: u64,
    /// Latency distribution of the op's dispatch (parse + handle, not
    /// socket I/O).
    pub latency: LatencySnapshot,
}

/// The service-wide telemetry registry: per-rule drift telemetry plus
/// per-op request counters, all behind get-or-create maps whose entries
/// are `Arc`s — recording holds no map lock beyond the initial lookup.
#[derive(Debug)]
pub struct ServiceTelemetry {
    start: Instant,
    config: TelemetryConfig,
    rules: RwLock<HashMap<String, Arc<RuleTelemetry>>>,
    ops: RwLock<HashMap<String, Arc<OpTelemetry>>>,
}

impl ServiceTelemetry {
    /// A fresh registry; the window clock starts now.
    pub fn new(config: TelemetryConfig) -> ServiceTelemetry {
        ServiceTelemetry {
            start: Instant::now(),
            config: TelemetryConfig {
                bucket_millis: config.bucket_millis.max(1),
                ..config
            },
            rules: RwLock::new(HashMap::new()),
            ops: RwLock::new(HashMap::new()),
        }
    }

    /// The registry's telemetry knobs.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The current window epoch (elapsed time / bucket width).
    pub fn epoch(&self) -> u64 {
        self.start.elapsed().as_millis() as u64 / self.config.bucket_millis
    }

    /// The span one sliding window covers, in milliseconds.
    pub fn window_millis(&self) -> u64 {
        self.config.bucket_millis * WINDOW_BUCKETS as u64
    }

    /// Get-or-create the telemetry slot for a rule. The common case is one
    /// shared read lock; only the first validation of a rule takes the
    /// write lock.
    pub fn rule(&self, name: &str) -> Arc<RuleTelemetry> {
        if let Some(t) = self
            .rules
            .read()
            .expect("rule telemetry lock poisoned")
            .get(name)
        {
            return Arc::clone(t);
        }
        Arc::clone(
            self.rules
                .write()
                .expect("rule telemetry lock poisoned")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(RuleTelemetry::new())),
        )
    }

    /// Drop a rule's telemetry (the service calls this from `delete_rule`
    /// so a deleted-then-recreated rule starts from a clean slate).
    pub fn forget_rule(&self, name: &str) {
        self.rules
            .write()
            .expect("rule telemetry lock poisoned")
            .remove(name);
    }

    /// Record one protocol op dispatch.
    pub fn record_op(&self, op: &str, elapsed: Duration, ok: bool) {
        let slot = {
            let ops = self.ops.read().expect("op telemetry lock poisoned");
            ops.get(op).cloned()
        };
        let slot = slot.unwrap_or_else(|| {
            Arc::clone(
                self.ops
                    .write()
                    .expect("op telemetry lock poisoned")
                    .entry(op.to_string())
                    .or_default(),
            )
        });
        slot.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency.record(elapsed);
    }

    /// Owned snapshots of every rule's telemetry, sorted by rule name. The
    /// registry lock is held only while the `Arc`s are cloned.
    pub fn rule_snapshots(&self) -> Vec<RuleTelemetrySnapshot> {
        let slots: Vec<(String, Arc<RuleTelemetry>)> = {
            let rules = self.rules.read().expect("rule telemetry lock poisoned");
            rules
                .iter()
                .map(|(name, t)| (name.clone(), Arc::clone(t)))
                .collect()
        };
        let now = self.epoch();
        let mut out: Vec<RuleTelemetrySnapshot> = slots
            .iter()
            .map(|(name, t)| t.snapshot(name, now, self.config.alert_flag_rate))
            .collect();
        out.sort_by(|a, b| a.rule.cmp(&b.rule));
        out
    }

    /// Owned snapshot of one rule's telemetry, if it has recorded anything.
    pub fn rule_snapshot(&self, name: &str) -> Option<RuleTelemetrySnapshot> {
        let slot = {
            let rules = self.rules.read().expect("rule telemetry lock poisoned");
            rules.get(name).cloned()
        };
        slot.map(|t| t.snapshot(name, self.epoch(), self.config.alert_flag_rate))
    }

    /// Owned snapshots of every op's counters, sorted by op name.
    pub fn op_snapshots(&self) -> Vec<OpSnapshot> {
        let slots: Vec<(String, Arc<OpTelemetry>)> = {
            let ops = self.ops.read().expect("op telemetry lock poisoned");
            ops.iter()
                .map(|(name, t)| (name.clone(), Arc::clone(t)))
                .collect()
        };
        let mut out: Vec<OpSnapshot> = slots
            .iter()
            .map(|(name, t)| OpSnapshot {
                op: name.clone(),
                requests: t.requests.load(Ordering::Relaxed),
                errors: t.errors.load(Ordering::Relaxed),
                latency: t.latency.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.op.cmp(&b.op));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A registry whose epoch never advances during a test run, so window
    /// counters admit exact assertions.
    fn frozen_registry() -> ServiceTelemetry {
        ServiceTelemetry::new(TelemetryConfig {
            bucket_millis: 3_600_000,
            alert_flag_rate: 0.5,
        })
    }

    /// The ISSUE's exactness requirement: with no bucket rotation, window
    /// sums equal the lifetime counters under arbitrary concurrency.
    #[test]
    fn window_counters_are_exact_under_concurrent_validators() {
        let registry = frozen_registry();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                let registry = &registry;
                scope.spawn(move || {
                    let slot = registry.rule("feed");
                    let epoch = registry.epoch();
                    for i in 0..PER_THREAD {
                        // Every third validation flags; check 10 values of
                        // which (i % 4) fail.
                        slot.record(epoch, 10, i % 4, (worker + i) % 3 == 0);
                    }
                });
            }
        });
        let snap = registry.rule_snapshot("feed").unwrap();
        let total = THREADS * PER_THREAD;
        assert_eq!(snap.validations, total);
        assert_eq!(snap.checked, total * 10);
        let expected_noncon: u64 = (0..THREADS)
            .flat_map(|_| (0..PER_THREAD).map(|i| i % 4))
            .sum();
        let expected_flagged: u64 = (0..THREADS)
            .flat_map(|w| (0..PER_THREAD).map(move |i| u64::from((w + i) % 3 == 0)))
            .sum();
        assert_eq!(snap.nonconforming, expected_noncon);
        assert_eq!(snap.flagged, expected_flagged);
        // Sum over window buckets == the lifetime counters, exactly.
        assert_eq!(snap.window.validations, snap.validations);
        assert_eq!(snap.window.flagged, snap.flagged);
        assert_eq!(snap.window.checked, snap.checked);
        assert_eq!(snap.window.nonconforming, snap.nonconforming);
    }

    #[test]
    fn window_expires_old_epochs() {
        let window = SlidingWindow::default();
        window.record(0, 5, 1, true);
        assert_eq!(window.snapshot(0).validations, 1);
        // Still visible at the last epoch of its window…
        assert_eq!(window.snapshot(WINDOW_BUCKETS as u64 - 1).validations, 1);
        // …gone one epoch later, even though the bucket was never re-leased.
        assert_eq!(window.snapshot(WINDOW_BUCKETS as u64).validations, 0);
        // A new epoch wrapping onto the same bucket replaces the counts.
        window.record(WINDOW_BUCKETS as u64, 7, 0, false);
        let snap = window.snapshot(WINDOW_BUCKETS as u64);
        assert_eq!(snap.validations, 1);
        assert_eq!(snap.checked, 7);
        assert_eq!(snap.flagged, 0);
    }

    #[test]
    fn alert_fires_at_the_configured_flag_rate() {
        let registry = frozen_registry();
        let slot = registry.rule("feed");
        let epoch = registry.epoch();
        slot.record(epoch, 10, 0, false);
        assert!(!registry.rule_snapshot("feed").unwrap().alert);
        slot.record(epoch, 10, 10, true);
        let snap = registry.rule_snapshot("feed").unwrap();
        assert_eq!(snap.window.flag_rate(), 0.5);
        assert!(snap.alert, "0.5 rate meets the 0.5 threshold");
    }

    #[test]
    fn exemplar_ring_is_bounded_and_ordered() {
        let slot = RuleTelemetry::new();
        for i in 0..EXEMPLAR_CAPACITY + 3 {
            slot.push_exemplar(FailureExemplar {
                value: format!("v{i}"),
                reason: "r".into(),
                failed_at: None,
                span: None,
                expected: None,
            });
        }
        let snap = slot.snapshot("x", 0, 0.5);
        assert_eq!(snap.exemplars.len(), EXEMPLAR_CAPACITY);
        assert_eq!(snap.exemplars[0].value, "v3");
        assert_eq!(
            snap.exemplars.last().unwrap().value,
            format!("v{}", EXEMPLAR_CAPACITY + 2)
        );
    }

    #[test]
    fn latency_histogram_buckets_by_log2_micros() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.total_micros, 1003);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[10], 1);
        assert!((snap.mean_micros() - 501.5).abs() < 1e-9);
    }

    #[test]
    fn op_counters_track_requests_and_errors() {
        let registry = frozen_registry();
        registry.record_op("validate", Duration::from_micros(10), true);
        registry.record_op("validate", Duration::from_micros(20), false);
        registry.record_op("ping", Duration::from_micros(1), true);
        let ops = registry.op_snapshots();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op, "ping");
        assert_eq!(ops[1].op, "validate");
        assert_eq!(ops[1].requests, 2);
        assert_eq!(ops[1].errors, 1);
        assert_eq!(ops[1].latency.count, 2);
    }
}
