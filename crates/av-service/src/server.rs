//! Serve loops: drive a [`ValidationService`] over any line-oriented
//! transport — stdin/stdout for pipes and tests, TCP for network clients.
//! Every transport speaks the same JSONL protocol (see
//! [`crate::protocol`]).
//!
//! The TCP loop is hardened against misbehaving peers:
//!
//! * request lines are **capped** (`ServiceConfig::max_request_bytes`) —
//!   a client streaming bytes without a newline gets a protocol error and
//!   is disconnected instead of growing the line buffer until OOM;
//! * reads *and* writes poll on the same timeout, so a stalled client can
//!   neither pin a worker past shutdown on the read side nor wedge it
//!   mid-response on the write side (slow-but-alive peers get an
//!   aggregate stall budget before the connection is dropped);
//! * finished connection threads are **joined**, not just dropped: their
//!   I/O errors and panics are counted in
//!   [`ServiceStats::connection_errors`](crate::ServiceStats) rather than
//!   vanishing with the handle.

use crate::engine::ValidationService;
use crate::protocol::{handle_line_into, render_error_into, render_watch_frame, WatchParams};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared poll interval for connection I/O: reads *and* writes time out at
/// this cadence so the thread can observe shutdown between attempts. A
/// poll expiring is not a failure by itself — reads simply retry, and
/// writes retry up to [`WRITE_STALL_BUDGET`].
const IO_TIMEOUT: Duration = Duration::from_millis(200);

/// Total stall budget for delivering one response: a peer that is merely
/// slow to drain its socket gets this long in aggregate, while one that
/// has stopped reading (or a service shutdown) releases the worker within
/// one poll interval.
const WRITE_STALL_BUDGET: Duration = Duration::from_secs(10);

/// Serve JSONL requests from `input`, writing responses to `output`.
/// Returns when the input ends, a `shutdown` op arrives, or the service
/// was asked to shut down elsewhere.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &ValidationService,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    // One response buffer for the whole connection: the serializer reuses
    // it across lines instead of allocating a String per response.
    let mut response = String::new();
    for line in input.lines() {
        if service.is_shutdown() {
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let outcome = handle_line_into(service, &line, &mut response);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if let Some(watch) = outcome.watch {
            stream_watch_frames(service, &watch, &mut response, |bytes| {
                output.write_all(bytes)?;
                output.flush()
            })?;
        }
        if outcome.shutdown {
            break;
        }
    }
    Ok(())
}

/// Sleep `total`, waking every poll interval to observe a shutdown request
/// (returns early when one lands).
fn sleep_observing_shutdown(service: &ValidationService, total: Duration) {
    let start = Instant::now();
    while !service.is_shutdown() {
        let elapsed = start.elapsed();
        if elapsed >= total {
            return;
        }
        std::thread::sleep((total - elapsed).min(IO_TIMEOUT));
    }
}

/// Drive one `watch` session: every interval, snapshot the telemetry into
/// a frame (owned values, no service lock) and hand the bytes to `emit`
/// (which owns transport concerns — polling writes on TCP, plain writes on
/// pipes). Ends after the requested frame count, on shutdown, or when
/// `emit` fails (client gone).
fn stream_watch_frames(
    service: &ValidationService,
    params: &WatchParams,
    buf: &mut String,
    mut emit: impl FnMut(&[u8]) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let start = Instant::now();
    let mut frame = 0u64;
    loop {
        if let Some(max) = params.frames {
            if frame >= max {
                return Ok(());
            }
        }
        sleep_observing_shutdown(service, params.interval);
        if service.is_shutdown() {
            return Ok(());
        }
        render_watch_frame(service, params, frame, start.elapsed(), buf);
        buf.push('\n');
        emit(buf.as_bytes())?;
        frame += 1;
    }
}

/// Serve the process's stdin/stdout until EOF or shutdown.
pub fn serve_stdin(service: &ValidationService) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

/// Outcome of one bounded line read from a connection.
enum LineRead {
    /// A complete request line sits in the buffer (newline stripped; also
    /// produced for a final unterminated line at EOF).
    Line,
    /// The peer closed and nothing is buffered.
    Eof,
    /// The buffered request exceeded the configured cap mid-line.
    TooLong,
    /// The read timed out while idle (or mid-line); buffered bytes are
    /// kept and the caller re-checks the shutdown flag before retrying.
    Idle,
}

/// Read one `\n`-terminated line into `buf`, never buffering more than
/// `max` bytes. Unlike `BufRead::read_line`, the cap holds even when the
/// peer sends an endless unterminated stream — the fix for the unbounded
/// `read_line` OOM.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::Idle)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // trailing unterminated line at EOF
            });
        }
        match available.iter().position(|b| *b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                return Ok(LineRead::Line);
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

/// Write `bytes` fully, polling at the [`IO_TIMEOUT`] cadence: each
/// expired poll re-checks the shutdown flag and the aggregate
/// [`WRITE_STALL_BUDGET`], so a slow-but-alive peer keeps its connection
/// while a peer that stopped draining (or a service shutdown) releases
/// the worker promptly instead of wedging it in a blocking write.
fn write_polling(
    service: &ValidationService,
    stream: &mut TcpStream,
    bytes: &[u8],
) -> std::io::Result<()> {
    let start = std::time::Instant::now();
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting response bytes",
                ))
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if service.is_shutdown() || start.elapsed() >= WRITE_STALL_BUDGET {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer did not drain its response within the stall budget",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serve one TCP connection: like [`serve_lines`], but with bounded
/// request lines and symmetric read/write polling, so neither an idle
/// client, an endless unterminated frame, nor a peer that stops reading
/// its responses can hold the thread hostage.
fn serve_tcp_connection(
    service: &ValidationService,
    mut stream: std::net::TcpStream,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let max_request = service.config().max_request_bytes.max(1);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut raw: Vec<u8> = Vec::new();
    let mut response = String::new(); // reused across the connection
    let respond = |service: &ValidationService,
                   stream: &mut TcpStream,
                   response: &str|
     -> std::io::Result<()> {
        write_polling(service, stream, response.as_bytes())?;
        write_polling(service, stream, b"\n")
    };
    while !service.is_shutdown() {
        match read_line_bounded(&mut reader, &mut raw, max_request)? {
            LineRead::Idle => continue,
            LineRead::Eof => break,
            LineRead::TooLong => {
                // Protocol error, then hang up: the rest of the frame is
                // undelimited garbage we refuse to buffer.
                render_error_into(
                    &format!("request line exceeds {max_request} bytes"),
                    &mut response,
                );
                respond(service, &mut stream, &response)?;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "oversized request line",
                ));
            }
            LineRead::Line => {
                let Ok(line) = std::str::from_utf8(&raw) else {
                    render_error_into("request line is not valid utf-8", &mut response);
                    respond(service, &mut stream, &response)?;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "request line is not valid utf-8",
                    ));
                };
                if !line.trim().is_empty() {
                    let outcome = handle_line_into(service, line, &mut response);
                    respond(service, &mut stream, &response)?;
                    if let Some(watch) = outcome.watch {
                        // The multi-frame path: one request, many response
                        // frames, each written with the same polling rules
                        // as ordinary responses.
                        stream_watch_frames(service, &watch, &mut response, |bytes| {
                            write_polling(service, &mut stream, bytes)
                        })?;
                    }
                    if outcome.shutdown {
                        break;
                    }
                }
                raw.clear();
            }
        }
    }
    Ok(())
}

/// Join a finished (or final) connection thread, folding its outcome into
/// the service stats: I/O errors and panics increment
/// `ServiceStats::connection_errors` instead of disappearing.
fn join_connection(
    service: &ValidationService,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
) {
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(_)) | Err(_) => service.record_connection_error(),
    }
}

/// Listen on `addr` and serve each connection on its own thread, all
/// sharing one service. Returns the bound local address via the callback
/// (useful with port 0), and runs until a client sends `shutdown` — idle
/// connections cannot delay the exit (reads poll the shutdown flag).
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<ValidationService>,
    addr: A,
    mut on_bound: impl FnMut(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    // Non-blocking accept so the loop can observe shutdown requests made
    // from other connections.
    listener.set_nonblocking(true)?;
    let mut workers: Vec<std::thread::JoinHandle<std::io::Result<()>>> = Vec::new();
    while !service.is_shutdown() {
        // Reap finished connection threads so a long-lived server doesn't
        // accumulate a handle per connection ever served — and *join*
        // them, so an IO error or panic is counted, not dropped.
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                join_connection(&service, workers.swap_remove(i));
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                workers.push(std::thread::spawn(move || {
                    serve_tcp_connection(&service, stream)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        join_connection(&service, w);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use crate::protocol::response_ok;
    use std::io::Cursor;

    #[test]
    fn serve_lines_round_trips_a_session() {
        let service = ValidationService::new(ServiceConfig::default());
        let input = concat!(
            r#"{"op":"ping"}"#,
            "\n",
            "\n", // blank lines are skipped
            r#"{"op":"ingest","columns":[{"name":"c","values":["00:01:02","03:04:05","06:07:08"]}]}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"ping"}"#, // never reached: shutdown broke the loop
            "\n",
        );
        let mut out = Vec::new();
        serve_lines(&service, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines.iter().all(|l| response_ok(l)), "{text}");
        assert!(service.is_shutdown());
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 31);
        let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
        service.ingest(&columns).unwrap();
        let train: Vec<String> = (1..=28).map(|d| format!("2020-01-{d:02}")).collect();
        service.infer_rule("dates", &train, None).unwrap();

        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let req = format!(
                        r#"{{"op":"validate","rule":"dates","values":["2020-02-{:02}"]}}"#,
                        i + 1
                    );
                    stream.write_all(req.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut line = String::new();
                    BufReader::new(stream).read_line(&mut line).unwrap();
                    assert!(response_ok(&line), "{line}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }

        // An idle client that never sends anything must not be able to
        // delay shutdown (its serve thread polls the shutdown flag).
        let idle = TcpStream::connect(addr).unwrap();

        // One more client shuts the server down.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        drop(idle);
        assert_eq!(service.stats().validations, 4);
        assert_eq!(service.stats().connection_errors, 0);
    }

    /// The regression for the unbounded `read_line`: a client streaming an
    /// oversized frame (no newline) gets a protocol error and is
    /// disconnected — the server buffers at most `max_request_bytes`.
    #[test]
    fn oversized_request_line_is_rejected_and_connection_closed() {
        use std::io::{BufRead, BufReader, Read, Write};
        use std::net::TcpStream;

        let config = ServiceConfig {
            max_request_bytes: 512,
            ..Default::default()
        };
        let service = Arc::new(ValidationService::new(config));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        // One 700-byte burst of 'a' with no newline — beyond the 512-byte
        // cap, small enough that the server's first buffered read drains
        // the whole frame (so its close is a clean FIN the client can
        // read the error response past).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[b'a'; 700]).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!response_ok(&line), "{line}");
        assert!(line.contains("exceeds 512 bytes"), "{line}");
        // The server hung up: the next read hits EOF (or a reset if the
        // stacks raced — either way, no more data).
        let mut rest = Vec::new();
        let drained = reader.read_to_end(&mut rest);
        assert!(drained.is_err() || rest.is_empty());

        // A well-behaved client on a fresh connection still gets served.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(response_ok(&line), "{line}");

        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        server.join().unwrap().unwrap();
        // The oversized connection was joined and counted as an error.
        assert_eq!(service.stats().connection_errors, 1);
    }

    /// Non-UTF-8 request bytes get a protocol error, close the
    /// connection, and count as a connection error once joined.
    #[test]
    fn invalid_utf8_request_is_counted_as_connection_error() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xff, 0xfe, 0xc0, b'\n']).unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(!response_ok(&line), "{line}");
        assert!(line.contains("utf-8"), "{line}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        assert_eq!(service.stats().connection_errors, 1);
    }
}
