//! Serve loops: drive a [`ValidationService`] over any line-oriented
//! transport — stdin/stdout for pipes and tests, TCP for network clients.
//! Every transport speaks the same JSONL protocol (see
//! [`crate::protocol`]).

use crate::engine::ValidationService;
use crate::protocol::handle_line_into;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Serve JSONL requests from `input`, writing responses to `output`.
/// Returns when the input ends, a `shutdown` op arrives, or the service
/// was asked to shut down elsewhere.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &ValidationService,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    // One response buffer for the whole connection: the serializer reuses
    // it across lines instead of allocating a String per response.
    let mut response = String::new();
    for line in input.lines() {
        if service.is_shutdown() {
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = handle_line_into(service, &line, &mut response);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(())
}

/// Serve the process's stdin/stdout until EOF or shutdown.
pub fn serve_stdin(service: &ValidationService) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

/// Serve one TCP connection: like [`serve_lines`], but reads with a
/// timeout so an idle client never keeps the thread from observing a
/// shutdown requested elsewhere.
fn serve_tcp_connection(
    service: &ValidationService,
    mut stream: std::net::TcpStream,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let mut response = String::new(); // reused across the connection
    while !service.is_shutdown() {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                if !line.trim().is_empty() {
                    let shutdown = handle_line_into(service, &line, &mut response);
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                    if shutdown {
                        break;
                    }
                }
                line.clear();
            }
            // Timeout while idle: re-check shutdown and keep reading. A
            // timeout mid-line leaves the partial bytes in `line`, which
            // the next read_line call extends — so no clear here.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Listen on `addr` and serve each connection on its own thread, all
/// sharing one service. Returns the bound local address via the callback
/// (useful with port 0), and runs until a client sends `shutdown` — idle
/// connections cannot delay the exit (reads poll the shutdown flag).
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<ValidationService>,
    addr: A,
    mut on_bound: impl FnMut(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    // Non-blocking accept so the loop can observe shutdown requests made
    // from other connections.
    listener.set_nonblocking(true)?;
    let mut workers: Vec<std::thread::JoinHandle<std::io::Result<()>>> = Vec::new();
    while !service.is_shutdown() {
        // Reap finished connection threads so a long-lived server doesn't
        // accumulate a handle per connection ever served.
        workers.retain(|w| !w.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                workers.push(std::thread::spawn(move || {
                    serve_tcp_connection(&service, stream)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use crate::protocol::response_ok;
    use std::io::Cursor;

    #[test]
    fn serve_lines_round_trips_a_session() {
        let service = ValidationService::new(ServiceConfig::default());
        let input = concat!(
            r#"{"op":"ping"}"#,
            "\n",
            "\n", // blank lines are skipped
            r#"{"op":"ingest","columns":[{"name":"c","values":["00:01:02","03:04:05","06:07:08"]}]}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"ping"}"#, // never reached: shutdown broke the loop
            "\n",
        );
        let mut out = Vec::new();
        serve_lines(&service, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines.iter().all(|l| response_ok(l)), "{text}");
        assert!(service.is_shutdown());
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 31);
        let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
        service.ingest(&columns).unwrap();
        let train: Vec<String> = (1..=28).map(|d| format!("2020-01-{d:02}")).collect();
        service.infer_rule("dates", &train, None).unwrap();

        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let req = format!(
                        r#"{{"op":"validate","rule":"dates","values":["2020-02-{:02}"]}}"#,
                        i + 1
                    );
                    stream.write_all(req.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut line = String::new();
                    BufReader::new(stream).read_line(&mut line).unwrap();
                    assert!(response_ok(&line), "{line}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }

        // An idle client that never sends anything must not be able to
        // delay shutdown (its serve thread polls the shutdown flag).
        let idle = TcpStream::connect(addr).unwrap();

        // One more client shuts the server down.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        drop(idle);
        assert_eq!(service.stats().validations, 4);
    }
}
