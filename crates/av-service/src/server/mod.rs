//! Serve loops: drive a [`ValidationService`] over any line-oriented
//! transport — stdin/stdout for pipes and tests, TCP for network clients.
//! Every transport speaks the same JSONL protocol (see
//! [`crate::protocol`]).
//!
//! The TCP loop ([`serve_tcp`]) is **event-driven**: one reactor thread
//! multiplexes every connection over a readiness poller (the vendored
//! `polling` crate — epoll on Linux), nonblocking sockets, and
//! per-connection state machines, with request execution on a fixed
//! worker pool behind a bounded run queue. Per-event cost tracks ready
//! work, never connection count, and overload degrades explicitly
//! instead of stalling:
//!
//! * **admission control** — connections past
//!   `ServiceConfig::max_connections` get one JSONL `overloaded` frame
//!   and are closed (counted in
//!   [`ServiceStats::connections_rejected`](crate::ServiceStats));
//! * **pipelining with a cap** — many frames may be in flight per
//!   connection; frames past the per-connection cap are answered
//!   `overloaded` in request order (`requests_shed`);
//! * **bounded buffers with backpressure** — request lines are capped
//!   (`ServiceConfig::max_request_bytes`), and a connection whose write
//!   buffer passes the high watermark stops being polled readable until
//!   the peer drains;
//! * **deadlines, not budgets** — a peer making zero drain progress for
//!   `ServiceConfig::stall_deadline_ms` is shed (`stalls_shed`), and one
//!   sending nothing for `ServiceConfig::idle_timeout_ms` is closed
//!   cleanly (slow-loris defense);
//! * **immediate shutdown** — [`ValidationService::request_shutdown`]
//!   wakes the reactor through the poller's self-pipe, so shutdown
//!   latency is syscall-scale, not a poll interval;
//! * **counted failures** — connections that end in I/O or protocol
//!   errors increment `ServiceStats::connection_errors` instead of
//!   vanishing.
//!
//! The transport is abstracted behind [`NetSocket`]/[`NetListener`] so
//! chaos tests can inject deterministic socket faults ([`NetFaultPlan`],
//! [`FaultListener`]) — short reads and writes, EAGAIN storms, mid-frame
//! resets, accept failures — at every socket-op index of a workload and
//! assert the loop never deadlocks and never tears a response frame (see
//! [`serve_listener`]).

mod conn;
mod event_loop;
mod netfault;

pub use event_loop::serve_listener;
pub use netfault::{
    std_listener, FaultKind, FaultListener, FaultSocket, NetFaultPlan, NetListener, NetSocket,
    FAULT_WINDOW_OPS,
};

use crate::engine::ValidationService;
use crate::protocol::{handle_line_into, render_watch_frame, WatchParams};
use std::io::{BufRead, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Instant;

/// Serve JSONL requests from `input`, writing responses to `output`.
/// Returns when the input ends, a `shutdown` op arrives, or the service
/// was asked to shut down elsewhere.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &ValidationService,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    // One response buffer for the whole connection: the serializer reuses
    // it across lines instead of allocating a String per response.
    let mut response = String::new();
    for line in input.lines() {
        if service.is_shutdown() {
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let outcome = handle_line_into(service, &line, &mut response);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if let Some(watch) = outcome.watch {
            stream_watch_frames(service, &watch, &mut response, |bytes| {
                output.write_all(bytes)?;
                output.flush()
            })?;
        }
        if outcome.shutdown {
            break;
        }
    }
    Ok(())
}

/// Drive one `watch` session on a blocking pipe transport: every
/// interval, snapshot the telemetry into a frame (owned values, no
/// service lock) and hand the bytes to `emit`. The inter-frame sleep
/// rides [`ValidationService::wait_shutdown_timeout`], so a shutdown
/// requested anywhere interrupts it immediately instead of at a poll
/// cadence. Ends after the requested frame count, on shutdown, or when
/// `emit` fails (client gone). (TCP watch streams don't come through
/// here — the event loop paces them off its timer heap.)
fn stream_watch_frames(
    service: &ValidationService,
    params: &WatchParams,
    buf: &mut String,
    mut emit: impl FnMut(&[u8]) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let start = Instant::now();
    let mut frame = 0u64;
    loop {
        if let Some(max) = params.frames {
            if frame >= max {
                return Ok(());
            }
        }
        if service.wait_shutdown_timeout(params.interval) {
            return Ok(());
        }
        render_watch_frame(service, params, frame, start.elapsed(), buf);
        buf.push('\n');
        emit(buf.as_bytes())?;
        frame += 1;
    }
}

/// Serve the process's stdin/stdout until EOF or shutdown.
pub fn serve_stdin(service: &ValidationService) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

/// Listen on `addr` and serve connections through the event loop, all
/// sharing one service. Returns the bound local address via the callback
/// (useful with port 0), and runs until a client sends `shutdown` or
/// [`ValidationService::request_shutdown`] is called — idle connections
/// cannot delay the exit (the shutdown waker interrupts the poller
/// immediately).
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<ValidationService>,
    addr: A,
    mut on_bound: impl FnMut(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    serve_listener(service, std_listener(listener)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use crate::protocol::response_ok;
    use std::io::Cursor;
    use std::time::Duration;

    #[test]
    fn serve_lines_round_trips_a_session() {
        let service = ValidationService::new(ServiceConfig::default());
        let input = concat!(
            r#"{"op":"ping"}"#,
            "\n",
            "\n", // blank lines are skipped
            r#"{"op":"ingest","columns":[{"name":"c","values":["00:01:02","03:04:05","06:07:08"]}]}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"ping"}"#, // never reached: shutdown broke the loop
            "\n",
        );
        let mut out = Vec::new();
        serve_lines(&service, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines.iter().all(|l| response_ok(l)), "{text}");
        assert!(service.is_shutdown());
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 31);
        let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
        service.ingest(&columns).unwrap();
        let train: Vec<String> = (1..=28).map(|d| format!("2020-01-{d:02}")).collect();
        service.infer_rule("dates", &train, None).unwrap();

        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let req = format!(
                        r#"{{"op":"validate","rule":"dates","values":["2020-02-{:02}"]}}"#,
                        i + 1
                    );
                    stream.write_all(req.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut line = String::new();
                    BufReader::new(stream).read_line(&mut line).unwrap();
                    assert!(response_ok(&line), "{line}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }

        // An idle client that never sends anything must not be able to
        // delay shutdown (the reactor closes it on the way out).
        let idle = TcpStream::connect(addr).unwrap();

        // One more client shuts the server down.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        drop(idle);
        assert_eq!(service.stats().validations, 4);
        assert_eq!(service.stats().connection_errors, 0);
    }

    /// The regression for the unbounded `read_line`: a client streaming an
    /// oversized frame (no newline) gets a protocol error and is
    /// disconnected — the server buffers at most `max_request_bytes`.
    #[test]
    fn oversized_request_line_is_rejected_and_connection_closed() {
        use std::io::{BufRead, BufReader, Read, Write};
        use std::net::TcpStream;

        let config = ServiceConfig {
            max_request_bytes: 512,
            ..Default::default()
        };
        let service = Arc::new(ValidationService::new(config));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        // One 700-byte burst of 'a' with no newline — beyond the 512-byte
        // cap, small enough that the server's first buffered read drains
        // the whole frame (so its close is a clean FIN the client can
        // read the error response past).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[b'a'; 700]).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!response_ok(&line), "{line}");
        assert!(line.contains("exceeds 512 bytes"), "{line}");
        // The server hung up: the next read hits EOF (or a reset if the
        // stacks raced — either way, no more data).
        let mut rest = Vec::new();
        let drained = reader.read_to_end(&mut rest);
        assert!(drained.is_err() || rest.is_empty());

        // A well-behaved client on a fresh connection still gets served.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(response_ok(&line), "{line}");

        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        server.join().unwrap().unwrap();
        // The oversized connection was counted as a protocol error.
        assert_eq!(service.stats().connection_errors, 1);
    }

    /// Non-UTF-8 request bytes get a protocol error, close the
    /// connection, and count as a connection error.
    #[test]
    fn invalid_utf8_request_is_counted_as_connection_error() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xff, 0xfe, 0xc0, b'\n']).unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(!response_ok(&line), "{line}");
        assert!(line.contains("utf-8"), "{line}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        assert_eq!(service.stats().connection_errors, 1);
    }

    /// Pipelining: many frames written in one burst all get answered, in
    /// request order, on one connection.
    #[test]
    fn pipelined_frames_are_answered_in_order() {
        use crate::json::Json;
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let service = Arc::new(ValidationService::new(ServiceConfig::default()));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for i in 0..32 {
            burst.push_str(&format!("{{\"op\":\"classify\",\"value\":\"v{i}\"}}\n"));
        }
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..32 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(response_ok(&line), "frame {i}: {line}");
            let v = crate::json::parse(&line).unwrap();
            let results = v.get("results").unwrap().as_arr().unwrap();
            assert_eq!(
                results[0].get("value").and_then(Json::as_str),
                Some(format!("v{i}").as_str()),
                "{line}"
            );
        }

        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(response_ok(&line));
        server.join().unwrap().unwrap();
        assert_eq!(service.stats().classifications, 32);
        assert_eq!(service.stats().requests_shed, 0);
        assert_eq!(service.stats().connection_errors, 0);
    }

    /// Admission control: connections past `max_connections` get one
    /// `overloaded` frame and are turned away; closing an admitted
    /// connection frees its slot.
    #[test]
    fn admission_control_rejects_connections_over_the_cap() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let config = ServiceConfig {
            max_connections: 2,
            ..Default::default()
        };
        let service = Arc::new(ValidationService::new(config));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                serve_tcp(service, ("127.0.0.1", 0), move |a| {
                    addr_tx.send(a).unwrap();
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();

        // Fill both slots with live sessions.
        let mut keep = Vec::new();
        for _ in 0..2 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(response_ok(&line), "{line}");
            keep.push(stream);
        }

        // The third connection is rejected with an overloaded frame.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!response_ok(&line), "{line}");
        assert!(line.contains("\"overloaded\":true"), "{line}");
        // And then closed.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "{rest}");

        // Freeing a slot re-admits new connections.
        drop(keep.pop());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            if response_ok(&line) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "slot never freed: {line}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        service.request_shutdown();
        server.join().unwrap().unwrap();
        assert!(service.stats().connections_rejected >= 1);
    }
}
