//! The event-driven serve loop: one reactor thread owning every socket,
//! a fixed worker pool fed by a bounded run queue, and deterministic
//! overload behavior (admission control, pipelining caps, backpressure,
//! idle and stall shedding).
//!
//! ## Division of labor
//!
//! The **reactor** is the only thread that reads or writes sockets. It
//! accepts connections, splits request bytes into frames, hands one
//! frame per connection at a time to the run queue, copies finished
//! responses into per-connection write buffers, paces `watch` streams
//! off a timer heap, and enforces every deadline. **Workers** only pop
//! `(connection, line)` jobs, run the protocol handler, and push the
//! rendered response onto a completion queue, waking the reactor
//! through the poller. Because responses reach the socket solely via
//! the reactor appending whole frames to one buffer, response frames
//! cannot tear or interleave no matter how faulty the transport is.
//!
//! ## Overload ladder
//!
//! 1. *Admission*: past `max_connections`, a new connection gets one
//!    `overloaded` frame and is closed (`connections_rejected`).
//! 2. *Pipelining cap*: frames parsed past [`PIPELINE_CAP`] per
//!    connection are answered `overloaded` in order (`requests_shed`);
//!    reading pauses at the cap so the cap is only exceeded by frames
//!    already inside one read burst.
//! 3. *Write backpressure*: past [`WRITE_HIGH_WATER`] buffered response
//!    bytes, the reactor stops polling the connection readable (and
//!    stops rendering its watch frames) until the peer drains below
//!    [`WRITE_LOW_WATER`].
//! 4. *Deadlines*: zero drain progress for `stall_deadline_ms` sheds
//!    the connection (`stalls_shed`); no request bytes for
//!    `idle_timeout_ms` closes it cleanly.

use super::conn::{
    Conn, Flush, PendingFrame, WatchState, PIPELINE_CAP, WRITE_HIGH_WATER, WRITE_LOW_WATER,
};
use super::netfault::NetListener;
use crate::engine::ValidationService;
use crate::protocol::{handle_line_into, render_error_into, render_overloaded_into};
use polling::{Event, Poller};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Poller key of the listening socket (connections start at 1).
const LISTENER_KEY: usize = 0;

/// Upper bound between idle/stall deadline scans. Watch frames are paced
/// exactly (their due times bound the poll timeout); deadlines measured
/// in seconds only need this much precision.
const TIMER_SCAN: Duration = Duration::from_millis(50);

/// How long shutdown keeps flushing buffered responses (the `shutdown`
/// ack among them) before abandoning undrained connections.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Bytes per read attempt.
const READ_CHUNK: usize = 8192;

/// Vet one complete line into the pipeline (or arm a fatal error).
fn accept_frame(
    pending: &mut VecDeque<PendingFrame>,
    fatal: &mut Option<String>,
    line: &[u8],
    max_request: usize,
) {
    if line.len() > max_request {
        *fatal = Some(format!("request line exceeds {max_request} bytes"));
        return;
    }
    let Ok(text) = std::str::from_utf8(line) else {
        *fatal = Some("request line is not valid utf-8".to_string());
        return;
    };
    if text.trim().is_empty() {
        return;
    }
    if pending.len() >= PIPELINE_CAP {
        pending.push_back(PendingFrame::Shed);
    } else {
        pending.push_back(PendingFrame::Line(text.to_string()));
    }
}

/// A frame on its way to a worker.
struct Job {
    key: usize,
    line: String,
}

/// A rendered response on its way back to the reactor.
struct Completion {
    key: usize,
    response: String,
    shutdown: bool,
    watch: Option<crate::protocol::WatchParams>,
}

/// Run queue (reactor → workers) and completion queue (workers →
/// reactor) in one shared bundle.
struct Queues {
    jobs: Mutex<JobQueue>,
    job_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
}

struct JobQueue {
    queue: VecDeque<Job>,
    closed: bool,
}

impl Queues {
    fn new() -> Queues {
        Queues {
            jobs: Mutex::new(JobQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
            job_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
        }
    }

    /// Enqueue unless the queue is at `cap`; `false` means shed.
    fn push_job(&self, job: Job, cap: usize) -> bool {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if jobs.queue.len() >= cap {
            return false;
        }
        jobs.queue.push_back(job);
        drop(jobs);
        self.job_ready.notify_one();
        true
    }

    /// Worker side: next job, or `None` once the queue closes (remaining
    /// jobs are abandoned — their connections are being torn down).
    fn pop_job(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if jobs.closed {
                return None;
            }
            if let Some(job) = jobs.queue.pop_front() {
                return Some(job);
            }
            jobs = self.job_ready.wait(jobs).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.job_ready.notify_all();
    }

    fn push_completion(&self, done: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(done);
    }

    fn drain_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut self.completions.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Worker threads for the serve loop: the configured count, else two
/// (even on one core, a second worker keeps a long request from
/// head-of-line-blocking every other connection).
fn worker_count(service: &ValidationService) -> usize {
    let configured = service.config().workers;
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2)
    }
}

fn worker_loop(service: &ValidationService, queues: &Queues, poller: &Poller) {
    let mut response = String::new();
    while let Some(job) = queues.pop_job() {
        let outcome = handle_line_into(service, &job.line, &mut response);
        queues.push_completion(Completion {
            key: job.key,
            response: std::mem::take(&mut response),
            shutdown: outcome.shutdown,
            watch: outcome.watch,
        });
        let _ = poller.notify();
    }
}

/// Everything the reactor mutates, bundled so helpers can borrow it as
/// one unit.
struct Reactor<'a> {
    service: &'a ValidationService,
    poller: Arc<Poller>,
    queues: Arc<Queues>,
    conns: HashMap<usize, Conn>,
    /// Min-heap of (due, key, frame): when to emit each watch frame.
    watch_timers: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    next_key: usize,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    stall_deadline: Option<Duration>,
    run_queue_cap: usize,
    /// Reused render buffer for reactor-side frames (errors, overloads,
    /// watch frames).
    scratch: String,
}

impl Reactor<'_> {
    /// Close `key`: deregister, best-effort FIN, count errors.
    fn close_conn(&mut self, key: usize) {
        if let Some(mut conn) = self.conns.remove(&key) {
            let _ = self.poller.delete(conn.sock.raw_fd());
            conn.sock.shutdown_write();
            if conn.error {
                self.service.record_connection_error();
            }
        }
    }

    /// Accept until the listener has nothing pending. Transient accept
    /// failures are counted and survived; admission control rejects
    /// connections over the cap with one `overloaded` frame.
    fn accept_ready(&mut self, listener: &mut dyn NetListener, now: Instant) -> Vec<usize> {
        let mut touched = Vec::new();
        loop {
            match listener.accept() {
                Ok(Some(mut sock)) => {
                    if self.max_connections > 0 && self.conns.len() >= self.max_connections {
                        render_overloaded_into(
                            &format!(
                                "service at max_connections ({}); connection rejected",
                                self.max_connections
                            ),
                            &mut self.scratch,
                        );
                        self.scratch.push('\n');
                        // Best effort: one nonblocking write, then FIN.
                        let _ = sock.write(self.scratch.as_bytes());
                        sock.shutdown_write();
                        self.service.record_connection_rejected();
                        continue;
                    }
                    let key = self.next_key;
                    self.next_key += 1;
                    if self
                        .poller
                        .add(sock.raw_fd(), Event::readable(key))
                        .is_err()
                    {
                        self.service.record_connection_error();
                        continue;
                    }
                    self.conns.insert(key, Conn::new(sock, now));
                    touched.push(key);
                }
                Ok(None) => break,
                Err(_) => {
                    // Transient (possibly injected) accept failure: any
                    // still-pending connection re-reports on the next
                    // poll; the listener itself is fine.
                    self.service.record_connection_error();
                    break;
                }
            }
        }
        touched
    }

    /// Drain readable bytes and split them into pipeline frames.
    fn read_ready(&mut self, key: usize, now: Instant) {
        let max_request = self.service.config().max_request_bytes.max(1);
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if !conn.want_read() {
                return;
            }
            match conn.sock.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    self.parse_frames(key, max_request, true);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = now;
                    if let Some(bytes) = chunk.get(..n) {
                        conn.read_buf.extend_from_slice(bytes);
                    }
                    self.parse_frames(key, max_request, false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Reset mid-read: nothing more can be delivered.
                    if let Some(conn) = self.conns.get_mut(&key) {
                        conn.error = true;
                        conn.read_closed = true;
                        conn.close_after_flush = true;
                        conn.write_buf.clear();
                        conn.write_pos = 0;
                    }
                    return;
                }
            }
        }
    }

    /// Split `read_buf` into frames. Complete lines become pipeline
    /// entries ([`PendingFrame::Shed`] past the cap); an overlong or
    /// non-UTF-8 line arms the connection's fatal error instead. At EOF
    /// a trailing unterminated line is served as the final frame.
    fn parse_frames(&mut self, key: usize, max_request: usize, at_eof: bool) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        // Split borrows: line slices borrow `read_buf` while frames are
        // vetted into `pending`/`fatal`.
        let read_buf = &mut conn.read_buf;
        let pending = &mut conn.pending;
        let fatal = &mut conn.fatal;
        let mut start = 0;
        while fatal.is_none() {
            let Some(tail) = read_buf.get(start..) else {
                break;
            };
            let Some(pos) = tail.iter().position(|b| *b == b'\n') else {
                break;
            };
            let Some(line) = tail.get(..pos) else {
                break;
            };
            accept_frame(pending, fatal, line, max_request);
            start += pos + 1;
        }
        read_buf.drain(..start);
        if fatal.is_none() && read_buf.len() > max_request {
            *fatal = Some(format!("request line exceeds {max_request} bytes"));
            read_buf.clear();
        }
        if at_eof && fatal.is_none() && !read_buf.is_empty() {
            let line = std::mem::take(read_buf);
            accept_frame(pending, fatal, &line, max_request);
        }
    }

    /// Drive one connection forward after anything happened to it:
    /// answer shed frames, dispatch the next frame to the run queue,
    /// surface a deferred fatal error, flush, close when complete, and
    /// re-register interest. Idempotent — safe to call repeatedly.
    fn advance(&mut self, key: usize, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            // Dispatch while the connection is executable: not waiting
            // on a worker, not mid-watch, not closing.
            if conn.in_flight || conn.watch.is_some() || conn.close_after_flush {
                break;
            }
            match conn.pending.pop_front() {
                Some(PendingFrame::Shed) => {
                    render_overloaded_into(
                        &format!("pipeline full ({PIPELINE_CAP} frames queued); request shed"),
                        &mut self.scratch,
                    );
                    let frame = std::mem::take(&mut self.scratch);
                    conn.queue_frame(&frame, now);
                    self.scratch = frame;
                    self.service.record_requests_shed(1);
                    continue;
                }
                Some(PendingFrame::Line(line)) => {
                    conn.in_flight = true;
                    if !self.queues.push_job(Job { key, line }, self.run_queue_cap) {
                        // Run queue full: answer this frame overloaded
                        // and keep going — the connection stays up.
                        let Some(conn) = self.conns.get_mut(&key) else {
                            return;
                        };
                        conn.in_flight = false;
                        render_overloaded_into("run queue full; request shed", &mut self.scratch);
                        let frame = std::mem::take(&mut self.scratch);
                        conn.queue_frame(&frame, now);
                        self.scratch = frame;
                        self.service.record_requests_shed(1);
                    }
                    continue;
                }
                None => {
                    // Pipeline empty: a deferred fatal error is now next
                    // in response order.
                    if let Some(message) = conn.fatal.take() {
                        render_error_into(&message, &mut self.scratch);
                        let frame = std::mem::take(&mut self.scratch);
                        conn.queue_frame(&frame, now);
                        self.scratch = frame;
                        conn.error = true;
                        conn.close_after_flush = true;
                    }
                    break;
                }
            }
        }

        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.backlog() > 0 {
            if let Flush::Failed = conn.flush(now) {
                conn.error = true;
                self.close_conn(key);
                return;
            }
        }
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.is_complete() {
            self.close_conn(key);
            return;
        }
        // Hysteresis on the read side of backpressure: once paused for a
        // full buffer, stay paused until the peer drains below the low
        // watermark.
        let mut desired = conn.desired_interest(key);
        if desired.readable
            && !conn.registered.0
            && conn.backlog() >= WRITE_LOW_WATER
            && conn.backlog() < WRITE_HIGH_WATER
        {
            desired.readable = false;
        }
        if (desired.readable, desired.writable) != conn.registered
            && self.poller.modify(conn.sock.raw_fd(), desired).is_ok()
        {
            conn.registered = (desired.readable, desired.writable);
        }
    }

    /// Emit due watch frames; returns the touched keys.
    fn fire_watch_timers(&mut self, now: Instant) -> Vec<usize> {
        let mut touched = Vec::new();
        while let Some(&Reverse((due, key, frame))) = self.watch_timers.peek() {
            if due > now {
                break;
            }
            self.watch_timers.pop();
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            let Some(ws) = conn.watch.as_ref() else {
                continue;
            };
            if ws.frame != frame {
                continue; // stale entry from a superseded stream
            }
            let params = ws.params.clone();
            let elapsed = ws.started.elapsed();
            if conn.backlog() >= WRITE_HIGH_WATER {
                // Peer is not draining: skip this tick (frame numbers
                // stay consecutive; the stream just pauses) and check
                // again one interval later.
                self.watch_timers
                    .push(Reverse((due + params.interval, key, frame)));
                continue;
            }
            crate::protocol::render_watch_frame(
                self.service,
                &params,
                frame,
                elapsed,
                &mut self.scratch,
            );
            let rendered = std::mem::take(&mut self.scratch);
            conn.queue_frame(&rendered, now);
            self.scratch = rendered;
            let Some(ws) = conn.watch.as_mut() else {
                continue;
            };
            ws.frame += 1;
            let done = ws.params.frames.is_some_and(|max| ws.frame >= max);
            if done {
                conn.watch = None;
            } else {
                self.watch_timers
                    .push(Reverse((due + params.interval, key, ws.frame)));
            }
            touched.push(key);
        }
        touched
    }

    /// Enforce idle and stall deadlines over every connection.
    fn enforce_deadlines(&mut self, now: Instant) {
        let mut shed_stalled = Vec::new();
        let mut close_idle = Vec::new();
        for (&key, conn) in &self.conns {
            if let (Some(deadline), Some(since)) = (self.stall_deadline, conn.stalled_since) {
                if now.duration_since(since) >= deadline {
                    shed_stalled.push(key);
                    continue;
                }
            }
            if let Some(idle) = self.idle_timeout {
                let quiescent = conn.watch.is_none()
                    && !conn.in_flight
                    && conn.pending.is_empty()
                    && conn.backlog() == 0;
                if quiescent && now.duration_since(conn.last_activity) >= idle {
                    close_idle.push(key);
                }
            }
        }
        for key in shed_stalled {
            // The peer stopped draining: count it both as a shed and as
            // a connection error (responses were lost with it).
            self.service.record_stall_shed();
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.error = true;
            }
            self.close_conn(key);
        }
        for key in close_idle {
            // A clean goodbye: nothing pending, nothing owed.
            self.close_conn(key);
        }
    }

    /// Apply finished worker responses to their connections.
    fn apply_completions(&mut self, now: Instant) -> Vec<usize> {
        let mut touched = Vec::new();
        for done in self.queues.drain_completions() {
            let Some(conn) = self.conns.get_mut(&done.key) else {
                continue; // connection closed while its frame executed
            };
            conn.in_flight = false;
            conn.queue_frame(&done.response, now);
            if done.shutdown {
                conn.close_after_flush = true;
            }
            if let Some(params) = done.watch {
                let started = now;
                self.watch_timers
                    .push(Reverse((started + params.interval, done.key, 0)));
                conn.watch = Some(WatchState {
                    params,
                    started,
                    frame: 0,
                });
            }
            touched.push(done.key);
        }
        touched
    }

    /// The poll timeout: the next watch frame's due time, capped by the
    /// deadline-scan cadence while connections exist; unbounded when
    /// there is nothing to time.
    fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        let next_watch = self
            .watch_timers
            .peek()
            .map(|Reverse((due, _, _))| due.saturating_duration_since(now));
        let scan = (!self.conns.is_empty()).then_some(TIMER_SCAN);
        match (next_watch, scan) {
            (Some(w), Some(s)) => Some(w.min(s)),
            (Some(w), None) => Some(w),
            (None, scan) => scan,
        }
    }
}

/// Serve JSONL connections from `listener` until a `shutdown` op (or
/// [`ValidationService::request_shutdown`]). This is the event-loop core
/// behind [`super::serve_tcp`], public so tests can drive it through a
/// fault-injecting [`super::FaultListener`].
pub fn serve_listener(
    service: Arc<ValidationService>,
    mut listener: Box<dyn NetListener>,
) -> io::Result<()> {
    let poller = Arc::new(Poller::new()?);
    poller.add(listener.raw_fd(), Event::readable(LISTENER_KEY))?;
    {
        let waker = Arc::clone(&poller);
        service.register_shutdown_waker(Box::new(move || {
            let _ = waker.notify();
        }));
    }

    let queues = Arc::new(Queues::new());
    let workers: Vec<_> = (0..worker_count(&service))
        .map(|_| {
            let service = Arc::clone(&service);
            let queues = Arc::clone(&queues);
            let poller = Arc::clone(&poller);
            std::thread::spawn(move || worker_loop(&service, &queues, &poller))
        })
        .collect();

    let config = service.config();
    let max_connections = config.max_connections;
    let run_queue_cap = if max_connections > 0 {
        max_connections.max(64)
    } else {
        usize::MAX
    };
    let mut reactor = Reactor {
        service: &service,
        poller: Arc::clone(&poller),
        queues: Arc::clone(&queues),
        conns: HashMap::new(),
        watch_timers: BinaryHeap::new(),
        next_key: 1,
        max_connections,
        idle_timeout: (config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(config.idle_timeout_ms)),
        stall_deadline: (config.stall_deadline_ms > 0)
            .then(|| Duration::from_millis(config.stall_deadline_ms)),
        run_queue_cap,
        scratch: String::new(),
    };

    let mut events: Vec<Event> = Vec::new();
    let mut last_scan = Instant::now();
    while !service.is_shutdown() {
        let timeout = reactor.poll_timeout(Instant::now());
        poller.wait(&mut events, timeout)?;
        let now = Instant::now();

        let mut touched = reactor.apply_completions(now);
        for &ev in &events {
            if ev.key == LISTENER_KEY {
                touched.extend(reactor.accept_ready(listener.as_mut(), now));
                continue;
            }
            if ev.readable {
                reactor.read_ready(ev.key, now);
            }
            touched.push(ev.key);
        }
        touched.extend(reactor.fire_watch_timers(now));
        for key in touched {
            reactor.advance(key, now);
        }
        if now.duration_since(last_scan) >= TIMER_SCAN {
            last_scan = now;
            reactor.enforce_deadlines(now);
        }
    }

    // Shutdown. Workers first, so every response they already produced
    // (the shutdown ack among them) reaches a write buffer before the
    // flush grace starts.
    queues.close();
    for worker in workers {
        // av-guard: allow(G5, reason = "shutdown join: the event loop has exited and the run queue is closed, so nothing is left to stall")
        let _ = worker.join();
    }
    let _ = poller.delete(listener.raw_fd());
    let now = Instant::now();
    for key in reactor.apply_completions(now) {
        if let Some(conn) = reactor.conns.get_mut(&key) {
            let _ = conn.flush(now);
        }
    }
    // Connections owing nothing close immediately; the rest get a
    // bounded grace to drain.
    let owed: Vec<usize> = reactor.conns.keys().copied().collect();
    let mut draining = Vec::new();
    for key in owed {
        let Some(conn) = reactor.conns.get_mut(&key) else {
            continue;
        };
        if conn.backlog() == 0 {
            reactor.close_conn(key);
        } else if poller
            .modify(conn.sock.raw_fd(), Event::writable(key))
            .is_ok()
        {
            conn.registered = (false, true);
            draining.push(key);
        }
    }
    let grace_deadline = now + SHUTDOWN_FLUSH_GRACE;
    while !draining.is_empty() {
        let now = Instant::now();
        if now >= grace_deadline {
            break;
        }
        poller.wait(&mut events, Some((grace_deadline - now).min(TIMER_SCAN)))?;
        let now = Instant::now();
        draining.retain(|&key| {
            let Some(conn) = reactor.conns.get_mut(&key) else {
                return false;
            };
            match conn.flush(now) {
                Flush::Drained => {
                    reactor.close_conn(key);
                    false
                }
                Flush::Blocked => true,
                Flush::Failed => {
                    conn.error = true;
                    reactor.close_conn(key);
                    false
                }
            }
        });
    }
    // Whatever still owes bytes is abandoned: the peer stopped reading
    // through shutdown. Count those as connection errors.
    let leftover: Vec<usize> = reactor.conns.keys().copied().collect();
    for key in leftover {
        if let Some(conn) = reactor.conns.get_mut(&key) {
            conn.error = true;
        }
        reactor.close_conn(key);
    }
    Ok(())
}
