//! Per-connection state for the event loop: buffered reads, a pipeline
//! of parsed frames, buffered writes with watermarks, and the clocks
//! that drive idle/stall shedding.
//!
//! A connection moves through four logical phases — reading a frame,
//! executing (a worker holds one of its frames), draining response
//! bytes, streaming `watch` frames — but the phases overlap by design:
//! pipelined frames queue while one executes, and the write buffer
//! drains whenever the socket accepts bytes, whatever else is going on.
//! All mutation happens on the reactor thread; workers never touch a
//! connection (they return completions through a queue), which is what
//! makes "no torn response frame" true by construction: one writer,
//! whole frames in, byte order out.

use super::netfault::NetSocket;
use crate::protocol::WatchParams;
use polling::Event;
use std::collections::VecDeque;
use std::io;
use std::time::Instant;

/// Most request frames a connection may have parsed-but-unexecuted. A
/// client pipelining past this gets `overloaded` replies for the excess
/// (see `ServiceStats::requests_shed`).
pub(crate) const PIPELINE_CAP: usize = 128;

/// Write buffer size above which the connection stops reading new
/// requests and stops rendering watch frames until the peer drains.
pub(crate) const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Write buffer size at which a backpressured connection resumes
/// reading (hysteresis so interest doesn't flap per byte).
pub(crate) const WRITE_LOW_WATER: usize = 64 * 1024;

/// One parsed request frame waiting its turn in the pipeline.
pub(crate) enum PendingFrame {
    /// A frame to hand to a worker.
    Line(String),
    /// A frame that arrived past the pipeline cap: it is answered with
    /// an `overloaded` error *in request order* when its turn comes —
    /// shed replies never jump the response queue.
    Shed,
}

/// Live `watch` stream state (the ack already went out).
pub(crate) struct WatchState {
    pub(crate) params: WatchParams,
    /// When the stream started (frame timestamps are relative to this).
    pub(crate) started: Instant,
    /// Next frame number to emit.
    pub(crate) frame: u64,
}

/// One connection, owned by the reactor.
pub(crate) struct Conn {
    pub(crate) sock: Box<dyn NetSocket>,
    /// Raw request bytes not yet split into frames.
    pub(crate) read_buf: Vec<u8>,
    /// Peer sent FIN (a trailing unterminated line was already promoted
    /// to a frame).
    pub(crate) read_closed: bool,
    /// Parsed frames waiting to execute, oldest first.
    pub(crate) pending: VecDeque<PendingFrame>,
    /// A worker currently holds one frame from this connection (at most
    /// one, which is what keeps pipelined responses in request order).
    pub(crate) in_flight: bool,
    /// Response bytes not yet accepted by the socket.
    pub(crate) write_buf: Vec<u8>,
    /// Consumed prefix of `write_buf` (compacted when fully drained).
    pub(crate) write_pos: usize,
    /// Interest bits currently registered with the poller.
    pub(crate) registered: (bool, bool),
    /// Close once `write_buf` drains (protocol error or shutdown ack).
    pub(crate) close_after_flush: bool,
    /// Count this connection in `connection_errors` when it closes.
    pub(crate) error: bool,
    /// Last time request bytes arrived (idle clock).
    pub(crate) last_activity: Instant,
    /// Set while `write_buf` is nonempty: last time the socket accepted
    /// bytes (stall clock).
    pub(crate) stalled_since: Option<Instant>,
    /// Live watch stream, if any.
    pub(crate) watch: Option<WatchState>,
    /// A protocol-fatal condition (oversized or non-UTF-8 frame) waiting
    /// to be answered. Held back until earlier pipelined responses have
    /// gone out, so the error frame never jumps the queue; reading stops
    /// immediately.
    pub(crate) fatal: Option<String>,
}

/// What a flush attempt did.
pub(crate) enum Flush {
    /// Buffer drained completely (or was already empty).
    Drained,
    /// Socket stopped accepting bytes (the stall clock was reset if any
    /// were written first).
    Blocked,
    /// The socket failed hard (reset, broken pipe).
    Failed,
}

impl Conn {
    pub(crate) fn new(sock: Box<dyn NetSocket>, now: Instant) -> Conn {
        Conn {
            sock,
            read_buf: Vec::new(),
            read_closed: false,
            pending: VecDeque::new(),
            in_flight: false,
            write_buf: Vec::new(),
            write_pos: 0,
            registered: (true, false),
            close_after_flush: false,
            error: false,
            last_activity: now,
            stalled_since: None,
            watch: None,
            fatal: None,
        }
    }

    /// Unflushed response bytes.
    pub(crate) fn backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Queue one complete response frame (newline appended here), so the
    /// buffer only ever grows by whole frames.
    pub(crate) fn queue_frame(&mut self, frame: &str, now: Instant) {
        self.write_buf.extend_from_slice(frame.as_bytes());
        self.write_buf.push(b'\n');
        if self.stalled_since.is_none() {
            self.stalled_since = Some(now);
        }
    }

    /// Push buffered bytes into the socket until drained or blocked.
    pub(crate) fn flush(&mut self, now: Instant) -> Flush {
        let mut progressed = false;
        while let Some(bytes) = self.write_buf.get(self.write_pos..) {
            if bytes.is_empty() {
                break;
            }
            match self.sock.write(bytes) {
                Ok(0) => return Flush::Failed,
                Ok(n) => {
                    self.write_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if progressed {
                        self.stalled_since = Some(now);
                    }
                    return Flush::Blocked;
                }
                Err(_) => return Flush::Failed,
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        self.stalled_since = None;
        Flush::Drained
    }

    /// Should the reactor poll this connection readable? Not once the
    /// peer closed or we decided to close; paused while the pipeline or
    /// the write buffer is full (backpressure — the kernel's receive
    /// buffer then pushes back on the peer).
    pub(crate) fn want_read(&self) -> bool {
        !self.read_closed
            && !self.close_after_flush
            && self.fatal.is_none()
            && self.pending.len() < PIPELINE_CAP
            && self.backlog() < WRITE_HIGH_WATER
    }

    /// Should the reactor poll this connection writable?
    pub(crate) fn want_write(&self) -> bool {
        self.backlog() > 0
    }

    /// The interest to register for `key` right now.
    pub(crate) fn desired_interest(&self, key: usize) -> Event {
        Event {
            key,
            readable: self.want_read(),
            writable: self.want_write(),
        }
    }

    /// Nothing left to do on this connection. Once `close_after_flush`
    /// is set, draining the write buffer is all that remains (unexecuted
    /// pipelined frames are dropped, as they were after a `shutdown` op
    /// in the thread-per-connection loop); otherwise the peer must have
    /// finished sending and every stage must be empty.
    pub(crate) fn is_complete(&self) -> bool {
        if self.close_after_flush {
            return self.backlog() == 0;
        }
        self.read_closed
            && !self.in_flight
            && self.pending.is_empty()
            && self.fatal.is_none()
            && self.backlog() == 0
            && self.watch.is_none()
    }
}
