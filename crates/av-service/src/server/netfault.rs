//! Transport abstraction + deterministic socket fault injection.
//!
//! The event loop never touches `TcpStream`/`TcpListener` directly; it
//! drives [`NetSocket`]/[`NetListener`] trait objects. Production code
//! wraps the real std types ([`std_listener`]); chaos tests wrap them
//! again in [`FaultListener`]/[`FaultSocket`], which share a global
//! socket-op counter and inject one scripted fault at the Nth op — the
//! transport twin of `av_durable::FaultPlan`'s storage faults.
//!
//! Faults are injected **at the shim**, before the real syscall, so the
//! underlying descriptor stays healthy and pollable: an injected
//! `WouldBlock` looks exactly like a socket that wasn't ready (the
//! level-triggered poller simply reports it again), a short I/O clamps
//! progress to one byte, and a reset kills that socket's shim without
//! tearing bytes already on the wire.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A nonblocking byte stream the event loop can poll by fd.
pub trait NetSocket: Send {
    /// Nonblocking read; `Ok(0)` is EOF, `WouldBlock` means try later.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Nonblocking write; `WouldBlock` means the kernel buffer is full.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// The pollable descriptor (stable for the socket's lifetime).
    fn raw_fd(&self) -> i32;
    /// Best-effort FIN so buffered response bytes drain as a graceful
    /// close instead of a reset.
    fn shutdown_write(&mut self);
}

/// A nonblocking listener the event loop can poll by fd.
pub trait NetListener: Send {
    /// Accept one pending connection, already switched to nonblocking;
    /// `Ok(None)` when none is pending. An `Err` is a transient accept
    /// failure — the serve loop counts it and keeps listening.
    fn accept(&mut self) -> io::Result<Option<Box<dyn NetSocket>>>;
    /// The pollable descriptor.
    fn raw_fd(&self) -> i32;
    /// The bound local address.
    fn local_addr(&self) -> io::Result<SocketAddr>;
}

struct StdSocket(TcpStream);

impl NetSocket for StdSocket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.0, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.0, buf)
    }
    fn raw_fd(&self) -> i32 {
        self.0.as_raw_fd()
    }
    fn shutdown_write(&mut self) {
        let _ = self.0.shutdown(std::net::Shutdown::Write);
    }
}

struct StdListener(TcpListener);

impl NetListener for StdListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn NetSocket>>> {
        match self.0.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(true)?;
                Ok(Some(Box::new(StdSocket(stream))))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
    fn raw_fd(&self) -> i32 {
        self.0.as_raw_fd()
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.0.local_addr()
    }
}

/// Wrap a bound std listener for [`crate::serve_listener`]. The listener
/// is switched to nonblocking mode here.
pub fn std_listener(listener: TcpListener) -> io::Result<Box<dyn NetListener>> {
    listener.set_nonblocking(true)?;
    Ok(Box::new(StdListener(listener)))
}

/// What a [`NetFaultPlan`] injects when the op counter hits its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Ops in the fault window make one byte of progress per call —
    /// deterministic short reads and short writes (frames arrive and
    /// drain in fragments; accepts pass through).
    ShortIo,
    /// Ops in the fault window spuriously report `WouldBlock` (an EAGAIN
    /// storm; accepts report "nothing pending").
    Eagain,
    /// The op at the fault index fails with `ConnectionReset`: a socket
    /// hit mid-read or mid-write is dead from then on (every later op on
    /// it also resets); a listener hit at an accept fails that one
    /// accept and recovers.
    Reset,
}

/// How many consecutive ops a [`FaultKind::ShortIo`]/[`FaultKind::Eagain`]
/// window covers. A single spurious `WouldBlock` is invisible to a
/// retrying event loop; a storm of them is the interesting case.
pub const FAULT_WINDOW_OPS: u64 = 8;

/// Deterministic transport fault plan: one global counter over **all**
/// socket ops (reads, writes, accepts, across every connection), one
/// scripted fault at a chosen index. Clone freely — clones share the
/// counter, which is what lets a multi-connection workload interleave
/// naturally while the Nth op, whoever issues it, takes the fault.
#[derive(Clone)]
pub struct NetFaultPlan {
    ops: Arc<AtomicU64>,
    fault_at: u64,
    kind: FaultKind,
}

impl NetFaultPlan {
    /// A plan injecting `kind` at global socket-op `index` (0-based).
    pub fn fault_at(index: u64, kind: FaultKind) -> NetFaultPlan {
        NetFaultPlan {
            ops: Arc::new(AtomicU64::new(0)),
            fault_at: index,
            kind,
        }
    }

    /// A plan that never faults — the reference run that measures how
    /// many socket ops a scripted workload performs.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan {
            ops: Arc::new(AtomicU64::new(0)),
            fault_at: u64::MAX,
            kind: FaultKind::Reset,
        }
    }

    /// Socket ops executed so far under this plan.
    pub fn ops_executed(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Count one op; `Some(kind)` when it falls in the fault window.
    fn gate(&self) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let hit = match self.kind {
            FaultKind::Reset => op == self.fault_at,
            FaultKind::ShortIo | FaultKind::Eagain => {
                op >= self.fault_at && op < self.fault_at.saturating_add(FAULT_WINDOW_OPS)
            }
        };
        hit.then_some(self.kind)
    }
}

fn eagain() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "injected EAGAIN")
}

fn reset() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

/// A [`NetSocket`] that runs every op through a [`NetFaultPlan`] gate
/// before touching the wrapped socket.
pub struct FaultSocket {
    inner: Box<dyn NetSocket>,
    plan: NetFaultPlan,
    /// Set once a `Reset` fires on this socket: it is dead for good.
    dead: bool,
}

impl FaultSocket {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Box<dyn NetSocket>, plan: NetFaultPlan) -> FaultSocket {
        FaultSocket {
            inner,
            plan,
            dead: false,
        }
    }
}

impl NetSocket for FaultSocket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset());
        }
        match self.plan.gate() {
            Some(FaultKind::Eagain) => Err(eagain()),
            Some(FaultKind::Reset) => {
                self.dead = true;
                Err(reset())
            }
            Some(FaultKind::ShortIo) => {
                let n = buf.len().min(1);
                match buf.get_mut(..n) {
                    Some(short) => self.inner.read(short),
                    None => Ok(0),
                }
            }
            None => self.inner.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset());
        }
        match self.plan.gate() {
            Some(FaultKind::Eagain) => Err(eagain()),
            Some(FaultKind::Reset) => {
                self.dead = true;
                Err(reset())
            }
            Some(FaultKind::ShortIo) => match buf.get(..buf.len().min(1)) {
                Some(short) => self.inner.write(short),
                None => Ok(0),
            },
            None => self.inner.write(buf),
        }
    }

    fn raw_fd(&self) -> i32 {
        self.inner.raw_fd()
    }

    fn shutdown_write(&mut self) {
        self.inner.shutdown_write();
    }
}

/// A [`NetListener`] that gates accepts through a [`NetFaultPlan`] and
/// wraps every accepted socket in a [`FaultSocket`] sharing the plan.
pub struct FaultListener {
    inner: Box<dyn NetListener>,
    plan: NetFaultPlan,
}

impl FaultListener {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Box<dyn NetListener>, plan: NetFaultPlan) -> FaultListener {
        FaultListener { inner, plan }
    }

    /// Bind a TCP listener on `addr` with every socket op gated by `plan`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        plan: NetFaultPlan,
    ) -> io::Result<FaultListener> {
        let listener = TcpListener::bind(addr)?;
        Ok(FaultListener::new(std_listener(listener)?, plan))
    }
}

impl NetListener for FaultListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn NetSocket>>> {
        match self.plan.gate() {
            // The pending connection is not consumed — the level-triggered
            // poller reports the listener again and a later accept gets it.
            Some(FaultKind::Eagain) => Ok(None),
            Some(FaultKind::Reset) => Err(reset()),
            Some(FaultKind::ShortIo) | None => match self.inner.accept()? {
                Some(sock) => Ok(Some(Box::new(FaultSocket::new(sock, self.plan.clone())))),
                None => Ok(None),
            },
        }
    }

    fn raw_fd(&self) -> i32 {
        self.inner.raw_fd()
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}
