//! Minimal JSON support for the service protocol — hand-rolled because the
//! build environment is offline (no serde). Implements exactly RFC 8259
//! minus number exotica: parsing and serialization of null / bool / f64 /
//! string / array / object, with `\uXXXX` escapes (including surrogate
//! pairs).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted) — fine for a protocol.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as usize, if integral and exactly representable.
    /// Accepts `[0, min(2⁵³−1, usize::MAX)]`: every integer in that range
    /// round-trips through the `f64` this parser stores losslessly. From
    /// 2⁵³ on, consecutive integers stop being representable — 2⁵³ itself
    /// is excluded because a client's 2⁵³+1 rounds *onto* it, so accepting
    /// it would silently return a neighboring value.
    pub fn as_usize(&self) -> Option<usize> {
        /// Largest integer no other integer rounds onto: 2⁵³ − 1
        /// (JavaScript's `MAX_SAFE_INTEGER` convention).
        const MAX_EXACT: f64 = 9_007_199_254_740_991.0;
        // On 32-bit targets the type, not the float format, is the bound.
        let bound = MAX_EXACT.min(usize::MAX as f64);
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= bound => Some(*n as usize),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize to a compact single-line string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize into a caller-owned buffer (cleared first). Serve loops
    /// reuse one buffer across response lines, so steady-state responses
    /// cost no output allocation.
    pub fn dump_into(&self, out: &mut String) {
        out.clear();
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest-roundtrip float printing; integral values
                    // print without a fraction part.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the next escape must be a
                                // low surrogate, or the string is invalid.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))
                        .and_then(|s| s.chars().next().ok_or_else(|| self.err("empty")))?;
                    out.push(s);
                    self.pos += s.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"op":"validate","rule":"r1","values":["a\"b","x\\y","ünïcode",""],"n":3,"frac":0.25,"ok":true,"none":null,"nested":{"a":[1,2,3]}}"#;
        let v = parse(src).unwrap();
        let dumped = v.dump();
        assert_eq!(parse(&dumped).unwrap(), v);
        assert_eq!(v.get("op").unwrap().as_str(), Some("validate"));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("values").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é€😀""#).unwrap();
        assert_eq!(v, Json::Str("é€😀".to_string()));
        // \uXXXX escapes, including a surrogate pair for 😀 (U+1F600).
        assert_eq!(
            parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("é😀".to_string())
        );
        // Invalid surrogate sequences are rejected, not silently mangled.
        assert!(parse(r#""\ud800A""#).is_err(), "bad low surrogate");
        assert!(parse(r#""\ud800x""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(Json::Num(3.0).dump(), "3");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
    }

    /// `as_usize` accepts the whole exactly-representable integer range
    /// (up to 2⁵³ on 64-bit), not just `u32` — a 10-billion-column corpus
    /// counter must survive the protocol. Values parse → dump → parse
    /// losslessly at the boundaries.
    #[test]
    fn as_usize_covers_the_exact_f64_range() {
        const TWO_53: u64 = 1 << 53;
        // Above u32::MAX but well inside the exact range.
        for v in [
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            10_000_000_000,
            TWO_53 - 1,
        ] {
            let text = v.to_string();
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.as_usize(), Some(v as usize), "{v}");
            // dump → parse round-trip is lossless at the boundary.
            let dumped = parsed.dump();
            assert_eq!(parse(&dumped).unwrap().as_usize(), Some(v as usize), "{v}");
        }
        // From 2⁵³ on integers are no longer uniquely representable (a
        // client's 2⁵³+1 parses to the same f64 as 2⁵³): reject instead
        // of silently returning a neighboring value.
        assert_eq!(parse("9007199254740992").unwrap().as_usize(), None);
        assert_eq!(parse("9007199254740993").unwrap().as_usize(), None);
        assert_eq!(parse("9007199254740994").unwrap().as_usize(), None);
        assert_eq!(parse("18446744073709551616").unwrap().as_usize(), None);
        // Negative and fractional numbers still refuse.
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
    }
}
