//! The canonical lock-hierarchy document and the debug-build rank
//! tracker that enforces it.
//!
//! # The global lock hierarchy
//!
//! Every lock in the service stack has a rank; a thread may only acquire
//! locks in strictly ascending rank order. Ranks gap by 10 so future
//! locks can slot in without renumbering. **The machine-readable twin of
//! this table lives in `crates/av-guard/src/config.rs`** — the `G1`
//! static pass and its fixtures execute against that copy; change the
//! two together.
//!
//! | Rank | Lock | Where | Why this position |
//! |------|------|-------|-------------------|
//! | 10 | `ckpt` | `DurableState` | Serializes whole checkpoints; taken before the WAL fence so two checkpoints can never interleave their shard writes. |
//! | 20 | `wal` | `DurableState` | The WAL fence: the outermost lock of every durable mutating path. Holding it across the snapshot is what makes the checkpoint watermark exact. |
//! | 30 | `in_flight` | `DurableState` | Logged-but-unmerged LSNs, drained under the WAL fence before a watermark is declared. |
//! | 40 | `merge_locks` | `av-index::ShardedIndex` | Per-shard merge mutexes, taken in ascending shard order (a *multi* family: same-rank re-acquisition is the design). |
//! | 50 | `epoch` | `av-index::ShardedIndex` | The published index epoch, swapped while merge locks are held so readers never observe a half-merged epoch. |
//! | 60 | `baselines` | `ValidationService` | Session-scoped baseline rules. |
//! | 70 | `catalog` | `ValidationService` | The persistent rule catalog; written under the WAL fence on durable paths. |
//! | 80 | `classifier` | `ValidationService` | The catalog automaton — always innermost: it is rebuilt/patched *from* catalog state and must never wait on anything while held. |
//!
//! # The runtime tracker
//!
//! [`rank_guard`] pushes a rank onto a thread-local stack and
//! `debug_assert!`s that acquisition order ascends; dropping the guard
//! pops it. In release builds the guard is a zero-sized no-op. Lock
//! sites pair the rank guard with the lock guard in one tuple binding —
//!
//! ```ignore
//! let (_wal_rank, mut wal) = (rank_guard(WAL), d.wal.lock().expect("wal lock poisoned"));
//! ```
//!
//! — tuple evaluation order records the rank before blocking on the
//! lock, and the two guards leave scope together. Deliberately **not** a
//! `lock_wal()` helper method: the `.lock()` call must stay visible at
//! the call site for av-guard's `G1` static pass to see it.
//!
//! Single-statement temporaries
//! (`self.catalog.read().expect(…).get(…)`) are not tracked: a
//! temporary's guard cannot be held across the statements or calls where
//! cross-function nesting — the half of the problem the static
//! per-function pass cannot see — arises. The static pass covers
//! temporaries; this tracker covers guards held across calls.

#![allow(dead_code)] // release builds compile the consts/guards away

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// Rank of `DurableState.ckpt`.
pub(crate) const CKPT: u32 = 10;
/// Rank of `DurableState.wal` (the WAL fence).
pub(crate) const WAL: u32 = 20;
/// Rank of `DurableState.in_flight`.
pub(crate) const IN_FLIGHT: u32 = 30;
/// Rank of `av-index`'s per-shard merge mutexes (a multi family).
pub(crate) const MERGE_LOCKS: u32 = 40;
/// Rank of `av-index`'s published epoch lock.
pub(crate) const EPOCH: u32 = 50;
/// Rank of `ValidationService.baselines`.
pub(crate) const BASELINES: u32 = 60;
/// Rank of `ValidationService.catalog`.
pub(crate) const CATALOG: u32 = 70;
/// Rank of `ValidationService.classifier` (always innermost).
pub(crate) const CLASSIFIER: u32 = 80;

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Evidence that a rank was pushed; dropping pops it. Zero-sized in
/// release builds.
pub(crate) struct RankGuard {
    #[cfg(debug_assertions)]
    rank: u32,
}

/// Record acquisition of `rank`, asserting it exceeds every held rank.
pub(crate) fn rank_guard(rank: u32) -> RankGuard {
    push(rank, false)
}

/// Like [`rank_guard`] but for a *multi* family ([`MERGE_LOCKS`]): a
/// same-rank re-acquisition is allowed (per-shard locks taken in
/// ascending shard order share one rank).
pub(crate) fn rank_guard_multi(rank: u32) -> RankGuard {
    push(rank, true)
}

#[cfg(debug_assertions)]
fn push(rank: u32, multi: bool) -> RankGuard {
    // Assert outside the RefCell borrow: a failing assert unwinds
    // through live RankGuards whose Drop needs the cell.
    let max = HELD.with(|h| h.borrow().iter().max().copied());
    if let Some(max) = max {
        debug_assert!(
            rank > max || (multi && rank == max),
            "lock-order violation: acquiring rank {rank} while holding rank {max} \
             (see the hierarchy table in lockorder.rs)"
        );
    }
    HELD.with(|h| h.borrow_mut().push(rank));
    RankGuard { rank }
}

#[cfg(not(debug_assertions))]
fn push(_rank: u32, _multi: bool) -> RankGuard {
    RankGuard {}
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Remove *this* rank's newest entry (not whatever is on
            // top): guards may be dropped out of acquisition order.
            if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_passes() {
        let _a = rank_guard(WAL);
        let _b = rank_guard(CATALOG);
        let _c = rank_guard(CLASSIFIER);
    }

    #[test]
    fn multi_family_allows_same_rank() {
        let _a = rank_guard_multi(MERGE_LOCKS);
        let _b = rank_guard_multi(MERGE_LOCKS);
        let _c = rank_guard(EPOCH);
    }

    #[test]
    fn release_then_lower_is_fine() {
        {
            let _a = rank_guard(CLASSIFIER);
        }
        let _b = rank_guard(CATALOG);
    }

    #[test]
    fn out_of_order_drop_keeps_tracking() {
        let a = rank_guard(WAL);
        let b = rank_guard(CATALOG);
        drop(a);
        drop(b);
        let _c = rank_guard(CKPT);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn inversion_asserts_in_debug() {
        let _a = rank_guard(CATALOG);
        let _b = rank_guard(WAL);
    }
}
