//! Live TCP tests for the `watch` telemetry stream: frame cadence and
//! content over a real socket, and the slow-reader regression — a watch
//! client that stops draining its socket must never block validation or
//! inference (frames are built from owned snapshots; no service lock is
//! held while writing).

use av_service::{response_ok, serve_tcp, ServiceConfig, TelemetryConfig, ValidationService};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dates(month: u32) -> Vec<String> {
    (1..=28)
        .map(|d| format!("2019-{month:02}-{d:02}"))
        .collect()
}

/// A served instance with a cataloged rule and a telemetry window wide
/// enough (300 s) that window counters cannot rotate mid-test.
fn serve_with_rule() -> (
    Arc<ValidationService>,
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServiceConfig {
        telemetry: TelemetryConfig {
            bucket_millis: 10_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let service = Arc::new(ValidationService::new(config));
    let lake = av_corpus::generate_lake(&av_corpus::LakeProfile::tiny(), 47);
    let columns: Vec<av_corpus::Column> = lake.columns().cloned().collect();
    service.ingest(&columns).unwrap();
    service.infer_rule("dates", &dates(3), None).unwrap();

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            serve_tcp(service, ("127.0.0.1", 0), move |a| {
                addr_tx.send(a).unwrap();
            })
        })
    };
    let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    (service, addr, server)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line
}

fn shut_down(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).unwrap();
    send_line(&mut stream, r#"{"op":"shutdown"}"#);
    let mut reader = BufReader::new(stream);
    assert!(response_ok(&read_line(&mut reader)));
}

/// The acceptance criterion: a `watch` session streams ≥ 3 interval frames
/// over live TCP, each carrying the rule's correct per-window flag rate.
#[test]
fn watch_streams_interval_frames_with_correct_flag_rates() {
    let (service, addr, server) = serve_with_rule();

    // 3 conforming validations + 1 flagged → flag rate 0.25.
    for month in [4, 5, 6] {
        assert!(!service.validate("dates", &dates(month)).unwrap().flagged);
    }
    let drifted: Vec<String> = (0..40).map(|i| format!("user-{i}")).collect();
    assert!(service.validate("dates", &drifted).unwrap().flagged);

    let mut stream = TcpStream::connect(addr).unwrap();
    send_line(
        &mut stream,
        r#"{"op":"watch","interval_ms":60,"frames":4,"rules":["dates"]}"#,
    );
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let ack = read_line(&mut reader);
    assert!(response_ok(&ack), "{ack}");

    let start = Instant::now();
    let mut frames = Vec::new();
    for want in 0..4 {
        let frame = read_line(&mut reader);
        let v = av_service::json::parse(&frame).unwrap();
        assert_eq!(v.get("frame").unwrap().as_usize(), Some(want), "{frame}");
        let rules = v.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), 1, "{frame}");
        let r = &rules[0];
        assert_eq!(r.get("rule").unwrap().as_str(), Some("dates"));
        assert_eq!(r.get("window_validations").unwrap().as_usize(), Some(4));
        assert_eq!(r.get("window_flagged").unwrap().as_usize(), Some(1));
        assert_eq!(r.get("flag_rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(r.get("alert").unwrap().as_bool(), Some(false));
        frames.push(frame);
    }
    assert!(frames.len() >= 3);
    // Frames were paced, not dumped: 4 frames at 60 ms each need ≥ 200 ms.
    assert!(
        start.elapsed() >= Duration::from_millis(200),
        "frames arrived in {:?}",
        start.elapsed()
    );
    // The frame budget exhausted, the connection is a plain request line
    // again — and stays usable.
    send_line(&mut stream, r#"{"op":"ping"}"#);
    assert!(response_ok(&read_line(&mut reader)));

    shut_down(addr);
    server.join().unwrap().unwrap();
    assert_eq!(service.stats().connection_errors, 0);
}

/// The satellite regression: a watch client that never drains its socket
/// must not block rule inference or validation happening on other
/// connections — telemetry frames are serialized from owned snapshots, so
/// the stalled write holds no catalog or telemetry lock.
#[test]
fn stalled_watch_client_does_not_block_validation_or_inference() {
    let (_service, addr, server) = serve_with_rule();

    // A watch stream with a fast cadence and no frame limit, whose client
    // never reads a byte.
    let stalled = TcpStream::connect(addr).unwrap();
    {
        let mut stalled = stalled.try_clone().unwrap();
        send_line(&mut stalled, r#"{"op":"watch","interval_ms":20}"#);
    }

    // Give the stream time to start emitting frames into the socket.
    std::thread::sleep(Duration::from_millis(150));

    // Meanwhile, catalog writes and validations on a live connection must
    // complete promptly.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let started = Instant::now();
    for i in 0..10 {
        let train: Vec<String> = dates(3).iter().map(|d| format!("\"{d}\"")).collect();
        send_line(
            &mut stream,
            &format!(
                r#"{{"op":"infer","rule":"probe-{i}","values":[{}]}}"#,
                train.join(",")
            ),
        );
        assert!(response_ok(&read_line(&mut reader)), "infer {i} blocked");
        let test: Vec<String> = dates(4).iter().map(|d| format!("\"{d}\"")).collect();
        send_line(
            &mut stream,
            &format!(
                r#"{{"op":"validate","rule":"probe-{i}","values":[{}]}}"#,
                test.join(",")
            ),
        );
        assert!(response_ok(&read_line(&mut reader)), "validate {i} blocked");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "10 infer+validate round-trips took {:?} alongside a stalled watch",
        started.elapsed()
    );

    shut_down(addr);
    server.join().unwrap().unwrap();
    drop(stalled);
}
