//! A small hand-rolled Rust lexer — just enough to run token-level lint
//! passes without an external parser. In the same house style as the
//! byte-level pattern matchers: one pass over the bytes, no lookbehind
//! beyond a few characters, no allocation except the token vector.
//!
//! What it gets right (because the rules depend on it):
//!
//! * strings (`"…"`, `b"…"`, `c"…"`), raw strings (`r"…"`, `r#"…"#` with
//!   any number of hashes, `br#"…"#`), char and byte-char literals
//!   (`'a'`, `'\n'`, `b'x'`) are consumed as single literal tokens, so a
//!   `".lock()"` inside a string can never look like an acquisition;
//! * lifetimes (`'a`) are distinguished from char literals;
//! * line comments and (nested) block comments are captured separately —
//!   rule passes never see them, but the allow-annotation parser does;
//! * float literals are classified (`1.5`, `2e9`, `1f64`) without
//!   swallowing range expressions (`0..n`) or tuple indices (`t.0`).

/// Token classification. Only the distinctions the rule passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `lock`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `[`, `#`, …).
    Punct(char),
    /// String, byte-string, C-string, or raw-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Integer literal.
    Int,
    /// Float literal (has a fraction, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token text (empty for literals — rules never inspect literal
    /// contents, which is the point).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// Is this a specific punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }
}

/// One comment (line or block) with the line it starts on. Block comment
/// text keeps its interior newlines; allow annotations only ever sit in
/// line comments, which is what the parser expects.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Comment text without the delimiters.
    pub text: String,
}

/// Lexer output: significant tokens and the comments stripped from
/// between them.
#[derive(Debug, Default)]
pub struct LexOut {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens + comments. Never fails: unterminated literals
/// simply consume to end of input (the workspace compiles, so this only
/// matters for fixtures, which are well-formed).
pub fn lex(src: &str) -> LexOut {
    let b = src.as_bytes();
    let mut out = LexOut::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1u32;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                });
                i = j;
            }
            b'"' => {
                let start_line = line;
                i = consume_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: Kind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` followed by anything but
                // a closing quote is a lifetime; everything else (escape,
                // multi-byte char, quoted ident char) is a char literal.
                if i + 1 < b.len()
                    && is_ident_start(b[i + 1])
                    && (i + 2 >= b.len() || b[i + 2] != b'\'')
                {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: Kind::Lifetime,
                        text: src[i + 1..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    i = consume_char_literal(b, i, &mut line);
                    out.tokens.push(Tok {
                        kind: Kind::Char,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let (j, kind) = consume_number(b, i);
                out.tokens.push(Tok {
                    kind,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            _ if is_ident_start(c) => {
                // Check for raw/byte/C string prefixes: r" r#" b" br" c"
                // and the byte-char prefix b'…'.
                let start_line = line;
                if let Some(j) = try_prefixed_literal(b, i, &mut line) {
                    let kind = if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                        Kind::Char
                    } else {
                        Kind::Str
                    };
                    out.tokens.push(Tok {
                        kind,
                        text: String::new(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: Kind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: Kind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consume a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote. Tracks newlines.
fn consume_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consume a `'…'` char literal starting at the opening quote; returns
/// the index just past the closing quote.
fn consume_char_literal(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// If `b[i..]` starts a prefixed literal (`r"`, `r#"`, `b"`, `br#"`,
/// `c"`, `b'`), consume it and return the index past its end.
fn try_prefixed_literal(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    // Accept prefix letters in the orders Rust allows: r, b, c, br, cr.
    match b[j] {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' | b'c' => {
            j += 1;
            if j < b.len() && b[j] == b'r' {
                raw = true;
                j += 1;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hash marks.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some(k);
                }
            }
            j += 1;
        }
        Some(j)
    } else if j < b.len() && b[j] == b'"' {
        Some(consume_string(b, j, line))
    } else if j < b.len() && b[j] == b'\'' && b[i] == b'b' {
        Some(consume_char_literal(b, j, line))
    } else {
        None
    }
}

/// Consume a numeric literal starting at a digit; returns (end index,
/// Int or Float). A `.` is part of the number only when followed by a
/// digit (so `0..n` and `x.0` lex as expected); `f32`/`f64` suffixes and
/// decimal exponents make it a float.
fn consume_number(b: &[u8], start: usize) -> (usize, Kind) {
    let mut j = start;
    let hex = j + 1 < b.len() && b[j] == b'0' && (b[j + 1] == b'x' || b[j + 1] == b'X');
    let mut float = false;
    let mut text = Vec::new();
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_alphanumeric() || c == b'_' {
            text.push(c);
            j += 1;
        } else if c == b'.' && !hex && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
            float = true;
            text.push(c);
            j += 1;
        } else {
            break;
        }
    }
    if !hex {
        let t = String::from_utf8_lossy(&text).into_owned();
        if t.ends_with("f32") || t.ends_with("f64") {
            float = true;
        }
        // Decimal exponent: a digit, then e/E, then digit or sign.
        if !float {
            let bytes = t.as_bytes();
            for (k, &c) in bytes.iter().enumerate() {
                if (c == b'e' || c == b'E')
                    && k > 0
                    && k + 1 < bytes.len()
                    && (bytes[k + 1].is_ascii_digit()
                        || bytes[k + 1] == b'+'
                        || bytes[k + 1] == b'-')
                {
                    float = true;
                    break;
                }
            }
        }
    }
    (j, if float { Kind::Float } else { Kind::Int })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "x.lock() // not a comment";
            let b = r#"embedded "quote" and .unwrap()"#;
            // real comment with .lock()
            /* block /* nested */ .expect() */
            let c = 'x';
            let d = '\'';
            let e = b"bytes .read()";
        "##;
        let out = lex(src);
        let names = idents(src);
        assert!(!names
            .iter()
            .any(|n| n == "lock" || n == "unwrap" || n == "expect"));
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains(".lock()"));
        assert!(names.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn floats_versus_ranges_and_tuple_indices() {
        let out =
            lex("let x = 1.5 + t.0; for i in 0..n {} let y = 2e9; let z = 1f64; let h = 0x1e5;");
        let kinds: Vec<Kind> = out
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Kind::Int | Kind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                Kind::Float,
                Kind::Int,
                Kind::Int,
                Kind::Float,
                Kind::Float,
                Kind::Int
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let out = lex(src);
        let b_tok = out.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
