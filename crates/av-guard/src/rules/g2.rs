//! **G2 storage-bypass**: inside the storage-managed crates
//! (`av-service`, `av-index`, `av-durable`) all file I/O goes through
//! the `Storage` trait. Direct `std::fs` / `File::open` / `fs::rename`
//! calls bypass the trait — which means they bypass `write_atomic`'s
//! temp-file + fsync + rename discipline and fault injection can't see
//! them. The one allowed site is `OsStorage` itself
//! ([`crate::config::G2_ALLOWED_FILES`]).

use crate::config::{G2_ALLOWED_FILES, G2_SCOPE};
use crate::diag::Finding;
use crate::lexer::Kind;
use crate::source::SourceFile;

use super::in_scope;

/// `File::` associated functions that open or create files.
const FILE_FNS: &[&str] = &["open", "create", "create_new", "options"];

/// Run the pass.
pub fn run(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&sf.rel_path, G2_SCOPE) || in_scope(&sf.rel_path, G2_ALLOWED_FILES) {
        return;
    }
    let toks = &sf.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("std")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("fs"))
        {
            out.push(Finding {
                rule: "G2",
                file: sf.rel_path.clone(),
                line: t.line,
                message: "direct `std::fs` use — route file I/O through the `Storage` trait"
                    .to_string(),
            });
            i += 4;
            continue;
        }
        if t.is_ident("fs")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.kind == Kind::Ident)
        {
            out.push(Finding {
                rule: "G2",
                file: sf.rel_path.clone(),
                line: t.line,
                message: format!(
                    "direct `fs::{}` call — route file I/O through the `Storage` trait",
                    toks[i + 3].text
                ),
            });
            i += 4;
            continue;
        }
        if (t.is_ident("File") || t.is_ident("OpenOptions"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|n| FILE_FNS.iter().any(|f| n.is_ident(f)) || n.is_ident("new"))
        {
            out.push(Finding {
                rule: "G2",
                file: sf.rel_path.clone(),
                line: t.line,
                message: format!(
                    "direct `{}::{}` — open files through the `Storage` trait",
                    t.text,
                    toks[i + 3].text
                ),
            });
            i += 4;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse(path, src);
        let mut out = Vec::new();
        run(&sf, &mut out);
        out
    }

    #[test]
    fn raw_fs_in_scope_is_flagged() {
        let out = findings(
            "crates/av-index/src/persist.rs",
            r#"fn save(&self) { std::fs::rename(&tmp, &path).ok(); let f = File::create(p); }"#,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn imported_fs_is_flagged() {
        let out = findings(
            "crates/av-service/src/catalog.rs",
            "use std::fs;\nfn load() { fs::read_to_string(p).ok(); }",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn storage_impl_and_out_of_scope_pass() {
        assert!(findings(
            "crates/av-durable/src/storage.rs",
            "fn create(&self) { std::fs::File::create(p).ok(); }",
        )
        .is_empty());
        assert!(findings(
            "crates/av-cli/src/main.rs",
            "fn go() { std::fs::read(p).ok(); }",
        )
        .is_empty());
    }
}
