//! The rule passes. Each `gN::run` takes a prepared
//! [`SourceFile`](crate::source::SourceFile) and
//! appends findings; scope filtering (which files a rule even looks at)
//! lives in [`crate::config`], not here.

pub mod g1;
pub mod g2;
pub mod g3;
pub mod g4;
pub mod g5;

use crate::lexer::{Kind, Tok};

/// Does `path` fall under any of the scope prefixes? Entries may be
/// directory prefixes (`crates/av-service/src/server/`) or exact files.
pub(crate) fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s))
}

/// Is token `i` a method-call name: `.name(`?
pub(crate) fn is_method_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == Kind::Ident
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Is token `i` a path-call name: `::name(`?
pub(crate) fn is_path_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == Kind::Ident
        && i > 1
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Index of the `[`/`(` matching the closer at `close`, scanning
/// backward. Returns `close` itself if unmatched (caller treats that as
/// "stop here").
pub(crate) fn matching_open_backward(toks: &[Tok], close: usize, open: char, shut: char) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].is_punct(shut) {
            depth += 1;
        } else if toks[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return close;
        }
        j -= 1;
    }
}

/// Index of the `)` matching the opener at `open`, scanning forward.
pub(crate) fn matching_close_forward(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len() - 1
}

/// Resolve the receiver identifier of the method call whose name is at
/// `name_idx` (so `toks[name_idx - 1]` is the `.`): the nearest
/// preceding identifier, walking back over `[...]`/`(...)` groups and
/// `?`. `merge_locks[i].lock()` resolves to `merge_locks`;
/// `self.epoch.read()` to `epoch`.
pub(crate) fn receiver_of(toks: &[Tok], name_idx: usize, floor: usize) -> Option<&str> {
    let mut j = name_idx.checked_sub(2)?;
    loop {
        if j < floor {
            return None;
        }
        let t = &toks[j];
        if t.is_punct(']') {
            let open = matching_open_backward(toks, j, '[', ']');
            if open == j || open == 0 {
                return None;
            }
            j = open - 1;
        } else if t.is_punct(')') {
            let open = matching_open_backward(toks, j, '(', ')');
            if open == j || open == 0 {
                return None;
            }
            j = open - 1;
        } else if t.is_punct('?') {
            if j == 0 {
                return None;
            }
            j -= 1;
        } else if t.kind == Kind::Ident {
            return Some(&t.text);
        } else {
            return None;
        }
    }
}
