//! **G1 lock-order**: within a function, nested acquisitions of the
//! tracked locks (see [`crate::config::LOCK_HIERARCHY`]) must be
//! strictly ascending in rank. Acquiring a lower-ranked lock while a
//! higher-ranked one is held is the half of a deadlock this pass can see
//! statically; the other half is the runtime tracker in
//! `crates/av-service/src/lockorder.rs`.
//!
//! The interpreter mirrors Rust's guard lifetimes closely enough to
//! avoid false positives on the real tree:
//!
//! * an acquisition is a `.lock()`, `.read()`, or `.write()` call with
//!   **empty parens** whose receiver resolves to a hierarchy name
//!   (nearest preceding identifier over bracket groups, falling back to
//!   any hierarchy identifier earlier in the statement — which catches
//!   `merge_locks.iter().map(|m| m.lock())`);
//! * the guard is **bound** (held to end of scope) iff the call chain —
//!   after skipping `.unwrap()`/`.expect("…")` — ends at `;` inside a
//!   `let` statement, or ends a tuple literal that is a `let`
//!   initializer (`let (_r, g) = (rank_guard(R), x.lock().expect(…));`);
//! * otherwise it is a **temporary**, released at the next `;` at the
//!   acquisition's brace depth or shallower (and at match-arm `=>`
//!   boundaries, so sibling arms don't see each other's temporaries);
//! * `drop(ident)` releases the bound guard named `ident`; closing `}`
//!   releases everything acquired inside the block;
//! * same-rank re-acquisition is allowed only for `multi` families
//!   (`merge_locks`, whose per-shard mutexes are taken in ascending
//!   shard order — an order this pass trusts, the runtime tracker
//!   checks).

use crate::config::{lock_by_name, LockEntry};
use crate::diag::Finding;
use crate::lexer::{Kind, Tok};
use crate::source::{FnSpan, SourceFile};

use super::{matching_close_forward, matching_open_backward, receiver_of};

struct Held {
    entry: &'static LockEntry,
    /// Brace depth at acquisition (body `{` is depth 1).
    depth: i32,
    /// Bound guards survive `;`; temporaries do not.
    bound: bool,
    /// Binding-pattern identifiers, so `drop(name)` can release.
    names: Vec<String>,
    line: u32,
}

/// Run the pass over every function in the file.
pub fn run(sf: &SourceFile, out: &mut Vec<Finding>) {
    for span in &sf.fns {
        check_fn(sf, span, out);
    }
}

fn check_fn(sf: &SourceFile, span: &FnSpan, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = span.body_start;
    let mut i = span.body_start;
    while i < span.body_end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            held.retain(|h| h.depth < depth);
            depth -= 1;
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            held.retain(|h| h.bound || h.depth < depth);
            stmt_start = i + 1;
        } else if t.is_punct('=') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            // Match-arm boundary: the previous arm's temporaries are gone.
            held.retain(|h| h.bound || h.depth < depth);
            i += 2;
            continue;
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let name = &toks[i + 2].text;
            held.retain(|h| !h.names.iter().any(|n| n == name));
            i += 4;
            continue;
        } else if is_acquisition(toks, i) {
            if let Some(entry) = resolve(toks, i, stmt_start) {
                for h in &held {
                    let inverted = if h.entry.rank == entry.rank {
                        !(entry.multi && h.entry.name == entry.name)
                    } else {
                        h.entry.rank > entry.rank
                    };
                    if inverted {
                        out.push(Finding {
                            rule: "G1",
                            file: sf.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "fn `{}` acquires `{}` (rank {}) while holding `{}` (rank {}, \
                                 acquired line {}) — violates the lock hierarchy",
                                span.name,
                                entry.name,
                                entry.rank,
                                h.entry.name,
                                h.entry.rank,
                                h.line
                            ),
                        });
                        break;
                    }
                }
                let (bound, names) = classify_binding(toks, i, stmt_start, span.body_end);
                held.push(Held {
                    entry,
                    depth,
                    bound,
                    names,
                    line: t.line,
                });
            }
        }
        i += 1;
    }
}

/// `.lock()`, `.read()`, or `.write()` with empty parens. The empty-paren
/// requirement is what keeps `io::Read::read(&mut buf)` and
/// `cv.wait(guard)` out of the model.
fn is_acquisition(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
}

/// Resolve the acquisition's receiver to a hierarchy entry: direct
/// receiver first, then any hierarchy identifier earlier in the same
/// statement (closure-parameter indirection).
fn resolve(toks: &[Tok], name_idx: usize, stmt_start: usize) -> Option<&'static LockEntry> {
    if let Some(recv) = receiver_of(toks, name_idx, stmt_start) {
        if let Some(entry) = lock_by_name(recv) {
            return Some(entry);
        }
    }
    let mut j = name_idx.checked_sub(2)?;
    while j >= stmt_start {
        if toks[j].kind == Kind::Ident {
            if let Some(entry) = lock_by_name(&toks[j].text) {
                return Some(entry);
            }
        }
        if j == 0 {
            break;
        }
        j -= 1;
    }
    None
}

/// Bound or temporary? Returns the binding-pattern identifiers when
/// bound (for `drop(name)` release).
fn classify_binding(
    toks: &[Tok],
    name_idx: usize,
    stmt_start: usize,
    end: usize,
) -> (bool, Vec<String>) {
    // Step over the call parens, then any `.unwrap()` / `.expect("…")`.
    let mut j = name_idx + 3;
    loop {
        if j + 2 < end
            && toks[j].is_punct('.')
            && (toks[j + 1].is_ident("unwrap") || toks[j + 1].is_ident("expect"))
            && toks[j + 2].is_punct('(')
        {
            j = matching_close_forward(toks, j + 2) + 1;
        } else {
            break;
        }
    }
    let temp = (false, Vec::new());
    let Some(t) = toks.get(j) else { return temp };
    let ends_stmt = if t.is_punct(';') {
        true
    } else if t.is_punct(')') {
        // Tuple-initializer case: the chain ends a parenthesized list
        // sitting directly after `=`.
        let open = matching_open_backward(toks, j, '(', ')');
        open > 0
            && open != j
            && toks[open - 1].is_punct('=')
            && toks.get(j + 1).is_some_and(|n| n.is_punct(';'))
    } else {
        false
    };
    if !ends_stmt {
        return temp;
    }
    // Bound only if the statement is a `let`; collect pattern idents.
    let mut names = Vec::new();
    let mut saw_let = false;
    for t in &toks[stmt_start..name_idx] {
        if t.is_ident("let") {
            saw_let = true;
        } else if saw_let && t.is_punct('=') {
            break;
        } else if saw_let && t.kind == Kind::Ident && t.text != "mut" {
            names.push(t.text.clone());
        }
    }
    if saw_let {
        (true, names)
    } else {
        temp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/av-service/src/engine.rs", src);
        let mut out = Vec::new();
        run(&sf, &mut out);
        out
    }

    #[test]
    fn inversion_is_flagged() {
        let out = findings(
            r#"fn bad(&self) {
                let catalog = self.catalog.write().expect("poisoned");
                let wal = self.wal.lock().expect("poisoned");
            }"#,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`wal`"));
        assert!(out[0].message.contains("`catalog`"));
    }

    #[test]
    fn ascending_order_passes() {
        assert!(findings(
            r#"fn good(&self) {
                let wal = self.wal.lock().expect("p");
                let catalog = self.catalog.write().expect("p");
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn temporary_releases_at_semicolon() {
        assert!(findings(
            r#"fn good(&self) {
                let removed = self.catalog.write().expect("p").remove(name).is_some();
                let b = self.baselines.write().expect("p");
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn drop_releases_bound_guard() {
        assert!(findings(
            r#"fn good(&self) {
                let classifier = self.classifier.read().expect("p");
                drop(classifier);
                let catalog = self.catalog.write().expect("p");
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn scope_exit_releases() {
        assert!(findings(
            r#"fn good(&self) {
                {
                    let classifier = self.classifier.read().expect("p");
                }
                let catalog = self.catalog.write().expect("p");
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn tuple_initializer_binds() {
        let out = findings(
            r#"fn bad(&self) {
                let (_r, g) = (rank_guard(70), self.catalog.write().expect("p"));
                let (_r2, g2) = (rank_guard(20), self.wal.lock().expect("p"));
            }"#,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn multi_rank_family_allows_same_rank() {
        assert!(findings(
            r#"fn good(&self) {
                let a = self.merge_locks[i].lock().expect("p");
                let b = self.merge_locks[j].lock().expect("p");
                let mut epoch = self.epoch.write().expect("p");
            }"#,
        )
        .is_empty());
        let out = findings(
            r#"fn bad(&self) {
                let a = self.wal.lock().expect("p");
                let b = self.wal.lock().expect("p");
            }"#,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn closure_receiver_falls_back_to_statement() {
        assert!(findings(
            r#"fn good(&self) {
                let _guards: Vec<_> = self.merge_locks.iter().map(|m| m.lock().expect("p")).collect();
            }"#,
        )
        .is_empty());
        let out = findings(
            r#"fn bad(&self) {
                let c = self.classifier.read().expect("p");
                let _guards: Vec<_> = self.merge_locks.iter().map(|m| m.lock().expect("p")).collect();
            }"#,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn match_arms_do_not_leak_temporaries() {
        assert!(findings(
            r#"fn good(&self, x: u32) -> bool {
                match x {
                    0 => self.classifier.read().expect("p").is_empty(),
                    _ => self.catalog.read().expect("p").is_empty(),
                }
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn untracked_receivers_are_ignored() {
        assert!(findings(
            r#"fn good(&self) {
                let jobs = self.queues.jobs.lock().expect("p");
                let state = self.state.lock().expect("p");
            }"#,
        )
        .is_empty());
    }
}
