//! **G5 blocking-in-reactor**: the event loop multiplexes every
//! connection on one thread — a blocking call there stalls all of them
//! at once. Banned in reactor callbacks: `thread::sleep`, channel
//! `recv`, blocking reads, `join`/`wait`. Exemptions are configured, not
//! inferred: worker-pool functions that *should* park
//! ([`crate::config::G5_EXEMPT_FNS`]) and the poller's own event wait
//! ([`crate::config::G5_ALLOWED_RECEIVERS`]).

use crate::config::{G5_ALLOWED_RECEIVERS, G5_BANNED, G5_EXEMPT_FNS, G5_SCOPE};
use crate::diag::Finding;
use crate::source::SourceFile;

use super::{in_scope, is_method_call, is_path_call, receiver_of};

/// Run the pass.
pub fn run(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&sf.rel_path, G5_SCOPE) {
        return;
    }
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !G5_BANNED.contains(&t.text.as_str()) {
            continue;
        }
        let method = is_method_call(toks, i);
        if !method && !is_path_call(toks, i) {
            continue;
        }
        if sf
            .enclosing_fn(i)
            .is_some_and(|f| G5_EXEMPT_FNS.contains(&f))
        {
            continue;
        }
        if method {
            let recv = receiver_of(toks, i, 0);
            if recv.is_some_and(|r| {
                G5_ALLOWED_RECEIVERS
                    .iter()
                    .any(|(name, rx)| t.text == *name && r == *rx)
            }) {
                continue;
            }
        }
        out.push(Finding {
            rule: "G5",
            file: sf.rel_path.clone(),
            line: t.line,
            message: format!(
                "blocking `{}` call in reactor code — every connection stalls behind it",
                t.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/av-service/src/server/event_loop.rs", src);
        let mut out = Vec::new();
        run(&sf, &mut out);
        out
    }

    #[test]
    fn blocking_calls_flagged() {
        let out = findings(
            r#"fn dispatch(&mut self) {
                std::thread::sleep(d);
                let job = rx.recv();
                sock.read_to_end(&mut buf).ok();
            }"#,
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn poller_wait_and_worker_loop_pass() {
        assert!(findings(
            r#"fn run(&mut self) { let n = self.poller.wait(&mut events, timeout); }
               fn worker_loop(queues: &Queues) { let job = queues.pop_job(); std::thread::sleep(d); }
               fn pop_job(&self) -> Job { self.job_ready.wait_timeout(guard, d) }"#,
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_passes() {
        let sf = SourceFile::parse(
            "crates/av-service/src/server/netfault.rs",
            "fn f() { std::thread::sleep(d); }",
        );
        let mut out = Vec::new();
        run(&sf, &mut out);
        assert!(out.is_empty());
    }
}
