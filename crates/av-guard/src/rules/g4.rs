//! **G4 determinism**: the av-index accumulator modules are fixed-point
//! on purpose — integer impurity counters merge associatively, so shard
//! merge order can't change the published index. Two sub-checks:
//!
//! * **floats**: no `f32`/`f64` mentions or float literals in the scoped
//!   modules, outside the two sanctioned conversion boundaries
//!   ([`crate::config::G4_EXEMPT_FNS`]);
//! * **hash-map order**: in persist/serialization files, iterating a
//!   hash-map-backed field (`map`, `patterns`, `baselines`) in a
//!   function that never sorts leaks nondeterministic order into bytes —
//!   checkpoints would differ run to run and recovery diffs would be
//!   meaningless.

use crate::config::{G4_EXEMPT_FNS, G4_HASHMAP_FIELDS, G4_PERSIST_FILES, G4_SCOPE};
use crate::diag::Finding;
use crate::lexer::Kind;
use crate::source::SourceFile;

use super::in_scope;

/// Iteration methods whose order is the map's internal order.
const ITER_METHODS: &[&str] = &["iter", "iter_mut", "keys", "values", "values_mut"];

/// Run the pass.
pub fn run(sf: &SourceFile, out: &mut Vec<Finding>) {
    if in_scope(&sf.rel_path, G4_SCOPE) {
        floats(sf, out);
    }
    if in_scope(&sf.rel_path, G4_PERSIST_FILES) {
        hashmap_order(sf, out);
    }
}

fn floats(sf: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in sf.tokens.iter().enumerate() {
        let hit = t.kind == Kind::Float || t.is_ident("f32") || t.is_ident("f64");
        if !hit {
            continue;
        }
        if sf
            .enclosing_fn_with_sig(i)
            .is_some_and(|f| G4_EXEMPT_FNS.contains(&f))
        {
            continue;
        }
        let what = if t.kind == Kind::Float {
            "float literal".to_string()
        } else {
            format!("`{}`", t.text)
        };
        out.push(Finding {
            rule: "G4",
            file: sf.rel_path.clone(),
            line: t.line,
            message: format!(
                "{what} in a fixed-point accumulator module — only `add_impurity`/`finish` \
                 may touch floats"
            ),
        });
    }
}

fn hashmap_order(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for span in &sf.fns {
        let body = &toks[span.body_start..span.body_end];
        if body
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text.contains("sort"))
        {
            continue;
        }
        for i in span.body_start..span.body_end {
            let t = &toks[i];
            if t.kind != Kind::Ident || !G4_HASHMAP_FIELDS.contains(&t.text.as_str()) {
                continue;
            }
            // `field.iter()` / `.keys()` / `.values()` …
            let method_iter = toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| ITER_METHODS.iter().any(|m| n.is_ident(m)));
            // `for (k, v) in &self.field {`
            let for_iter = toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
                && toks[span.body_start..i]
                    .iter()
                    .rev()
                    .take(12)
                    .any(|p| p.is_ident("in"));
            if method_iter || for_iter {
                out.push(Finding {
                    rule: "G4",
                    file: sf.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "fn `{}` iterates hash-map field `{}` on a persist path without \
                         sorting — byte output becomes nondeterministic",
                        span.name, t.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse(path, src);
        let mut out = Vec::new();
        run(&sf, &mut out);
        out
    }

    #[test]
    fn floats_flagged_outside_boundaries() {
        let out = findings(
            "crates/av-index/src/stats.rs",
            r#"const SCALE: f64 = 1e9;
               fn add_impurity(&mut self, x: f64) { self.acc += (x * 1e9) as u64; }
               fn finish(&self) -> f64 { self.acc as f64 / 1e9 }
               fn middle(&self) -> u64 { (self.acc as f32) as u64 }"#,
        );
        // `f64` + `1e9` at top level, `f32` in `middle`; boundaries exempt.
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn unsorted_map_iteration_flagged() {
        let out = findings(
            "crates/av-index/src/persist.rs",
            r#"fn dump(&self) -> Vec<u8> {
                let mut v = Vec::new();
                for (k, c) in &self.map { v.push(*k); }
                v
            }"#,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`map`"));
    }

    #[test]
    fn sorted_iteration_passes() {
        assert!(findings(
            "crates/av-index/src/persist.rs",
            r#"fn dump(&self) -> Vec<u8> {
                let mut rows: Vec<_> = self.map.iter().collect();
                rows.sort_by_key(|(k, _)| *k);
                rows.into_iter().map(|(k, _)| *k).collect()
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_passes() {
        assert!(findings("crates/av-cli/src/main.rs", "fn f() -> f64 { 1.5 }",).is_empty());
    }
}
