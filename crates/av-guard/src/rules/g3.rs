//! **G3 panic-path**: the reactor, its connections, and the worker pool
//! (`crates/av-service/src/server/`) must not panic. A panicking worker
//! strands every response pipelined behind it; a panicking reactor takes
//! the whole listener down. Banned in non-test code there: `.unwrap()`,
//! `.expect(…)`, `panic!`, and slice indexing (`buf[a..b]`, `v[i]`) —
//! use `.get(…)`/pattern matching, or poison-recovery
//! (`.unwrap_or_else(|e| e.into_inner())`) for mutexes.

use crate::config::G3_SCOPE;
use crate::diag::Finding;
use crate::lexer::Kind;
use crate::source::SourceFile;

use super::{in_scope, is_method_call};

/// Run the pass.
pub fn run(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&sf.rel_path, G3_SCOPE) {
        return;
    }
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if is_method_call(toks, i) && (t.text == "unwrap" || t.text == "expect") {
            out.push(Finding {
                rule: "G3",
                file: sf.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`.{}(…)` in reactor/worker code can panic — handle the None/Err \
                     (poison-recover mutexes with `unwrap_or_else(|e| e.into_inner())`)",
                    t.text
                ),
            });
        } else if (t.is_ident("panic") || t.is_ident("unreachable") || t.is_ident("todo"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding {
                rule: "G3",
                file: sf.rel_path.clone(),
                line: t.line,
                message: format!("`{}!` in reactor/worker code kills the thread", t.text),
            });
        } else if t.is_punct('[')
            && i > 0
            && (toks[i - 1].kind == Kind::Ident
                || toks[i - 1].is_punct(']')
                || toks[i - 1].is_punct(')'))
            // `&mut [u8]` / `dyn [..]` are types, not indexing.
            && !toks[i - 1].is_ident("mut")
            && !toks[i - 1].is_ident("dyn")
        {
            out.push(Finding {
                rule: "G3",
                file: sf.rel_path.clone(),
                line: t.line,
                message: "slice/array index in reactor/worker code can panic — use `.get(…)` \
                          or split/pattern APIs"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/av-service/src/server/conn.rs", src);
        let mut out = Vec::new();
        run(&sf, &mut out);
        out
    }

    #[test]
    fn panics_are_flagged() {
        let out = findings(
            r#"fn f(v: &[u8]) {
                let a = v.first().unwrap();
                let b = q.lock().expect("poisoned");
                let c = &v[1..3];
                panic!("boom");
            }"#,
        );
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn safe_forms_pass() {
        assert!(findings(
            r#"fn f(v: &[u8]) -> Option<u8> {
                let buf: [u8; 4] = [0; 4];
                let g = q.lock().unwrap_or_else(|e| e.into_inner());
                v.get(1).copied()
            }"#,
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_passes() {
        let sf = SourceFile::parse("crates/av-service/src/engine.rs", "fn f() { x.unwrap(); }");
        let mut out = Vec::new();
        run(&sf, &mut out);
        assert!(out.is_empty());
    }
}
