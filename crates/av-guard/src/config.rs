//! The checked-in rule configuration: the global lock hierarchy (G1) and
//! the per-rule path scopes and exemptions.
//!
//! **This file is the machine-readable twin of the canonical
//! lock-hierarchy document in `crates/av-service/src/lockorder.rs`.** The
//! two must agree: the doc explains *why* the order is what it is (the
//! WAL fence is the crash-safety argument), this table is what the G1
//! pass and its fixtures execute against. Change them together.

/// One lock in the global hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct LockEntry {
    /// The field/binding name the lock is acquired through (`.lock()`,
    /// `.read()`, `.write()` receivers are matched by exact identifier).
    pub name: &'static str,
    /// Rank: acquisitions must be strictly ascending in rank within a
    /// function (gaps left for future locks).
    pub rank: u32,
    /// Same-rank re-acquisition allowed: a family of per-shard locks
    /// taken in ascending index order counts as one rank.
    pub multi: bool,
    /// Where the lock lives and what it protects.
    pub doc: &'static str,
}

/// The global lock hierarchy, outermost first. Mirrors the canonical doc
/// in `crates/av-service/src/lockorder.rs` (which carries the full
/// rationale); the ranks here gap by 10 so future locks can slot in
/// without renumbering.
pub const LOCK_HIERARCHY: &[LockEntry] = &[
    LockEntry {
        name: "ckpt",
        rank: 10,
        multi: false,
        doc: "av-service DurableState.ckpt — serializes checkpoints; taken before the WAL fence",
    },
    LockEntry {
        name: "wal",
        rank: 20,
        multi: false,
        doc: "av-service DurableState.wal — the WAL fence; outermost lock of every durable mutating path",
    },
    LockEntry {
        name: "in_flight",
        rank: 30,
        multi: false,
        doc: "av-service DurableState.in_flight — logged-but-unmerged LSNs, drained under the WAL fence",
    },
    LockEntry {
        name: "merge_locks",
        rank: 40,
        multi: true,
        doc: "av-index ShardedIndex.merge_locks — per-shard merge mutexes, taken in ascending shard order",
    },
    LockEntry {
        name: "epoch",
        rank: 50,
        multi: false,
        doc: "av-index ShardedIndex.epoch — the published index epoch; swapped while merge locks are held",
    },
    LockEntry {
        name: "baselines",
        rank: 60,
        multi: false,
        doc: "av-service ValidationService.baselines — session-scoped baseline rules",
    },
    LockEntry {
        name: "catalog",
        rank: 70,
        multi: false,
        doc: "av-service ValidationService.catalog — the persistent rule catalog",
    },
    LockEntry {
        name: "classifier",
        rank: 80,
        multi: false,
        doc: "av-service ValidationService.classifier — the catalog automaton; always innermost",
    },
];

/// Look up a tracked lock by receiver identifier.
pub fn lock_by_name(name: &str) -> Option<&'static LockEntry> {
    LOCK_HIERARCHY.iter().find(|e| e.name == name)
}

/// G2: crates whose sources may not touch `std::fs` directly.
pub const G2_SCOPE: &[&str] = &[
    "crates/av-service/src/",
    "crates/av-index/src/",
    "crates/av-durable/src/",
];

/// G2: the explicitly-allowed raw-I/O sites. `OsStorage` lives here — it
/// is the one production implementation of the `Storage` trait, and the
/// trait boundary is exactly what G2 defends.
pub const G2_ALLOWED_FILES: &[&str] = &["crates/av-durable/src/storage.rs"];

/// G3: reactor, connection, and worker-pool sources that must be
/// panic-free (a panic kills a worker and strands its pipelined
/// connection).
pub const G3_SCOPE: &[&str] = &["crates/av-service/src/server/"];

/// G4: av-index accumulator/persist modules that must stay float-free
/// (fixed-point exactness is what makes merges order-independent).
pub const G4_SCOPE: &[&str] = &[
    "crates/av-index/src/stats.rs",
    "crates/av-index/src/delta.rs",
    "crates/av-index/src/shard.rs",
    "crates/av-index/src/persist.rs",
];

/// G4: the two sanctioned float↔fixed-point conversion boundaries.
/// `add_impurity` quantizes an incoming impurity once; `finish` converts
/// the accumulated integer back to a presentation float. Everything
/// between them is integer-only.
pub const G4_EXEMPT_FNS: &[&str] = &["add_impurity", "finish"];

/// G4: persist/serialization-path files where iterating a hash map
/// without sorting would leak nondeterministic order into bytes.
pub const G4_PERSIST_FILES: &[&str] = &[
    "crates/av-index/src/persist.rs",
    "crates/av-service/src/catalog.rs",
    "crates/av-service/src/durable.rs",
];

/// G4: hash-map-backed fields whose iteration order is nondeterministic.
pub const G4_HASHMAP_FIELDS: &[&str] = &["map", "patterns", "baselines"];

/// G5: reactor sources where blocking calls would stall every
/// connection at once.
pub const G5_SCOPE: &[&str] = &[
    "crates/av-service/src/server/event_loop.rs",
    "crates/av-service/src/server/conn.rs",
];

/// G5: functions in scope files that run on worker-pool threads, not the
/// reactor thread — blocking there is the design (a worker parks on the
/// run-queue condvar between jobs).
pub const G5_EXEMPT_FNS: &[&str] = &["worker_loop", "pop_job"];

/// G5: banned blocking calls.
pub const G5_BANNED: &[&str] = &[
    "sleep",
    "recv",
    "recv_timeout",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "lines",
    "join",
    "wait",
    "wait_timeout",
];

/// G5: receivers on which otherwise-banned names are the point, not a
/// bug: `poller.wait(...)` *is* the reactor's event wait.
pub const G5_ALLOWED_RECEIVERS: &[(&str, &str)] = &[("wait", "poller")];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ranks_strictly_ascend() {
        for w in LOCK_HIERARCHY.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} !< {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for e in LOCK_HIERARCHY {
            assert_eq!(lock_by_name(e.name).unwrap().rank, e.rank);
        }
        assert!(lock_by_name("not_a_lock").is_none());
    }
}
