//! Diagnostics: findings with `file:line` spans, rendered human-readable
//! or as JSON (hand-rolled — no serde in this workspace).

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`G0`–`G5`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What was found and why it is banned here.
    pub message: String,
}

/// The result of scanning one file or the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Allow annotations that suppressed a finding (each carries a
    /// written justification — reason-less or unused allows are `G0`
    /// findings, not suppressions).
    pub allows_honored: usize,
}

impl Report {
    /// Fold another report (one file's scan) into this one.
    pub fn absorb(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.files_scanned += other.files_scanned;
        self.allows_honored += other.allows_honored;
    }

    /// Findings for one rule ID (fixture tests use this).
    pub fn of_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Human-readable rendering, one finding per line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{} {}:{} — {}", f.rule, f.file, f.line, f.message);
        }
        let _ = writeln!(
            out,
            "av-guard: {} finding(s) in {} file(s) scanned, {} justified allow(s)",
            self.findings.len(),
            self.files_scanned,
            self.allows_honored
        );
        out
    }

    /// JSON rendering (stable field order, fully escaped).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                escape_json(f.rule),
                escape_json(&f.file),
                f.line,
                escape_json(&f.message)
            );
        }
        let _ = write!(
            out,
            "],\"files_scanned\":{},\"allows_honored\":{}}}",
            self.files_scanned, self.allows_honored
        );
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            files_scanned: 2,
            allows_honored: 1,
            ..Default::default()
        };
        r.findings.push(Finding {
            rule: "G3",
            file: "a\"b.rs".to_string(),
            line: 7,
            message: "bad \"call\"".to_string(),
        });
        let json = r.render_json();
        assert!(json.contains("\"rule\":\"G3\""));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\"allows_honored\":1"));
    }
}
