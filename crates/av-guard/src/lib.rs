//! # av-guard — workspace invariant linter
//!
//! A self-contained static analysis over this workspace's own Rust
//! sources. No external parser: a hand-rolled [`lexer`] (in the same
//! house style as the byte-level pattern matchers) feeds token-level
//! rule passes, with scope tables and the global lock hierarchy checked
//! in as code ([`config`]). Run as a CI gate:
//!
//! ```text
//! cargo run -p av-guard --release -- --deny
//! ```
//!
//! ## Rules
//!
//! | ID | Name | What it defends |
//! |----|------|-----------------|
//! | `G0` | allow hygiene | Every `// av-guard: allow(<rule>, reason = "…")` must name a known rule, carry a non-empty reason, and actually suppress something. Malformed, reason-less, or unused allows are findings — an allow is a justified debt record, not a mute button. |
//! | `G1` | lock-order | Nested `.lock()`/`.read()`/`.write()` acquisitions of the tracked locks must ascend the global hierarchy ([`config::LOCK_HIERARCHY`], canonically documented in `crates/av-service/src/lockorder.rs`). Inversions are the statically-visible half of a deadlock; the runtime tracker in av-service checks the same table under `debug_assertions`. |
//! | `G2` | storage-bypass | In av-service/av-index/av-durable, file I/O goes through the `Storage` trait. Direct `std::fs`/`File::open`/`fs::rename` bypasses `write_atomic`'s temp+fsync+rename discipline and is invisible to fault injection. Only `OsStorage` itself touches the real filesystem. |
//! | `G3` | panic-path | Reactor, connection, and worker-pool code (`av-service/src/server/`) must not panic: no `unwrap`/`expect`/`panic!`/slice-index. A worker panic strands its pipelined connection; a reactor panic takes down every connection. |
//! | `G4` | determinism | The av-index accumulator modules are fixed-point so shard merges commute; no `f32`/`f64` outside the two sanctioned conversion boundaries. On persist paths, no unsorted hash-map iteration feeding bytes. |
//! | `G5` | blocking-in-reactor | No `thread::sleep`, channel `recv`, blocking reads, or `join`/`wait` inside reactor callbacks — one blocked callback stalls every multiplexed connection. Worker-pool parking points are configured exemptions, not inferred ones. |
//!
//! ## Escape hatch
//!
//! ```text
//! // av-guard: allow(G3, reason = "shutdown path; queue already drained")
//! ```
//!
//! placed on the offending line or the line directly above. The reason
//! string is mandatory and must be non-empty; `G0` enforces that and
//! flags allows that no longer suppress anything.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

pub use diag::{Finding, Report};
use source::SourceFile;

/// Rule IDs an allow annotation may name (`G0` itself cannot be
/// allowed).
pub const KNOWN_RULES: &[&str] = &["G1", "G2", "G3", "G4", "G5"];

/// Scan one file's text under its workspace-relative path. This is the
/// whole linter for one file: rule passes, then allow matching, then
/// allow hygiene (`G0`).
pub fn scan_source(rel_path: &str, text: &str) -> Report {
    let sf = SourceFile::parse(rel_path, text);
    let mut findings = Vec::new();
    rules::g1::run(&sf, &mut findings);
    rules::g2::run(&sf, &mut findings);
    rules::g3::run(&sf, &mut findings);
    rules::g4::run(&sf, &mut findings);
    rules::g5::run(&sf, &mut findings);

    // An allow suppresses findings of its rule on its own line or the
    // line directly below.
    let mut used = vec![false; sf.allows.len()];
    let mut honored = 0usize;
    findings.retain(|f| {
        for (k, a) in sf.allows.iter().enumerate() {
            if a.rule == f.rule && (f.line == a.line || f.line == a.line + 1) {
                used[k] = true;
                honored += 1;
                return false;
            }
        }
        true
    });

    for b in &sf.bad_allows {
        findings.push(Finding {
            rule: "G0",
            file: rel_path.to_string(),
            line: b.line,
            message: b.message.clone(),
        });
    }
    for (k, a) in sf.allows.iter().enumerate() {
        if !KNOWN_RULES.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: "G0",
                file: rel_path.to_string(),
                line: a.line,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !used[k] {
            findings.push(Finding {
                rule: "G0",
                file: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing on this line or the next — remove it",
                    a.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    Report {
        findings,
        files_scanned: 1,
        allows_honored: honored,
    }
}

/// Scan the whole workspace under `root`: the root package's `src/` and
/// every `crates/*/src/` except the vendored shims, which are external
/// code held to external rules.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "vendor"))
            .collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        report.absorb(scan_source(&rel, &text));
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = r#"
            fn f(v: &[u8]) {
                // av-guard: allow(G3, reason = "length checked by caller")
                let b = &v[1..3];
            }
        "#;
        let r = scan_source("crates/av-service/src/server/conn.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allows_honored, 1);
    }

    #[test]
    fn unused_and_malformed_allows_are_g0() {
        let src = r#"
            // av-guard: allow(G3, reason = "nothing here to suppress")
            fn clean() {}
            // av-guard: allow(G3)
            fn also_clean() {}
            // av-guard: allow(G9, reason = "no such rule")
            fn still_clean() {}
        "#;
        let r = scan_source("crates/av-service/src/server/conn.rs", src);
        assert_eq!(r.of_rule("G0").len(), 3, "{:?}", r.findings);
        assert_eq!(r.allows_honored, 0);
    }

    #[test]
    fn inline_allow_on_same_line_works() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] } // av-guard: allow(G3, reason = \"caller guarantees non-empty\")\n";
        let r = scan_source("crates/av-service/src/server/conn.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
