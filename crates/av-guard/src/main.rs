//! CLI entry point: scan the workspace, print findings, gate CI.
//!
//! ```text
//! cargo run -p av-guard --release -- [--deny] [--json] [--root <dir>]
//! ```
//!
//! `--deny` exits non-zero if any finding survives; `--json` emits the
//! machine-readable report (CI uploads it on failure).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("av-guard: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("av-guard: unknown argument `{other}`");
                eprintln!("usage: av-guard [--deny] [--json] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }

    let report = match av_guard::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("av-guard: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
